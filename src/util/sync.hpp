// Concurrency contracts: annotated lock wrappers + an opt-in runtime
// lock-order detector.
//
// Two independent layers share this header:
//
//  1. Static contracts. `Mutex`, `SharedMutex`, `MutexLock`, `SharedLock`
//     and `CondVar` mirror their std counterparts but carry Clang
//     thread-safety-analysis attributes, so a clang build with
//     `-Wthread-safety -Werror` proves at compile time which lock guards
//     which field (`DOVADO_GUARDED_BY`) and which methods demand a lock
//     already held (`DOVADO_REQUIRES`). Under any other compiler every
//     macro expands to nothing and the wrappers are plain std::mutex /
//     std::condition_variable with zero overhead (the micro_sync_overhead
//     bench gate enforces < 1% vs raw std::mutex in release builds).
//
//  2. Runtime lock-order detection. When the build defines
//     DOVADO_DEADLOCK_DEBUG (the `deadlock` CMake preset; defaulted on in
//     Debug builds), every Mutex acquisition feeds a per-thread held-lock
//     stack into a global acquired-before graph. The first acquisition
//     that would close a cycle — i.e. the first A->B order observed after
//     a B->A order, however many threads apart — is reported with both
//     acquisition orders, the lock names and the thread ids, then aborts
//     (tests install a handler via set_deadlock_handler to observe the
//     report instead). CondVar::wait additionally flags waiting while any
//     *other* tracked lock is held, the classic lost-wakeup/deadlock
//     recipe. The detector never needs a real deadlock to fire: a benign
//     interleaving of inverted acquisitions is enough, which is exactly
//     what makes it usable in CI.
//
// The detector must be enabled for the whole build (the CMake option adds
// a global compile definition); defining DOVADO_DEADLOCK_DEBUG for a
// subset of translation units would violate the ODR on the inline lock
// bodies below.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

// ---------------------------------------------------------------------------
// Clang thread-safety-analysis attribute macros.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define DOVADO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DOVADO_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (the thing GUARDED_BY names).
#define DOVADO_CAPABILITY(x) DOVADO_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define DOVADO_SCOPED_CAPABILITY DOVADO_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written while holding the named capability.
#define DOVADO_GUARDED_BY(x) DOVADO_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field: the *pointee* is guarded by the named capability.
#define DOVADO_PT_GUARDED_BY(x) DOVADO_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability exclusively held by the caller.
#define DOVADO_REQUIRES(...) \
  DOVADO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function requires the capability held at least shared by the caller.
#define DOVADO_REQUIRES_SHARED(...) \
  DOVADO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (exclusive) and does not release it.
#define DOVADO_ACQUIRE(...) \
  DOVADO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DOVADO_ACQUIRE_SHARED(...) \
  DOVADO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases a capability the caller held.
#define DOVADO_RELEASE(...) \
  DOVADO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DOVADO_RELEASE_SHARED(...) \
  DOVADO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function attempts acquisition; first argument is the success value.
#define DOVADO_TRY_ACQUIRE(...) \
  DOVADO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must be called with the capabilities NOT held (deadlock guard).
#define DOVADO_EXCLUDES(...) DOVADO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Asserts (does not acquire) that the capability is held — the sanctioned
/// way to teach the analysis about lambdas it cannot see into.
#define DOVADO_ASSERT_CAPABILITY(x) \
  DOVADO_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define DOVADO_RETURN_CAPABILITY(x) DOVADO_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch. Per the concurrency-contract policy (DESIGN.md) its only
/// sanctioned uses are the CondVar wait internals below, where the wait
/// demonstrably releases and re-acquires the mutex in ways the analysis
/// cannot model.
#define DOVADO_NO_THREAD_SAFETY_ANALYSIS \
  DOVADO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dovado::util {

namespace sync_detail {

// Detector hooks. Always compiled (sync.cpp), called from the inline lock
// bodies only when DOVADO_DEADLOCK_DEBUG is defined, so release builds
// carry no trace of them on the hot path.

/// What the detector found. `cycle` lists the lock names along the closed
/// acquired-before cycle, ending with the lock that closed it (so an
/// A->B / B->A inversion reports {"A", "B", "A"}).
struct DeadlockReport {
  enum class Kind {
    kLockOrderInversion,  ///< new acquisition closes an acquired-before cycle
    kCvWaitWhileLocked,   ///< CondVar::wait while holding another tracked lock
    kRecursiveLock,       ///< same Mutex locked twice on one thread
  };
  Kind kind = Kind::kLockOrderInversion;
  std::vector<std::string> cycle;
  std::string message;  ///< full human-readable report (orders + thread ids)
};

using DeadlockHandler = std::function<void(const DeadlockReport&)>;

/// Replace the report handler (default: print to stderr and abort).
/// Returns the previous handler. Tests install a recorder; passing nullptr
/// restores the default. Reports fire at most once per distinct cycle.
DeadlockHandler set_deadlock_handler(DeadlockHandler handler);

/// Forget every registered lock, edge and report (test isolation — stack
/// addresses recycle between test cases).
void reset_for_testing();

void on_create(const void* lock, const char* name);
void on_destroy(const void* lock);
/// Edge insertion + cycle check; called BEFORE blocking on the native
/// mutex so a would-be deadlock is reported instead of hung.
void on_lock_attempt(const void* lock);
/// Push onto this thread's held stack (after the native lock succeeded).
void on_locked(const void* lock);
void on_unlocked(const void* lock);
/// True when this thread's held stack contains `lock`.
bool held_by_this_thread(const void* lock);
/// CondVar misuse check + held-stack pop around the native wait.
void on_cv_wait_begin(const void* lock);
void on_cv_wait_end(const void* lock);

}  // namespace sync_detail

/// std::mutex with a thread-safety capability, a name for detector
/// reports, and (under DOVADO_DEADLOCK_DEBUG) lock-order tracking. The
/// layout is identical in both modes; only the inline bodies differ, and
/// the build system defines the macro globally.
class DOVADO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex("mutex") {}
  /// `name` must outlive the Mutex (string literals in practice); it is
  /// what detector reports and the DESIGN.md hierarchy refer to.
  explicit Mutex(const char* name) : name_(name) {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_create(this, name_);
#endif
  }
  ~Mutex() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_destroy(this);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DOVADO_ACQUIRE() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_lock_attempt(this);
#endif
    mu_.lock();
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_locked(this);
#endif
  }

  void unlock() DOVADO_RELEASE() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_unlocked(this);
#endif
    mu_.unlock();
  }

  /// try_lock never blocks, so it inserts no acquired-before edge; a later
  /// blocking acquisition made while this lock is held still does.
  bool try_lock() DOVADO_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#ifdef DOVADO_DEADLOCK_DEBUG
    if (ok) sync_detail::on_locked(this);
#endif
    return ok;
  }

  /// Tell the analysis (and, in deadlock-debug builds, verify) that this
  /// thread holds the mutex. Use inside lambdas that run under the lock —
  /// the analysis cannot see through the call boundary.
  void assert_held() const DOVADO_ASSERT_CAPABILITY(this);

  [[nodiscard]] const char* name() const { return name_; }
  /// The underlying std::mutex, for CondVar's adopt/release dance only.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
  const char* name_;
};

/// std::shared_mutex with a capability. Shared (reader) holds participate
/// in lock-order tracking exactly like exclusive ones: a reader blocking
/// on a writer deadlocks the same way.
class DOVADO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : SharedMutex("shared_mutex") {}
  explicit SharedMutex(const char* name) : name_(name) {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_create(this, name_);
#endif
  }
  ~SharedMutex() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_destroy(this);
#endif
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DOVADO_ACQUIRE() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_lock_attempt(this);
#endif
    mu_.lock();
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_locked(this);
#endif
  }

  void unlock() DOVADO_RELEASE() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_unlocked(this);
#endif
    mu_.unlock();
  }

  void lock_shared() DOVADO_ACQUIRE_SHARED() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_lock_attempt(this);
#endif
    mu_.lock_shared();
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_locked(this);
#endif
  }

  void unlock_shared() DOVADO_RELEASE_SHARED() {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_unlocked(this);
#endif
    mu_.unlock_shared();
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const char* name_;
};

/// RAII exclusive lock (std::lock_guard/unique_lock replacement that the
/// analysis understands). lock()/unlock() allow the dropped-lock window
/// pattern; the destructor releases only if currently held.
class DOVADO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DOVADO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DOVADO_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() DOVADO_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() DOVADO_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// RAII shared (reader) lock over SharedMutex.
class DOVADO_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) DOVADO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() DOVADO_RELEASE() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class DOVADO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DOVADO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() DOVADO_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. wait() demands the mutex held (the
/// analysis enforces it at every call site) and models the wait as
/// hold-across: the capability is still held when wait returns, which is
/// exactly the std::condition_variable contract. The internals adopt and
/// release the native handle in ways the analysis cannot follow — the one
/// sanctioned NO_THREAD_SAFETY_ANALYSIS site in the codebase.
///
/// Under DOVADO_DEADLOCK_DEBUG, wait() additionally reports waiting while
/// holding any *other* tracked lock: the blocked thread would keep that
/// lock pinned for an unbounded time, which is either a deadlock or a
/// latency bug, and was exactly the shape of the PR 6 cv lifetime race.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) DOVADO_REQUIRES(mu) {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_cv_wait_begin(&mu);
#endif
    wait_native(mu);
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_cv_wait_end(&mu);
#endif
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) DOVADO_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// Timed wait; true when the predicate held on exit (std semantics).
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) DOVADO_REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (wait_until_native(mu, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  /// The native wait releases mu and re-acquires it before returning; the
  /// analysis sees a REQUIRES function that preserves the capability,
  /// which is the correct summary of that round trip.
  void wait_native(Mutex& mu) DOVADO_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  std::cv_status wait_until_native(
      Mutex& mu, std::chrono::steady_clock::time_point deadline)
      DOVADO_NO_THREAD_SAFETY_ANALYSIS {
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_cv_wait_begin(&mu);
#endif
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
#ifdef DOVADO_DEADLOCK_DEBUG
    sync_detail::on_cv_wait_end(&mu);
#endif
    return status;
  }

  std::condition_variable cv_;
};

}  // namespace dovado::util
