#include "src/util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace dovado::util {

bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace dovado::util
