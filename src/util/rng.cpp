#include "src/util/rng.hpp"

namespace dovado::util {

Xoshiro256 Xoshiro256::fork() noexcept {
  // Derive the child seed from fresh output, then remix through splitmix64
  // inside the child's constructor. Consumes one draw from this stream.
  return Xoshiro256((*this)());
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling on the top of the 64-bit space: bias is at most
  // range/2^64, and the loop rejects draws in the uneven final bucket.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              (std::numeric_limits<std::uint64_t>::max() % range + 1) % range;
  std::uint64_t draw = gen_();
  while (range != 0 && limit != std::numeric_limits<std::uint64_t>::max() && draw > limit) {
    draw = gen_();
  }
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace dovado::util
