// Minimal thread-safe leveled logger.
//
// The whole framework logs through this single sink so tests can silence it
// and examples can raise verbosity. No allocation happens for suppressed
// levels beyond building the message string lazily at the call site.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "src/util/sync.hpp"

namespace dovado::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logger. All members are safe to call concurrently.
class Log {
 public:
  /// Set the minimum level that is emitted. Defaults to kWarn so library
  /// consumers are quiet unless they opt in.
  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Emit a message at the given level (newline appended).
  static void write(LogLevel level, std::string_view msg);

  static void debug(std::string_view msg) { write(LogLevel::kDebug, msg); }
  static void info(std::string_view msg) { write(LogLevel::kInfo, msg); }
  static void warn(std::string_view msg) { write(LogLevel::kWarn, msg); }
  static void error(std::string_view msg) { write(LogLevel::kError, msg); }

 private:
  /// Reader/writer split: level() is on every suppressed-log fast path and
  /// takes the shared side; set_level() and write() (which also serializes
  /// the stderr output) take it exclusively.
  static SharedMutex mutex_;
  static LogLevel level_ DOVADO_GUARDED_BY(mutex_);
};

/// Stream-style helper: LOGSTREAM(kInfo) << "x=" << x;  Message is emitted on
/// destruction of the temporary.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { Log::write(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (Log::level() <= level_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace dovado::util
