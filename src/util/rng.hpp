// Deterministic pseudo-random number generation for reproducible DSE runs.
//
// Dovado's genetic search, synthetic-dataset sampling and the SimVivado noise
// model all need randomness that is (a) fast, (b) high quality, and
// (c) exactly reproducible across platforms. std::mt19937 fulfils (c) but the
// std::*_distribution adaptors do not (their algorithms are
// implementation-defined), so this header provides both the generator
// (xoshiro256**, seeded via splitmix64) and portable distributions.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace dovado::util {

/// splitmix64 step. Used for seeding and for cheap stateless hashing of
/// integers into well-mixed 64-bit values (e.g. content-addressed noise).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single 64-bit value (splitmix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combine a hash with a new value (boost::hash_combine style, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// xoshiro256** generator: 256-bit state, period 2^256-1, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed all 256 state bits from a single 64-bit seed via splitmix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Fork a statistically independent child stream (e.g. one per worker
  /// thread) without perturbing this stream's future output.
  [[nodiscard]] Xoshiro256 fork() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Portable random source with fixed-algorithm distributions. Wraps a
/// Xoshiro256 and implements the distribution maths explicitly so two runs
/// with the same seed produce identical sequences on any platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) : gen_(seed) {}
  explicit Rng(Xoshiro256 gen) : gen_(gen) {}

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] double uniform() { return static_cast<double>(gen_() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in the inclusive range [lo, hi]. Uses Lemire-style
  /// rejection to avoid modulo bias.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n); n must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Standard normal deviate (Marsaglia polar method; deterministic given
  /// the generator stream).
  [[nodiscard]] double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::swap(c[i - 1], c[index(i)]);
    }
  }

  /// Independent child stream; see Xoshiro256::fork.
  [[nodiscard]] Rng fork() { return Rng(gen_.fork()); }

  [[nodiscard]] Xoshiro256& generator() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dovado::util
