// Minimal JSON value + serializer.
//
// Used to persist DSE sessions (configuration, Pareto set, model dataset) in
// a machine-readable form. Writing is complete; parsing covers the subset we
// emit (objects, arrays, strings, numbers, booleans, null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dovado::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON value. Numbers are stored as double (sufficient for the integer
/// parameter magnitudes Dovado handles, < 2^53).
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(value_); }
  [[nodiscard]] JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a JSON document. Returns false and leaves `out` untouched on
  /// malformed input.
  static bool parse(std::string_view text, Json& out);

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace dovado::util
