// Fixed-size worker pool with a parallel_for helper.
//
// NSGA-II fitness evaluation is embarrassingly parallel across the offspring
// population; the DSE engine runs SimVivado calls through this pool exactly
// as Dovado would fan out Vivado subprocesses. The pool degrades gracefully
// to inline execution when constructed with zero workers (useful on single-
// core CI machines and for deterministic debugging).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/sync.hpp"

namespace dovado::util {

class ThreadPool {
 public:
  /// Create `workers` threads. `workers == 0` means every submitted task runs
  /// inline in the caller (no threads are spawned).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 => inline mode).
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers (i.e. the
  /// call site is inside a task submitted to this pool).
  [[nodiscard]] bool inside_pool_task() const noexcept;

  /// Submit a task; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return fut;
    }
    {
      MutexLock lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end), blocking until all iterations finish.
  /// Iterations are distributed one-at-a-time (tool calls dominate cost, so
  /// chunking would only hurt load balance). The caller participates as an
  /// extra lane, so up to worker_count() + 1 iterations run concurrently.
  ///
  /// Reentrancy: calling this from *inside* a pool task would queue the
  /// helper tasks behind the very task that is waiting on them and
  /// oversubscribe the pool once they finally run, so a reentrant call is
  /// detected and degrades to inline execution in the calling worker
  /// (counted in reentrant_inline_calls()).
  ///
  /// Exceptions from iterations are rethrown (the first one encountered);
  /// later exceptions in the same dispatch are counted in
  /// suppressed_exceptions() and logged, so a multi-point failure is not
  /// silently collapsed into a single-point one.
  /// The range form lets callers dispatch a batch in slices (e.g. to check
  /// a deadline between slices) without rebasing their indices.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(i) for i in [0, n).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    parallel_for(0, n, fn);
  }

  /// parallel_for calls that were detected as reentrant (issued from inside
  /// a pool task) and ran inline instead of fanning out.
  [[nodiscard]] std::size_t reentrant_inline_calls() const noexcept {
    return reentrant_inline_.load(std::memory_order_relaxed);
  }

  /// Iteration exceptions swallowed after the first rethrown one, summed
  /// over all parallel_for dispatches.
  [[nodiscard]] std::size_t suppressed_exceptions() const noexcept {
    return suppressed_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_{"ThreadPool"};
  CondVar cv_;
  std::queue<std::function<void()>> queue_ DOVADO_GUARDED_BY(mutex_);
  bool stopping_ DOVADO_GUARDED_BY(mutex_) = false;
  std::atomic<std::size_t> reentrant_inline_{0};
  std::atomic<std::size_t> suppressed_exceptions_{0};
};

/// A sensible default worker count: hardware concurrency minus one (leave a
/// core for the orchestrator), never less than one. A single-core host gets
/// one worker thread rather than zero so that callers sizing resources off
/// this value (e.g. one tool session per worker) always get at least one;
/// inline execution remains available by constructing ThreadPool(0)
/// explicitly.
[[nodiscard]] std::size_t default_worker_count();

}  // namespace dovado::util
