// Small string helpers shared across the HDL front end, TCL interpreter and
// report parsers. All functions are pure and allocation is explicit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dovado::util {

/// Remove leading/trailing whitespace (space, tab, CR, LF, FF, VT).
[[nodiscard]] std::string_view trim(std::string_view s);

/// Lower-case copy (ASCII only; HDL identifiers are ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Upper-case copy (ASCII only).
[[nodiscard]] std::string to_upper(std::string_view s);

/// Split on a delimiter character. Empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on any whitespace run; no empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive equality (ASCII). VHDL identifiers are case-insensitive.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// True if `s` contains `needle`.
[[nodiscard]] bool contains(std::string_view s, std::string_view needle);

/// Replace every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// Join elements with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a decimal integer; returns false on any non-numeric content.
[[nodiscard]] bool parse_int(std::string_view s, long long& out);

/// Parse a floating-point value; returns false on failure.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Levenshtein edit distance (insert/delete/substitute, each cost 1).
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by edit distance (case-insensitive),
/// for did-you-mean diagnostics. Empty when no candidate is within
/// max(2, |name| / 3) edits — a suggestion further away would mislead.
[[nodiscard]] std::string closest_match(std::string_view name,
                                        const std::vector<std::string>& candidates);

}  // namespace dovado::util
