// Unix-domain stream sockets with newline-delimited framing.
//
// The serve daemon's wire layer: a listener bound to a filesystem path and
// a connection wrapper that reads/writes one '\n'-terminated frame at a
// time (the protocol layer puts one JSON document per frame). Everything is
// blocking-with-timeout via poll(); EINTR is retried; SIGPIPE is avoided
// with MSG_NOSIGNAL so a client vanishing mid-reply surfaces as a write
// error, not a process kill.
#pragma once

#include <cstddef>
#include <string>

namespace dovado::util {

/// A connected stream socket framed as '\n'-terminated lines. Owns the fd.
/// One reader and one writer thread may use the same connection
/// concurrently (reads and writes are independently buffered/locked by the
/// callers); two concurrent writers must serialize externally.
class LineSocket {
 public:
  LineSocket() = default;
  explicit LineSocket(int fd) : fd_(fd) {}
  ~LineSocket() { close(); }

  LineSocket(LineSocket&& other) noexcept;
  LineSocket& operator=(LineSocket&& other) noexcept;
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Shut down both directions without releasing the fd. The peer sees EOF
  /// immediately, but the fd number stays reserved, so other threads still
  /// holding a reference cannot collide with a kernel fd reuse the way a
  /// close() would let them.
  void shutdown();

  /// Send `line` plus a trailing '\n' (EINTR-safe, whole-frame). Returns
  /// false when the peer is gone or the write times out.
  [[nodiscard]] bool write_line(const std::string& line, int timeout_ms = -1);

  /// Read the next '\n'-terminated frame into `line` (terminator stripped).
  /// Returns false on EOF, error, or timeout; `timed_out` (when non-null)
  /// distinguishes a timeout from a closed peer. timeout_ms < 0 blocks.
  [[nodiscard]] bool read_line(std::string& line, int timeout_ms = -1,
                               bool* timed_out = nullptr);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned frame
};

/// A listening Unix-domain socket bound to a filesystem path. Unlinks the
/// path on close so a clean shutdown leaves no stale socket file; a stale
/// file from a crashed daemon is unlinked at bind time.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener() { close(); }
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Bind and listen on `path`. Returns false with `error` filled on
  /// failure (path too long for sockaddr_un, bind/listen errno).
  [[nodiscard]] bool listen(const std::string& path, std::string& error,
                            int backlog = 64);

  /// Accept one connection, waiting up to `timeout_ms` (< 0 blocks).
  /// Returns an invalid socket on timeout or error.
  [[nodiscard]] LineSocket accept(int timeout_ms);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connect to a Unix-domain listener at `path`. Returns an invalid socket
/// with `error` filled on failure.
[[nodiscard]] LineSocket connect_unix(const std::string& path, std::string& error);

}  // namespace dovado::util
