#include "src/util/thread_pool.hpp"

#include <exception>
#include <string>

#include "src/util/logging.hpp"

namespace dovado::util {

namespace {

/// The pool whose worker_loop is running on this thread (null on any thread
/// that is not a pool worker). Lets parallel_for detect reentrant dispatch.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::inside_pool_task() const noexcept { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  // Inline paths: no workers, a single iteration, or a *reentrant* call from
  // inside one of this pool's own tasks. In the reentrant case the submitted
  // helper tasks would queue behind the enqueuing task (which is occupying a
  // worker while it waits for them) and, once stale helpers finally run, the
  // pool would be oversubscribed — so the calling worker runs the loop
  // itself. Exceptions still follow the first-thrown/suppressed-count rule.
  const bool reentrant = inside_pool_task();
  if (reentrant) reentrant_inline_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty() || end - begin == 1 || reentrant) {
    std::exception_ptr first_error;
    std::size_t suppressed = 0;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        } else {
          ++suppressed;
        }
      }
    }
    if (suppressed > 0) {
      suppressed_exceptions_.fetch_add(suppressed, std::memory_order_relaxed);
      Log::warn("parallel_for: " + std::to_string(suppressed) +
                " additional iteration exception(s) suppressed after the first");
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::size_t suppressed = 0;
  Mutex error_mutex("ThreadPool.parallel_for.error");
  auto body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        } else {
          // Not silently discarded: counted and logged below, so callers
          // can tell a one-point failure from a batch-wide one.
          ++suppressed;
        }
      }
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) futures.push_back(submit(body));
  body();  // the caller participates too
  for (auto& f : futures) f.get();
  if (suppressed > 0) {
    suppressed_exceptions_.fetch_add(suppressed, std::memory_order_relaxed);
    Log::warn("parallel_for: " + std::to_string(suppressed) +
              " additional iteration exception(s) suppressed after the first");
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

}  // namespace dovado::util
