#include "src/util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace dovado::util {

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  if (workers_.empty() || end - begin == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) futures.push_back(submit(body));
  body();  // the caller participates too
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

}  // namespace dovado::util
