#include "src/util/csv.hpp"

#include <cstdio>
#include <ostream>

namespace dovado::util {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote = cell.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    text.emplace_back(buf);
  }
  row(text);
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    record.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_record = [&] {
    end_cell();
    records.push_back(std::move(record));
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // the record has at least two cells now
        break;
      case '\r':
        break;  // swallow; \n terminates the record
      case '\n':
        end_record();
        break;
      default:
        cell.push_back(c);
        cell_started = true;
        break;
    }
  }
  // Final record without trailing newline.
  if (cell_started || !cell.empty() || !record.empty()) end_record();
  return records;
}

}  // namespace dovado::util
