#include "src/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dovado::util {

namespace {

void escape_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't': if (!literal("true")) return false; out = Json(true); return true;
      case 'f': if (!literal("false")) return false; out = Json(false); return true;
      case 'n': if (!literal("null")) return false; out = Json(nullptr); return true;
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported — we
            // never emit them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;
  }

  bool parse_number(Json& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    double d = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) return false;
    out = Json(d);
    return true;
  }

  bool parse_array(Json& out) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = Json(std::move(arr));
      return true;
    }
    while (true) {
      Json item;
      skip_ws();
      if (!parse_value(item)) return false;
      arr.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; break; }
      return false;
    }
    out = Json(std::move(arr));
    return true;
  }

  bool parse_object(Json& out) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = Json(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value)) return false;
      obj.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; break; }
      return false;
    }
    out = Json(std::move(obj));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    escape_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) { out += "[]"; return; }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = as_object();
    if (obj.empty()) { out += "{}"; return; }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      escape_string(out, key);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::parse(std::string_view text, Json& out) {
  Parser parser(text);
  Json result;
  if (!parser.parse(result)) return false;
  out = std::move(result);
  return true;
}

}  // namespace dovado::util
