#include "src/hdl/frontend.hpp"

#include <fstream>
#include <sstream>

#include "src/hdl/verilog_parser.hpp"
#include "src/hdl/vhdl_parser.hpp"
#include "src/util/strings.hpp"

namespace dovado::hdl {

std::optional<HdlLanguage> language_from_path(std::string_view path) {
  const auto dot = path.rfind('.');
  if (dot == std::string_view::npos) return std::nullopt;
  const std::string ext = util::to_lower(path.substr(dot + 1));
  if (ext == "vhd" || ext == "vhdl") return HdlLanguage::kVhdl;
  if (ext == "v" || ext == "vh") return HdlLanguage::kVerilog;
  if (ext == "sv" || ext == "svh") return HdlLanguage::kSystemVerilog;
  return std::nullopt;
}

std::optional<HdlLanguage> language_from_content(std::string_view text) {
  const std::string lower = util::to_lower(text);
  const bool vhdlish = util::contains(lower, "entity") &&
                       (util::contains(lower, "architecture") || util::contains(lower, " is"));
  const bool verilogish =
      util::contains(lower, "module") && util::contains(lower, "endmodule");
  if (verilogish && !vhdlish) {
    return util::contains(lower, "logic") || util::contains(lower, "always_ff")
               ? HdlLanguage::kSystemVerilog
               : HdlLanguage::kVerilog;
  }
  if (vhdlish) return HdlLanguage::kVhdl;
  if (verilogish) return HdlLanguage::kVerilog;
  return std::nullopt;
}

ParseResult parse_source(std::string_view text, HdlLanguage lang, std::string_view path) {
  if (lang == HdlLanguage::kVhdl) return parse_vhdl(text, path);
  return parse_verilog(text, lang, path);
}

ParseResult parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseResult r;
    r.file.path = path;
    r.diagnostics.push_back({{}, "cannot open file: " + path});
    return r;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto lang = language_from_path(path);
  if (!lang) lang = language_from_content(text);
  if (!lang) {
    ParseResult r;
    r.file.path = path;
    r.diagnostics.push_back({{}, "cannot detect HDL language of: " + path});
    return r;
  }
  return parse_source(text, *lang, path);
}

}  // namespace dovado::hdl
