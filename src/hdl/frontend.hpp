// Front door of the HDL substrate: language detection and file parsing.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "src/hdl/ast.hpp"

namespace dovado::hdl {

/// Infer the HDL from a file extension: .vhd/.vhdl -> VHDL, .v -> Verilog,
/// .sv/.svh -> SystemVerilog. std::nullopt for anything else.
[[nodiscard]] std::optional<HdlLanguage> language_from_path(std::string_view path);

/// Heuristic content sniffing for extension-less sources: looks for
/// entity/architecture vs module/endmodule markers.
[[nodiscard]] std::optional<HdlLanguage> language_from_content(std::string_view text);

/// Parse in-memory source text in the given language.
[[nodiscard]] ParseResult parse_source(std::string_view text, HdlLanguage lang,
                                       std::string_view path = "<memory>");

/// Read a file from disk, detect its language (extension first, content as
/// fallback) and parse it. A missing file or undetectable language yields a
/// ParseResult with ok=false and a diagnostic.
[[nodiscard]] ParseResult parse_file(const std::string& path);

}  // namespace dovado::hdl
