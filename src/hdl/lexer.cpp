#include "src/hdl/lexer.hpp"

#include <array>
#include <cctype>

#include "src/util/strings.hpp"

namespace dovado::hdl {

const char* language_name(HdlLanguage lang) {
  switch (lang) {
    case HdlLanguage::kVhdl: return "VHDL";
    case HdlLanguage::kVerilog: return "Verilog";
    case HdlLanguage::kSystemVerilog: return "SystemVerilog";
  }
  return "?";
}

const char* port_dir_name(PortDir dir) {
  switch (dir) {
    case PortDir::kIn: return "in";
    case PortDir::kOut: return "out";
    case PortDir::kInout: return "inout";
  }
  return "?";
}

const Port* Module::find_port(const std::string& port_name) const {
  for (const auto& p : ports) {
    if (language == HdlLanguage::kVhdl ? util::iequals(p.name, port_name)
                                       : p.name == port_name) {
      return &p;
    }
  }
  return nullptr;
}

const Module* DesignFile::find_module(const std::string& module_name) const {
  for (const auto& m : modules) {
    if (m.language == HdlLanguage::kVhdl ? util::iequals(m.name, module_name)
                                         : m.name == module_name) {
      return &m;
    }
  }
  return nullptr;
}

const Port* find_clock_port(const Module& module) {
  const Port* best = nullptr;
  for (const auto& p : module.ports) {
    if (p.dir != PortDir::kIn || p.is_vector) continue;
    const std::string lower = util::to_lower(p.name);
    const bool is_clockish =
        util::contains(lower, "clk") || util::contains(lower, "clock");
    if (!is_clockish) continue;
    // Prefer exact "clk"/"clock"/"clk_i"/"i_clk" over substring matches such
    // as "clk_en".
    const bool exact = lower == "clk" || lower == "clock" || lower == "clk_i" ||
                       lower == "i_clk" || lower == "aclk";
    if (exact) return &p;
    if (best == nullptr) best = &p;
  }
  return best;
}

bool Token::is_keyword(std::string_view kw) const {
  return kind == TokenKind::kIdentifier && util::iequals(text, kw);
}

Lexer::Lexer(std::string_view text, HdlLanguage language)
    : text_(text), language_(language) {}

char Lexer::advance() {
  const char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

void Lexer::skip_trivia(std::vector<Diagnostic>& diags) {
  while (pos_ < text_.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v') {
      advance();
      continue;
    }
    if (language_ == HdlLanguage::kVhdl) {
      if (c == '-' && peek(1) == '-') {
        while (pos_ < text_.size() && peek() != '\n') advance();
        continue;
      }
      // VHDL-2008 delimited comments.
      if (c == '/' && peek(1) == '*') {
        const SourceLoc start = here();
        advance();
        advance();
        while (pos_ < text_.size() && !(peek() == '*' && peek(1) == '/')) advance();
        if (pos_ >= text_.size()) {
          diags.push_back({start, "unterminated block comment"});
          return;
        }
        advance();
        advance();
        continue;
      }
    } else {
      if (c == '/' && peek(1) == '/') {
        while (pos_ < text_.size() && peek() != '\n') advance();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        const SourceLoc start = here();
        advance();
        advance();
        while (pos_ < text_.size() && !(peek() == '*' && peek(1) == '/')) advance();
        if (pos_ >= text_.size()) {
          diags.push_back({start, "unterminated block comment"});
          return;
        }
        advance();
        advance();
        continue;
      }
      // Verilog attributes (* keep = "true" *) are trivia for our purposes.
      if (c == '(' && peek(1) == '*') {
        const SourceLoc start = here();
        advance();
        advance();
        while (pos_ < text_.size() && !(peek() == '*' && peek(1) == ')')) advance();
        if (pos_ >= text_.size()) {
          diags.push_back({start, "unterminated attribute"});
          return;
        }
        advance();
        advance();
        continue;
      }
      // Compiler directives (`timescale, `include, `define ...): skip the
      // whole line; macro expansion is out of scope for interface parsing.
      if (c == '`') {
        while (pos_ < text_.size() && peek() != '\n') advance();
        continue;
      }
    }
    return;
  }
}

Token Lexer::lex_identifier() {
  const SourceLoc loc = here();
  std::string text;
  if (peek() == '\\') {
    // Escaped identifier: Verilog ends at whitespace, VHDL at closing '\'.
    advance();
    if (language_ == HdlLanguage::kVhdl) {
      while (pos_ < text_.size() && peek() != '\\') text.push_back(advance());
      if (pos_ < text_.size()) advance();
    } else {
      while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    }
    return {TokenKind::kIdentifier, std::move(text), loc};
  }
  while (pos_ < text_.size()) {
    const char c = peek();
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      text.push_back(advance());
    } else {
      break;
    }
  }
  return {TokenKind::kIdentifier, std::move(text), loc};
}

Token Lexer::lex_number() {
  const SourceLoc loc = here();
  std::string text;
  auto take_while = [&](auto pred) {
    while (pos_ < text_.size() && pred(peek())) text.push_back(advance());
  };
  auto is_digitish = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };

  take_while([](char c) { return std::isdigit(static_cast<unsigned char>(c)) || c == '_'; });

  if (language_ == HdlLanguage::kVhdl) {
    if (peek() == '#') {
      // Based literal: base#value# (e.g. 16#FF#).
      text.push_back(advance());
      take_while(is_digitish);
      if (peek() == '#') text.push_back(advance());
    } else if (peek() == '.') {
      text.push_back(advance());
      take_while([](char c) { return std::isdigit(static_cast<unsigned char>(c)) || c == '_'; });
    }
    if (peek() == 'e' || peek() == 'E') {
      text.push_back(advance());
      if (peek() == '+' || peek() == '-') text.push_back(advance());
      take_while([](char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; });
    }
  } else {
    if (peek() == '\'') {
      // Sized literal: 8'hFF, 4'b1010, 'd42, also 1'sb0.
      text.push_back(advance());
      if (peek() == 's' || peek() == 'S') text.push_back(advance());
      if (std::isalpha(static_cast<unsigned char>(peek()))) text.push_back(advance());
      take_while(is_digitish);
    } else if (peek() == '.') {
      text.push_back(advance());
      take_while([](char c) { return std::isdigit(static_cast<unsigned char>(c)) || c == '_'; });
    }
  }
  return {TokenKind::kNumber, std::move(text), loc};
}

Token Lexer::lex_string(std::vector<Diagnostic>& diags) {
  const SourceLoc loc = here();
  advance();  // opening quote
  std::string text;
  while (pos_ < text_.size()) {
    const char c = advance();
    if (c == '"') {
      // VHDL escapes a quote by doubling it.
      if (language_ == HdlLanguage::kVhdl && peek() == '"') {
        text.push_back('"');
        advance();
        continue;
      }
      return {TokenKind::kString, std::move(text), loc};
    }
    if (c == '\\' && language_ != HdlLanguage::kVhdl && pos_ < text_.size()) {
      text.push_back(advance());
      continue;
    }
    if (c == '\n') break;
    text.push_back(c);
  }
  diags.push_back({loc, "unterminated string literal"});
  return {TokenKind::kString, std::move(text), loc};
}

Token Lexer::lex_punct() {
  const SourceLoc loc = here();
  // Longest-match against multi-character operators first.
  static constexpr std::array<std::string_view, 22> kMulti = {
      "<=", ">=", "=>", ":=", "**", "<<", ">>", "==", "!=", "/=", "&&",
      "||", "::", "<>", "->", "+:", "-:", "'{", "##", "|=>", "|->", "===",
  };
  for (std::string_view op : kMulti) {
    if (text_.substr(pos_, op.size()) == op) {
      for (std::size_t i = 0; i < op.size(); ++i) advance();
      return {TokenKind::kPunct, std::string(op), loc};
    }
  }
  std::string text(1, advance());
  return {TokenKind::kPunct, std::move(text), loc};
}

std::vector<Token> Lexer::tokenize(std::vector<Diagnostic>& diags) {
  std::vector<Token> out;
  while (true) {
    skip_trivia(diags);
    if (pos_ >= text_.size()) break;
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\' ||
        (c == '$' && language_ != HdlLanguage::kVhdl)) {
      // '$' starts Verilog system identifiers such as $clog2.
      out.push_back(lex_identifier());
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lex_number());
    } else if (c == '\'' && language_ != HdlLanguage::kVhdl &&
               (std::isalpha(static_cast<unsigned char>(peek(1))) ||
                std::isdigit(static_cast<unsigned char>(peek(1))))) {
      // Unsized based literal such as 'd42 or 'b0.
      out.push_back(lex_number());
    } else if (c == '\'' && language_ == HdlLanguage::kVhdl && peek(2) == '\'') {
      // VHDL character literal '0'.
      const SourceLoc loc = here();
      advance();
      std::string text(1, advance());
      advance();
      out.push_back({TokenKind::kChar, std::move(text), loc});
    } else if (c == '"') {
      out.push_back(lex_string(diags));
    } else {
      out.push_back(lex_punct());
    }
  }
  out.push_back({TokenKind::kEof, "", here()});
  return out;
}

}  // namespace dovado::hdl
