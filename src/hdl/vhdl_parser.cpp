#include "src/hdl/vhdl_parser.hpp"

#include <vector>

#include "src/hdl/lexer.hpp"
#include "src/util/strings.hpp"

namespace dovado::hdl {

namespace {

/// Join token texts into readable expression source. Parens/commas attach
/// without a leading space so "f(a, b)" round-trips sensibly.
void append_token_text(std::string& out, const Token& t) {
  const bool tight =
      t.is_punct(")") || t.is_punct(",") || t.is_punct("(") || t.is_punct("#");
  if (!out.empty() && !tight && out.back() != '(') out.push_back(' ');
  if (t.kind == TokenKind::kString) {
    out.push_back('"');
    out += t.text;
    out.push_back('"');
  } else if (t.kind == TokenKind::kChar) {
    out.push_back('\'');
    out += t.text;
    out.push_back('\'');
  } else {
    out += t.text;
  }
}

class VhdlParser {
 public:
  VhdlParser(std::string_view text, std::string_view path) : path_(path) {
    Lexer lexer(text, HdlLanguage::kVhdl);
    ts_.emplace(lexer.tokenize(diags_));
  }

  ParseResult run() {
    ParseResult result;
    result.file.path = std::string(path_);
    result.file.language = HdlLanguage::kVhdl;

    while (!ts().at_eof()) {
      const Token& t = ts().peek();
      if (t.is_keyword("library")) {
        parse_library_clause();
      } else if (t.is_keyword("use")) {
        parse_use_clause();
      } else if (t.is_keyword("context")) {
        skip_statement();
      } else if (t.is_keyword("entity")) {
        Module m;
        if (parse_entity(m)) {
          m.libraries = pending_libraries_;
          m.use_clauses = pending_uses_;
          result.file.modules.push_back(std::move(m));
        }
      } else if (t.is_keyword("architecture")) {
        parse_architecture(result.file);
      } else if (t.is_keyword("package") || t.is_keyword("configuration")) {
        skip_design_unit();
      } else {
        ts().next();  // stray token; resynchronize
      }
    }

    result.diagnostics = std::move(diags_);
    result.ok = !result.file.modules.empty();
    return result;
  }

 private:
  TokenStream& ts() { return *ts_; }

  void error_here(std::string msg) { diags_.push_back({ts().peek().loc, std::move(msg)}); }

  /// Skip to and over the next ';'.
  void skip_statement() {
    while (!ts().at_eof() && !ts().peek().is_punct(";")) ts().next();
    ts().accept_punct(";");
  }

  /// Skip a design unit delimited by "... end ... ;" with nesting awareness
  /// for the constructs that can appear in package bodies.
  void skip_design_unit() {
    int depth = 0;
    while (!ts().at_eof()) {
      const Token& t = ts().next();
      if (t.is_keyword("is")) {
        ++depth;
      } else if (t.is_keyword("end")) {
        // consume optional repeated keyword / name up to ';'
        while (!ts().at_eof() && !ts().peek().is_punct(";")) ts().next();
        ts().accept_punct(";");
        if (--depth <= 0) return;
      }
    }
  }

  void parse_library_clause() {
    ts().next();  // 'library'
    while (ts().peek().kind == TokenKind::kIdentifier) {
      pending_libraries_.push_back(util::to_lower(ts().next().text));
      if (!ts().accept_punct(",")) break;
    }
    if (!ts().accept_punct(";")) {
      error_here("expected ';' after library clause");
      skip_statement();
    }
  }

  void parse_use_clause() {
    ts().next();  // 'use'
    std::string clause;
    while (!ts().at_eof() && !ts().peek().is_punct(";")) {
      const Token& t = ts().next();
      if (t.is_punct(".")) {
        clause.push_back('.');
      } else {
        clause += util::to_lower(t.text);
      }
    }
    ts().accept_punct(";");
    if (!clause.empty()) pending_uses_.push_back(clause);
  }

  /// Collect expression text until one of the stop punctuation marks at
  /// paren depth zero.
  std::string collect_expr(std::initializer_list<std::string_view> stops) {
    std::string out;
    int depth = 0;
    while (!ts().at_eof()) {
      const Token& t = ts().peek();
      if (depth == 0 && t.kind == TokenKind::kPunct) {
        for (std::string_view s : stops) {
          if (t.text == s) return out;
        }
      }
      if (t.is_punct("(")) ++depth;
      if (t.is_punct(")")) {
        if (depth == 0) return out;
        --depth;
      }
      append_token_text(out, t);
      ts().next();
    }
    return out;
  }

  /// Parse `name [ '(' constraint ')' ]` and fill type/range info of ports.
  /// Returns the bare type name.
  std::string parse_subtype(Port* port) {
    std::string type_name;
    // Selected names: ieee.numeric_std.unsigned -> keep last component.
    while (ts().peek().kind == TokenKind::kIdentifier) {
      type_name = util::to_lower(ts().next().text);
      if (!ts().accept_punct(".")) break;
    }
    // `integer range 0 to 7` — consume and ignore the range constraint.
    if (ts().peek().is_keyword("range")) {
      ts().next();
      (void)collect_expr({";", ")", ":="});
      return type_name;
    }
    if (ts().peek().is_punct("(")) {
      ts().next();
      // Vector constraint: expr (downto|to) expr  {"," ...}.
      std::string left;
      int depth = 0;
      bool downto = true;
      bool saw_dir = false;
      std::string right;
      std::string* target = &left;
      while (!ts().at_eof()) {
        const Token& t = ts().peek();
        if (depth == 0 && (t.is_punct(")") || t.is_punct(","))) break;
        if (t.is_punct("(")) ++depth;
        if (t.is_punct(")")) --depth;
        if (depth == 0 && (t.is_keyword("downto") || t.is_keyword("to"))) {
          downto = t.is_keyword("downto");
          saw_dir = true;
          target = &right;
          ts().next();
          continue;
        }
        append_token_text(*target, t);
        ts().next();
      }
      // Further dimensions are skipped (first range wins).
      int extra_depth = 0;
      while (!ts().at_eof()) {
        const Token& t = ts().peek();
        if (extra_depth == 0 && t.is_punct(")")) break;
        if (t.is_punct("(")) ++extra_depth;
        if (t.is_punct(")")) --extra_depth;
        ts().next();
      }
      ts().accept_punct(")");
      if (port != nullptr && saw_dir) {
        port->is_vector = true;
        port->left_expr = left;
        port->right_expr = right;
        port->downto = downto;
      }
    }
    return type_name;
  }

  /// generic ( decl ; decl ; ... ) ;
  void parse_generic_clause(Module& m) {
    ts().next();  // 'generic'
    if (!ts().accept_punct("(")) {
      error_here("expected '(' after generic");
      skip_statement();
      return;
    }
    while (!ts().at_eof() && !ts().peek().is_punct(")")) {
      // Group of identifiers: a, b, c : type := default
      std::vector<Parameter> group;
      // VHDL-2008 interface may start with 'constant' or 'type'.
      ts().accept_keyword("constant");
      while (ts().peek().kind == TokenKind::kIdentifier) {
        Parameter p;
        p.loc = ts().peek().loc;
        p.name = ts().next().text;
        group.push_back(std::move(p));
        if (!ts().accept_punct(",")) break;
      }
      if (!ts().accept_punct(":")) {
        error_here("expected ':' in generic declaration");
        // resync at next ';' or ')'
        (void)collect_expr({";"});
        ts().accept_punct(";");
        continue;
      }
      const std::string type_name = parse_subtype(nullptr);
      std::string default_expr;
      if (ts().accept_punct(":=")) default_expr = collect_expr({";"});
      for (auto& p : group) {
        p.type_name = type_name;
        p.default_expr = default_expr;
        m.parameters.push_back(std::move(p));
      }
      if (!ts().accept_punct(";")) break;
    }
    ts().accept_punct(")");
    ts().accept_punct(";");
  }

  /// port ( decl ; decl ; ... ) ;
  void parse_port_clause(Module& m) {
    ts().next();  // 'port'
    if (!ts().accept_punct("(")) {
      error_here("expected '(' after port");
      skip_statement();
      return;
    }
    while (!ts().at_eof() && !ts().peek().is_punct(")")) {
      std::vector<Port> group;
      ts().accept_keyword("signal");
      while (ts().peek().kind == TokenKind::kIdentifier) {
        Port p;
        p.loc = ts().peek().loc;
        p.name = ts().next().text;
        group.push_back(std::move(p));
        if (!ts().accept_punct(",")) break;
      }
      if (!ts().accept_punct(":")) {
        error_here("expected ':' in port declaration");
        (void)collect_expr({";"});
        ts().accept_punct(";");
        continue;
      }
      PortDir dir = PortDir::kIn;  // VHDL default mode is `in`
      if (ts().accept_keyword("in")) dir = PortDir::kIn;
      else if (ts().accept_keyword("out")) dir = PortDir::kOut;
      else if (ts().accept_keyword("inout")) dir = PortDir::kInout;
      else if (ts().accept_keyword("buffer")) dir = PortDir::kOut;
      else if (ts().accept_keyword("linkage")) dir = PortDir::kInout;

      Port proto;
      const std::string type_name = parse_subtype(&proto);
      if (ts().accept_punct(":=")) (void)collect_expr({";"});  // port default: ignored

      for (auto& p : group) {
        p.dir = dir;
        p.type_name = type_name;
        p.is_vector = proto.is_vector;
        p.left_expr = proto.left_expr;
        p.right_expr = proto.right_expr;
        p.downto = proto.downto;
        m.ports.push_back(std::move(p));
      }
      if (!ts().accept_punct(";")) break;
    }
    ts().accept_punct(")");
    ts().accept_punct(";");
  }

  bool parse_entity(Module& m) {
    ts().next();  // 'entity'
    if (ts().peek().kind != TokenKind::kIdentifier) {
      error_here("expected entity name");
      skip_statement();
      return false;
    }
    m.language = HdlLanguage::kVhdl;
    m.name = ts().next().text;
    if (!ts().accept_keyword("is")) {
      // 'entity work.foo' in instantiations — not a declaration; bail.
      skip_statement();
      return false;
    }
    while (!ts().at_eof()) {
      const Token& t = ts().peek();
      if (t.is_keyword("generic")) {
        parse_generic_clause(m);
      } else if (t.is_keyword("port")) {
        parse_port_clause(m);
      } else if (t.is_keyword("end")) {
        ts().next();
        ts().accept_keyword("entity");
        if (ts().peek().kind == TokenKind::kIdentifier) ts().next();  // repeated name
        ts().accept_punct(";");
        return true;
      } else if (t.is_keyword("begin")) {
        // Entity statement part — skip until matching 'end'.
        ts().next();
        while (!ts().at_eof() && !ts().peek().is_keyword("end")) ts().next();
      } else {
        ts().next();  // entity declarative items (attributes etc.)
      }
    }
    error_here("unterminated entity '" + m.name + "'");
    return !m.name.empty();
  }

  /// architecture <name> of <entity> is ... end ... ; — record name, skip body.
  void parse_architecture(DesignFile& file) {
    ts().next();  // 'architecture'
    std::string arch_name;
    std::string entity_name;
    if (ts().peek().kind == TokenKind::kIdentifier) arch_name = ts().next().text;
    if (ts().accept_keyword("of") && ts().peek().kind == TokenKind::kIdentifier) {
      entity_name = ts().next().text;
    }
    // Skip to matching end: count is/end pairs from process/function/etc.
    int depth = 0;
    bool saw_is = false;
    while (!ts().at_eof()) {
      const Token& t = ts().next();
      if (t.is_keyword("is")) {
        saw_is = true;
        ++depth;
      } else if (t.is_keyword("process") || t.is_keyword("generate") ||
                 t.is_keyword("case")) {
        // These close with their own 'end'; they don't always carry 'is'.
        ++depth;
      } else if (t.is_keyword("end")) {
        while (!ts().at_eof() && !ts().peek().is_punct(";")) ts().next();
        ts().accept_punct(";");
        if (--depth <= 0) break;
      }
    }
    (void)saw_is;
    if (!entity_name.empty()) {
      for (auto& m : file.modules) {
        if (util::iequals(m.name, entity_name)) {
          m.architectures.push_back(arch_name);
          return;
        }
      }
    }
  }

  std::string_view path_;
  std::vector<Diagnostic> diags_;
  std::optional<TokenStream> ts_;
  std::vector<std::string> pending_libraries_;
  std::vector<std::string> pending_uses_;
};

}  // namespace

ParseResult parse_vhdl(std::string_view text, std::string_view path) {
  return VhdlParser(text, path).run();
}

}  // namespace dovado::hdl
