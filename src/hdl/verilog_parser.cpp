#include "src/hdl/verilog_parser.hpp"

#include <vector>

#include "src/hdl/lexer.hpp"
#include "src/util/strings.hpp"

namespace dovado::hdl {

namespace {

void append_token_text(std::string& out, const Token& t) {
  const bool tight = t.is_punct(")") || t.is_punct(",") || t.is_punct("(");
  if (!out.empty() && !tight && out.back() != '(') out.push_back(' ');
  if (t.kind == TokenKind::kString) {
    out.push_back('"');
    out += t.text;
    out.push_back('"');
  } else {
    out += t.text;
  }
}

bool is_net_type(const Token& t) {
  return t.is_keyword("wire") || t.is_keyword("reg") || t.is_keyword("logic") ||
         t.is_keyword("bit") || t.is_keyword("tri") || t.is_keyword("wand") ||
         t.is_keyword("wor") || t.is_keyword("var");
}

bool is_param_type(const Token& t) {
  return t.is_keyword("integer") || t.is_keyword("int") || t.is_keyword("longint") ||
         t.is_keyword("shortint") || t.is_keyword("byte") || t.is_keyword("bit") ||
         t.is_keyword("logic") || t.is_keyword("real") || t.is_keyword("time") ||
         t.is_keyword("string") || t.is_keyword("unsigned") || t.is_keyword("signed");
}

class VerilogParser {
 public:
  VerilogParser(std::string_view text, HdlLanguage lang, std::string_view path)
      : lang_(lang), path_(path) {
    Lexer lexer(text, lang);
    ts_.emplace(lexer.tokenize(diags_));
  }

  ParseResult run() {
    ParseResult result;
    result.file.path = std::string(path_);
    result.file.language = lang_;
    while (!ts().at_eof()) {
      if (ts().peek().is_keyword("module") || ts().peek().is_keyword("macromodule")) {
        Module m;
        if (parse_module(m)) result.file.modules.push_back(std::move(m));
      } else if (ts().peek().is_keyword("package")) {
        // SV package: record name as a use clause for parse ordering (the
        // paper: "SV packages are read at the very beginning of the step").
        ts().next();
        if (ts().peek().kind == TokenKind::kIdentifier) {
          pending_packages_.push_back(ts().next().text);
        }
        skip_until_keyword("endpackage");
      } else {
        ts().next();
      }
    }
    result.diagnostics = std::move(diags_);
    result.ok = !result.file.modules.empty();
    return result;
  }

 private:
  TokenStream& ts() { return *ts_; }
  void error_here(std::string msg) { diags_.push_back({ts().peek().loc, std::move(msg)}); }

  void skip_until_keyword(std::string_view kw) {
    while (!ts().at_eof() && !ts().peek().is_keyword(kw)) ts().next();
    if (!ts().at_eof()) ts().next();
  }

  std::string collect_expr(std::initializer_list<std::string_view> stops) {
    std::string out;
    int paren = 0;
    int bracket = 0;
    int brace = 0;
    while (!ts().at_eof()) {
      const Token& t = ts().peek();
      if (paren == 0 && bracket == 0 && brace == 0 && t.kind == TokenKind::kPunct) {
        for (std::string_view s : stops) {
          if (t.text == s) return out;
        }
      }
      if (t.is_punct("(")) ++paren;
      if (t.is_punct(")")) {
        if (paren == 0) return out;
        --paren;
      }
      if (t.is_punct("[")) ++bracket;
      if (t.is_punct("]")) --bracket;
      if (t.is_punct("{")) ++brace;
      if (t.is_punct("}")) --brace;
      append_token_text(out, t);
      ts().next();
    }
    return out;
  }

  /// Parse `[ left : right ]`; returns true and fills the output when a
  /// packed range was present.
  bool parse_range(std::string& left, std::string& right) {
    if (!ts().peek().is_punct("[")) return false;
    ts().next();
    left.clear();
    right.clear();
    int depth = 0;
    std::string* target = &left;
    while (!ts().at_eof()) {
      const Token& t = ts().peek();
      if (depth == 0 && t.is_punct("]")) {
        ts().next();
        break;
      }
      if (depth == 0 && t.is_punct(":")) {
        target = &right;
        ts().next();
        continue;
      }
      if (t.is_punct("[") || t.is_punct("(")) ++depth;
      if (t.is_punct("]") || t.is_punct(")")) --depth;
      append_token_text(*target, t);
      ts().next();
    }
    return true;
  }

  /// One parameter declaration after the `parameter`/`localparam` keyword:
  /// [type] [range] name = expr {, name = expr}. Appends to m.parameters.
  /// `stops` are the expression terminators of the surrounding context.
  void parse_param_tail(Module& m, bool is_local,
                        std::initializer_list<std::string_view> stops) {
    // Optional type keywords (possibly two: "int unsigned").
    while (is_param_type(ts().peek())) {
      if (param_type_.empty()) param_type_ = util::to_lower(ts().peek().text);
      ts().next();
    }
    std::string range_l;
    std::string range_r;
    (void)parse_range(range_l, range_r);  // packed range of the parameter itself

    while (ts().peek().kind == TokenKind::kIdentifier) {
      Parameter p;
      p.loc = ts().peek().loc;
      p.name = ts().next().text;
      p.type_name = param_type_;
      p.is_local = is_local;
      p.range_left_expr = range_l;
      p.range_right_expr = range_r;
      // Unpacked dimension on the name (rare for params) — skip.
      std::string ul;
      std::string ur;
      (void)parse_range(ul, ur);
      if (ts().accept_punct("=")) p.default_expr = collect_expr(stops);
      m.parameters.push_back(std::move(p));
      if (!ts().accept_punct(",")) break;
      // A following `parameter` keyword restarts a declaration (ANSI lists
      // allow `parameter A = 1, parameter B = 2`).
      if (ts().peek().is_keyword("parameter") || ts().peek().is_keyword("localparam")) break;
    }
    param_type_.clear();
  }

  /// ANSI parameter port list: #( parameter ... , localparam ... ).
  void parse_param_port_list(Module& m) {
    ts().next();  // '#'
    if (!ts().accept_punct("(")) {
      error_here("expected '(' after '#'");
      return;
    }
    while (!ts().at_eof() && !ts().peek().is_punct(")")) {
      bool is_local = false;
      if (ts().accept_keyword("localparam")) is_local = true;
      else ts().accept_keyword("parameter");
      const std::size_t before = ts().position();
      parse_param_tail(m, is_local, {",", ")"});
      // parse_param_tail already swallows the ',' preceding a new
      // parameter/localparam keyword; consume it here otherwise.
      ts().accept_punct(",");
      if (ts().position() == before) ts().next();  // guarantee progress
    }
    ts().accept_punct(")");
  }

  /// ANSI port list entry or non-ANSI simple name list.
  void parse_port_list(Module& m) {
    ts().next();  // '('
    PortDir current_dir = PortDir::kIn;
    bool have_dir = false;
    bool current_vec = false;
    bool current_multi = false;
    std::string cur_left;
    std::string cur_right;
    std::string current_type;

    while (!ts().at_eof() && !ts().peek().is_punct(")")) {
      const Token& t = ts().peek();
      if (t.is_keyword("input") || t.is_keyword("output") || t.is_keyword("inout")) {
        current_dir = t.is_keyword("input")
                          ? PortDir::kIn
                          : (t.is_keyword("output") ? PortDir::kOut : PortDir::kInout);
        have_dir = true;
        current_vec = false;
        cur_left.clear();
        cur_right.clear();
        current_type.clear();
        ts().next();
        while (is_net_type(ts().peek()) || ts().peek().is_keyword("signed") ||
               ts().peek().is_keyword("unsigned")) {
          if (current_type.empty() && is_net_type(ts().peek())) {
            current_type = util::to_lower(ts().peek().text);
          }
          ts().next();
        }
        current_vec = parse_range(cur_left, cur_right);
        // Multidimensional packed arrays (`[A-1:0][B-1:0]`): keep the
        // outermost range, consume the rest.
        current_multi = false;
        while (ts().peek().is_punct("[")) {
          std::string l2;
          std::string r2;
          (void)parse_range(l2, r2);
          current_multi = true;
        }
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        if (!have_dir) {
          // Non-ANSI header: just names; directions resolved from the body.
          nonansi_order_.push_back(t.text);
          ts().next();
          // Swallow an optional unpacked range.
          std::string l;
          std::string r;
          (void)parse_range(l, r);
          ts().accept_punct(",");
          continue;
        }
        Port p;
        p.loc = t.loc;
        p.name = ts().next().text;
        p.dir = current_dir;
        p.type_name = current_type.empty() ? "wire" : current_type;
        p.is_vector = current_vec;
        p.left_expr = cur_left;
        p.right_expr = cur_right;
        p.multi_packed = current_multi;
        m.ports.push_back(std::move(p));
        // Default value on a port (SV): skip.
        if (ts().accept_punct("=")) (void)collect_expr({",", ")"});
        // Unpacked dimensions: skip.
        while (ts().peek().is_punct("[")) {
          std::string l;
          std::string r;
          (void)parse_range(l, r);
        }
        ts().accept_punct(",");
        continue;
      }
      ts().next();  // anything else (interface ports etc.)
    }
    ts().accept_punct(")");
  }

  /// Body-level `input|output|inout [net] [range] name {, name};` for
  /// non-ANSI modules, updating the ports declared in the header order.
  void parse_body_port_decl(Module& m) {
    const Token& kw = ts().next();
    const PortDir dir = kw.is_keyword("input")
                            ? PortDir::kIn
                            : (kw.is_keyword("output") ? PortDir::kOut : PortDir::kInout);
    std::string type_name;
    while (is_net_type(ts().peek()) || ts().peek().is_keyword("signed") ||
           ts().peek().is_keyword("unsigned")) {
      if (type_name.empty() && is_net_type(ts().peek()))
        type_name = util::to_lower(ts().peek().text);
      ts().next();
    }
    std::string left;
    std::string right;
    const bool is_vec = parse_range(left, right);
    while (ts().peek().kind == TokenKind::kIdentifier) {
      Port p;
      p.loc = ts().peek().loc;
      p.name = ts().next().text;
      p.dir = dir;
      p.type_name = type_name.empty() ? "wire" : type_name;
      p.is_vector = is_vec;
      p.left_expr = left;
      p.right_expr = right;
      m.ports.push_back(std::move(p));
      if (!ts().accept_punct(",")) break;
    }
    ts().accept_punct(";");
  }

  bool parse_module(Module& m) {
    ts().next();  // 'module'
    m.language = lang_;
    if (ts().peek().kind != TokenKind::kIdentifier) {
      error_here("expected module name");
      return false;
    }
    m.name = ts().next().text;
    m.use_clauses = pending_packages_;
    nonansi_order_.clear();

    // Package import list: import pkg::*;
    while (ts().peek().is_keyword("import")) {
      ts().next();
      std::string import_text = collect_expr({";"});
      ts().accept_punct(";");
      m.use_clauses.push_back(import_text);
    }
    if (ts().peek().is_punct("#")) parse_param_port_list(m);
    if (ts().peek().is_punct("(")) parse_port_list(m);
    if (!ts().accept_punct(";")) {
      error_here("expected ';' after module header");
    }

    // Body scan: pick up non-ANSI declarations; skip nested scopes that may
    // declare function arguments with input/output keywords.
    while (!ts().at_eof()) {
      const Token& t = ts().peek();
      if (t.is_keyword("endmodule")) {
        ts().next();
        break;
      }
      if (t.is_keyword("function")) {
        skip_until_keyword("endfunction");
        continue;
      }
      if (t.is_keyword("task")) {
        skip_until_keyword("endtask");
        continue;
      }
      if (t.is_keyword("parameter") || t.is_keyword("localparam")) {
        const bool is_local = t.is_keyword("localparam");
        ts().next();
        parse_param_tail(m, is_local, {";", ","});
        ts().accept_punct(";");
        continue;
      }
      if (t.is_keyword("input") || t.is_keyword("output") || t.is_keyword("inout")) {
        parse_body_port_decl(m);
        continue;
      }
      ts().next();
    }
    return true;
  }

  HdlLanguage lang_;
  std::string_view path_;
  std::vector<Diagnostic> diags_;
  std::optional<TokenStream> ts_;
  std::vector<std::string> pending_packages_;
  std::vector<std::string> nonansi_order_;
  std::string param_type_;
};

}  // namespace

ParseResult parse_verilog(std::string_view text, HdlLanguage lang, std::string_view path) {
  return VerilogParser(text, lang, path).run();
}

}  // namespace dovado::hdl
