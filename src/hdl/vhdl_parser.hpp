// VHDL-2008 declaration parser.
//
// Parses library/use clauses, entity declarations (generic and port
// clauses, all declaration styles: grouped identifiers, default modes,
// constrained subtypes, default expressions) and records architecture names.
// Architecture/package bodies are skipped — only the interface matters for
// Dovado's boxing step.
#pragma once

#include <string_view>

#include "src/hdl/ast.hpp"

namespace dovado::hdl {

/// Parse VHDL source text. `path` is only used for diagnostics/bookkeeping.
[[nodiscard]] ParseResult parse_vhdl(std::string_view text, std::string_view path = "<memory>");

}  // namespace dovado::hdl
