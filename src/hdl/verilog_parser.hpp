// Verilog-2005 / SystemVerilog module-header parser.
//
// Handles ANSI headers (`module m #(parameter W = 8)(input wire clk, ...)`),
// non-ANSI headers with body-level parameter/input/output declarations, and
// SV flavours (typed parameters, localparam, logic ports). Module bodies are
// scanned only to recover non-ANSI declarations; functions/tasks/generate
// blocks are skipped so their locals cannot be mistaken for ports.
#pragma once

#include <string_view>

#include "src/hdl/ast.hpp"

namespace dovado::hdl {

/// Parse Verilog/SV source text. The `lang` flag only affects bookkeeping
/// (the grammar subset accepted is the SV superset either way).
[[nodiscard]] ParseResult parse_verilog(std::string_view text, HdlLanguage lang,
                                        std::string_view path = "<memory>");

}  // namespace dovado::hdl
