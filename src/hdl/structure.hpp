// Net-level structure extraction from Verilog/SystemVerilog module bodies.
//
// The declaration parsers (paper Sec. III-A.1) model only the module
// interface; the netlist lint rules (src/analysis/hdl_lint) additionally
// need to know which nets exist inside the body, who drives them and who
// reads them. This module token-scans one module body — reusing the shared
// Lexer — and extracts exactly that: net declarations with their packed
// ranges, continuous assigns (whole-net vs slice), procedural drive targets
// of always/initial regions, and instance connections.
//
// The scan is deliberately conservative: anything it cannot classify with
// certainty (instance connections, slices, concatenations) is recorded as
// "might drive and might read", so downstream rules stay free of false
// positives on real RTL. VHDL architectures are not scanned (found=false);
// VHDL designs get interface-level lint only.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/hdl/ast.hpp"

namespace dovado::hdl {

/// One net (wire/reg/logic declaration or port) seen in a module body.
struct NetInfo {
  std::string name;
  bool declared = false;      ///< body declaration seen (ports may lack one)
  bool is_vector = false;
  bool is_array = false;      ///< has unpacked dimensions; width rules skip it
  std::string left_expr;      ///< packed range bounds as source text
  std::string right_expr;
  SourceLoc loc;

  int whole_cont_drivers = 0;  ///< `assign name = ...`
  int slice_cont_drivers = 0;  ///< `assign name[i] = ...` / concat members
  int whole_proc_drivers = 0;  ///< `name <= ...` / `name = ...` in a process
  int slice_proc_drivers = 0;
  bool instance_connected = false;  ///< appears in an instantiation port list
  bool read = false;                ///< appears on some right-hand side

  [[nodiscard]] int drivers() const {
    return whole_cont_drivers + slice_cont_drivers + whole_proc_drivers +
           slice_proc_drivers + (instance_connected ? 1 : 0);
  }
};

/// One continuous assignment (the edges of the combinational net graph).
struct ContAssign {
  std::string lhs;
  bool whole = true;              ///< no select on the left-hand side
  std::vector<std::string> rhs;   ///< identifiers read by the right-hand side
  bool rhs_single_ident = false;  ///< RHS is exactly one bare identifier
  SourceLoc loc;
};

/// Everything the scanner recovered from one module body.
struct ModuleStructure {
  bool found = false;  ///< false: module body absent or language unsupported
  std::map<std::string, NetInfo> nets;
  std::vector<ContAssign> assigns;
};

/// Scan `text` (a full source file) for the body of `module_name`.
/// Only Verilog/SystemVerilog is supported; VHDL returns found=false.
[[nodiscard]] ModuleStructure scan_structure(std::string_view text, HdlLanguage language,
                                             const std::string& module_name);

}  // namespace dovado::hdl
