#include "src/hdl/expr.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "src/hdl/lexer.hpp"
#include "src/util/strings.hpp"

namespace dovado::hdl {

void ExprEnv::set(std::string_view name, std::int64_t value) {
  values_[util::to_lower(name)] = value;
}

std::optional<std::int64_t> ExprEnv::get(std::string_view name) const {
  auto it = values_.find(util::to_lower(name));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t clog2(std::int64_t n) {
  if (n <= 1) return 0;
  std::int64_t bits = 0;
  std::int64_t v = n - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

namespace {

/// Parse a numeric literal token into an integer value.
std::optional<std::int64_t> literal_value(const std::string& text, HdlLanguage lang) {
  std::string clean;
  clean.reserve(text.size());
  for (char c : text)
    if (c != '_') clean.push_back(c);

  if (lang == HdlLanguage::kVhdl) {
    const auto hash = clean.find('#');
    if (hash != std::string::npos) {
      // base#value#
      long long base = 0;
      if (!util::parse_int(clean.substr(0, hash), base) || base < 2 || base > 16) {
        return std::nullopt;
      }
      const auto end = clean.find('#', hash + 1);
      const std::string digits =
          clean.substr(hash + 1, end == std::string::npos ? std::string::npos : end - hash - 1);
      std::int64_t value = 0;
      for (char c : digits) {
        int d = 0;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return std::nullopt;
        if (d >= base) return std::nullopt;
        value = value * base + d;
      }
      return value;
    }
  } else {
    const auto tick = clean.find('\'');
    if (tick != std::string::npos) {
      std::size_t i = tick + 1;
      if (i < clean.size() && (clean[i] == 's' || clean[i] == 'S')) ++i;
      if (i >= clean.size()) return std::nullopt;
      const char basec = static_cast<char>(std::tolower(static_cast<unsigned char>(clean[i])));
      int base = 10;
      switch (basec) {
        case 'h': base = 16; break;
        case 'd': base = 10; break;
        case 'o': base = 8; break;
        case 'b': base = 2; break;
        default: return std::nullopt;
      }
      ++i;
      std::int64_t value = 0;
      for (; i < clean.size(); ++i) {
        const char c = clean[i];
        int d = 0;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return std::nullopt;
        if (d >= base) return std::nullopt;
        value = value * base + d;
      }
      return value;
    }
  }
  // Plain decimal (reject reals).
  if (clean.find('.') != std::string::npos || clean.find('e') != std::string::npos ||
      clean.find('E') != std::string::npos) {
    return std::nullopt;
  }
  long long v = 0;
  if (!util::parse_int(clean, v)) return std::nullopt;
  return v;
}

/// Pratt-style evaluator over the token stream.
class Evaluator {
 public:
  Evaluator(TokenStream& ts, HdlLanguage lang, const ExprEnv& env)
      : ts_(ts), lang_(lang), env_(env) {}

  std::optional<std::int64_t> parse(int min_bp) {
    auto lhs = parse_prefix();
    if (!lhs) return std::nullopt;
    while (true) {
      const Token& op = ts_.peek();
      const int bp = infix_binding(op);
      if (bp == 0 || bp < min_bp) break;
      if (op.is_punct("?")) {
        // Ternary: cond ? a : b (right-assoc, lowest precedence).
        ts_.next();
        auto then_v = parse(1);
        if (!then_v || !ts_.accept_punct(":")) return fail("malformed ternary");
        auto else_v = parse(1);
        if (!else_v) return std::nullopt;
        lhs = (*lhs != 0) ? then_v : else_v;
        continue;
      }
      ts_.next();
      // '**' is right-associative; everything else left-associative.
      const bool right_assoc = op.is_punct("**");
      auto rhs = parse(right_assoc ? bp : bp + 1);
      if (!rhs) return std::nullopt;
      lhs = apply(op, *lhs, *rhs);
      if (!lhs) return std::nullopt;
    }
    return lhs;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::optional<std::int64_t> fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
    return std::nullopt;
  }

  static int infix_binding(const Token& t) {
    if (t.kind == TokenKind::kPunct) {
      const std::string& p = t.text;
      if (p == "?") return 2;
      if (p == "||") return 3;
      if (p == "&&") return 4;
      if (p == "==" || p == "!=" || p == "/=" || p == "=") return 5;
      if (p == "<" || p == ">" || p == "<=" || p == ">=") return 6;
      if (p == "<<" || p == ">>") return 7;
      if (p == "+" || p == "-" || p == "&" || p == "|" || p == "^") return 8;
      if (p == "*" || p == "/" || p == "%") return 9;
      if (p == "**") return 11;
    }
    if (t.kind == TokenKind::kIdentifier) {
      if (t.is_keyword("mod") || t.is_keyword("rem")) return 9;
      if (t.is_keyword("sll") || t.is_keyword("srl")) return 7;
      if (t.is_keyword("and")) return 4;
      if (t.is_keyword("or")) return 3;
    }
    return 0;
  }

  std::optional<std::int64_t> apply(const Token& op, std::int64_t a, std::int64_t b) {
    const std::string p = util::to_lower(op.text);
    if (p == "+") return a + b;
    if (p == "-") return a - b;
    if (p == "*") return a * b;
    if (p == "/") {
      if (b == 0) return fail("division by zero");
      return a / b;
    }
    if (p == "%" || p == "mod") {
      if (b == 0) return fail("modulo by zero");
      // VHDL mod follows the sign of the divisor; with the positive divisors
      // used in parameter maths this matches C++ % for non-negative a.
      std::int64_t r = a % b;
      if (p == "mod" && r != 0 && ((r < 0) != (b < 0))) r += b;
      return r;
    }
    if (p == "rem") {
      if (b == 0) return fail("rem by zero");
      return a % b;
    }
    if (p == "**") {
      if (b < 0) return fail("negative exponent");
      std::int64_t result = 1;
      for (std::int64_t i = 0; i < b; ++i) {
        result *= a;
        if (std::llabs(result) > (1LL << 60)) return fail("exponent overflow");
      }
      return result;
    }
    if (p == "<<" || p == "sll") return b >= 0 && b < 63 ? a << b : 0;
    if (p == ">>" || p == "srl") return b >= 0 && b < 63 ? a >> b : 0;
    if (p == "==" || p == "=") return a == b ? 1 : 0;
    if (p == "!=" || p == "/=") return a != b ? 1 : 0;
    if (p == "<") return a < b ? 1 : 0;
    if (p == ">") return a > b ? 1 : 0;
    if (p == "<=") return a <= b ? 1 : 0;
    if (p == ">=") return a >= b ? 1 : 0;
    if (p == "&&" || p == "and") return (a != 0 && b != 0) ? 1 : 0;
    if (p == "||" || p == "or") return (a != 0 || b != 0) ? 1 : 0;
    if (p == "&") return a & b;
    if (p == "|") return a | b;
    if (p == "^") return a ^ b;
    return fail("unsupported operator '" + op.text + "'");
  }

  std::optional<std::int64_t> parse_prefix() {
    const Token& t = ts_.peek();
    if (t.is_punct("(")) {
      ts_.next();
      auto inner = parse(1);
      if (!inner || !ts_.accept_punct(")")) return fail("missing ')'");
      return inner;
    }
    if (t.is_punct("-")) {
      ts_.next();
      auto v = parse(10);
      if (!v) return std::nullopt;
      return -*v;
    }
    if (t.is_punct("+")) {
      ts_.next();
      return parse(10);
    }
    if (t.is_punct("!") || t.is_keyword("not")) {
      ts_.next();
      auto v = parse(10);
      if (!v) return std::nullopt;
      return *v == 0 ? 1 : 0;
    }
    if (t.kind == TokenKind::kNumber) {
      auto v = literal_value(t.text, lang_);
      ts_.next();
      if (!v) return fail("unsupported literal '" + t.text + "'");
      return v;
    }
    if (t.kind == TokenKind::kChar) {
      // '0'/'1' used as boolean-ish defaults.
      ts_.next();
      if (t.text == "0") return 0;
      if (t.text == "1") return 1;
      return fail("non-numeric character literal");
    }
    if (t.kind == TokenKind::kIdentifier) {
      const std::string name = t.text;
      ts_.next();
      if (util::iequals(name, "true")) return 1;
      if (util::iequals(name, "false")) return 0;
      // Function call?
      if (ts_.peek().is_punct("(")) {
        return call_function(name);
      }
      auto v = env_.get(name);
      if (!v) return fail("unknown identifier '" + name + "'");
      return v;
    }
    return fail("unexpected token '" + t.text + "'");
  }

  std::optional<std::int64_t> call_function(const std::string& raw_name) {
    std::string name = util::to_lower(raw_name);
    if (!name.empty() && name[0] == '$') name.erase(0, 1);
    ts_.next();  // '('
    std::vector<std::int64_t> args;
    if (!ts_.peek().is_punct(")")) {
      while (true) {
        auto v = parse(1);
        if (!v) return std::nullopt;
        args.push_back(*v);
        if (ts_.accept_punct(",")) continue;
        break;
      }
    }
    if (!ts_.accept_punct(")")) return fail("missing ')' in call");
    if (name == "clog2" && args.size() == 1) return clog2(args[0]);
    if (name == "log2" && args.size() == 1) return clog2(args[0]);
    if (name == "abs" && args.size() == 1) return std::llabs(args[0]);
    if ((name == "max" || name == "maximum") && args.size() == 2)
      return args[0] > args[1] ? args[0] : args[1];
    if ((name == "min" || name == "minimum") && args.size() == 2)
      return args[0] < args[1] ? args[0] : args[1];
    if (name == "bits" && args.size() == 1) return clog2(args[0] + 1);
    return fail("unsupported function '" + raw_name + "'");
  }

  TokenStream& ts_;
  HdlLanguage lang_;
  const ExprEnv& env_;
  std::string error_;
};

}  // namespace

ExprResult eval_expr(std::string_view expr, HdlLanguage lang, const ExprEnv& env) {
  ExprResult result;
  const std::string_view trimmed = util::trim(expr);
  if (trimmed.empty()) {
    result.error = "empty expression";
    return result;
  }
  std::vector<Diagnostic> diags;
  Lexer lexer(trimmed, lang);
  TokenStream ts(lexer.tokenize(diags));
  if (!diags.empty()) {
    result.error = diags.front().message;
    return result;
  }
  Evaluator ev(ts, lang, env);
  auto v = ev.parse(1);
  if (!v) {
    result.error = ev.error().empty() ? "evaluation failed" : ev.error();
    return result;
  }
  if (!ts.at_eof()) {
    result.error = "trailing tokens after expression";
    return result;
  }
  result.value = v;
  return result;
}

std::optional<std::int64_t> port_width(const Port& port, HdlLanguage lang, const ExprEnv& env) {
  if (!port.is_vector) return 1;
  const ExprResult left = eval_expr(port.left_expr, lang, env);
  const ExprResult right = eval_expr(port.right_expr, lang, env);
  if (!left.ok() || !right.ok()) return std::nullopt;
  return std::llabs(*left.value - *right.value) + 1;
}

ExprEnv build_param_env(const Module& module,
                        const std::map<std::string, std::int64_t>& overrides) {
  // Case-insensitive override lookup (VHDL generics).
  std::map<std::string, std::int64_t> norm;
  for (const auto& [k, v] : overrides) norm[util::to_lower(k)] = v;

  ExprEnv env;
  for (const auto& p : module.parameters) {
    const auto it = norm.find(util::to_lower(p.name));
    if (it != norm.end() && !p.is_local) {
      env.set(p.name, it->second);
      continue;
    }
    if (p.default_expr.empty()) continue;
    const ExprResult r = eval_expr(p.default_expr, module.language, env);
    if (r.ok()) env.set(p.name, *r.value);
  }
  return env;
}

}  // namespace dovado::hdl
