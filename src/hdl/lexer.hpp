// Shared tokenizer for the VHDL and (System)Verilog declaration parsers and
// for the constant-expression evaluator.
//
// Language differences handled here: comment syntax (VHDL "--" vs V/SV
// "//" and "/* */"), based literals (VHDL 16#ff#, Verilog 8'hff), character
// literals ('0' is a value in VHDL), and escaped identifiers (\foo in
// Verilog, \foo\ in VHDL).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/hdl/ast.hpp"

namespace dovado::hdl {

enum class TokenKind {
  kIdentifier,
  kNumber,   ///< numeric literal, original text preserved
  kString,   ///< "..." with quotes stripped
  kChar,     ///< VHDL character literal, e.g. '0'
  kPunct,    ///< operator/punctuation, longest-match
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  SourceLoc loc;

  [[nodiscard]] bool is_punct(std::string_view p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  /// Case-insensitive keyword check (VHDL keywords are case-insensitive;
  /// V/SV keywords are lower case so the check is equivalent there).
  [[nodiscard]] bool is_keyword(std::string_view kw) const;
};

/// Tokenize a full source text. Comments and whitespace are skipped; an
/// explicit kEof token terminates the stream. Unterminated strings/comments
/// produce a diagnostic and lexing continues at the next line.
class Lexer {
 public:
  Lexer(std::string_view text, HdlLanguage language);

  /// Run the lexer; diagnostics are appended to `diags`.
  [[nodiscard]] std::vector<Token> tokenize(std::vector<Diagnostic>& diags);

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance();
  void skip_trivia(std::vector<Diagnostic>& diags);
  Token lex_identifier();
  Token lex_number();
  Token lex_string(std::vector<Diagnostic>& diags);
  Token lex_punct();
  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  std::string_view text_;
  HdlLanguage language_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

/// A token cursor with the lookahead helpers both parsers share.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& next() {
    const Token& t = peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  [[nodiscard]] bool at_eof() const { return peek().kind == TokenKind::kEof; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  void rewind(std::size_t pos) { pos_ = pos; }

  /// Consume a punct token if it matches; returns whether it did.
  bool accept_punct(std::string_view p) {
    if (peek().is_punct(p)) {
      next();
      return true;
    }
    return false;
  }
  /// Consume a keyword (case-insensitive identifier) if it matches.
  bool accept_keyword(std::string_view kw) {
    if (peek().is_keyword(kw)) {
      next();
      return true;
    }
    return false;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace dovado::hdl
