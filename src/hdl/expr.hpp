// Constant-expression evaluation for HDL parameter defaults and port widths.
//
// Parameter defaults and vector bounds routinely reference other parameters
// ("DEPTH-1", "$clog2(QUEUE_COUNT)", "2**ADDR_W"). Dovado needs their integer
// value for a concrete design point, so this module evaluates expression
// source text against a parameter environment. Only integer-valued
// synthesizable expressions are supported — the paper's DSE formulation is
// integer-only (Sec. III-B.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/hdl/ast.hpp"

namespace dovado::hdl {

/// Parameter-name -> value environment. VHDL lookups are case-insensitive,
/// so names are stored lower-cased; use ExprEnv helpers rather than touching
/// the map directly.
class ExprEnv {
 public:
  void set(std::string_view name, std::int64_t value);
  [[nodiscard]] std::optional<std::int64_t> get(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::int64_t> values_;
};

/// Outcome of evaluating an expression: a value or an error message
/// (unknown identifier, division by zero, unsupported construct).
struct ExprResult {
  std::optional<std::int64_t> value;
  std::string error;

  [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Evaluate `expr` (HDL source text, in the syntax of `lang`) against `env`.
///
/// Supported: integer literals (incl. VHDL based literals and Verilog sized
/// literals), parameter references, unary +/-, binary + - * / mod/% rem
/// ** << >> min/max/abs/clog2 function calls ($clog2 in V/SV), parentheses,
/// boolean literals (true/false -> 1/0), and relational/ternary operators
/// (V/SV `cond ? a : b`).
[[nodiscard]] ExprResult eval_expr(std::string_view expr, HdlLanguage lang, const ExprEnv& env);

/// Ceiling log2 as Verilog's $clog2 defines it: clog2(0)=0, clog2(1)=0,
/// clog2(n)=bits needed to address n items.
[[nodiscard]] std::int64_t clog2(std::int64_t n);

/// Evaluate the bit width of a port for a given environment: 1 for scalars,
/// |left-right|+1 for vectors. Returns nullopt if bounds don't evaluate.
[[nodiscard]] std::optional<std::int64_t> port_width(const Port& port, HdlLanguage lang,
                                                     const ExprEnv& env);

/// Build an environment from a module's parameter defaults evaluated in
/// declaration order, then overridden by `overrides` (a concrete design
/// point). Parameters whose defaults cannot be evaluated and are not
/// overridden are simply absent from the result.
[[nodiscard]] ExprEnv build_param_env(const Module& module,
                                      const std::map<std::string, std::int64_t>& overrides);

}  // namespace dovado::hdl
