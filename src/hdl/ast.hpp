// Abstract syntax for HDL module *declarations*.
//
// Dovado's parsing step (paper Sec. III-A.1) extracts exactly the hardware
// module interface: module name, parameter/generic declarations and port
// declarations — VHDL and (System)Verilog are regular in this declaration
// region even though the full languages are context-free. Everything below
// the interface (architecture/module bodies) is scanned but not modelled.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dovado::hdl {

enum class HdlLanguage { kVhdl, kVerilog, kSystemVerilog };

/// Printable name of a language ("VHDL", "Verilog", "SystemVerilog").
[[nodiscard]] const char* language_name(HdlLanguage lang);

/// 1-based position inside a source file.
struct SourceLoc {
  std::uint32_t line = 1;
  std::uint32_t col = 1;
};

/// A parse problem. Parsers collect diagnostics instead of throwing so that
/// a file with one malformed module still yields the others.
struct Diagnostic {
  SourceLoc loc;
  std::string message;
};

/// A module generic (VHDL) or parameter (V/SV). Default expressions are kept
/// as source text and evaluated lazily against a parameter environment (see
/// expr.hpp) because defaults may reference earlier parameters.
struct Parameter {
  std::string name;
  std::string type_name;     ///< declared type ("integer", "int", "natural", ...); may be empty in Verilog
  std::string default_expr;  ///< source text of the default; empty if none
  bool is_local = false;     ///< SV localparam / VHDL constant: not user-tunable
  /// Packed range of the parameter itself (`parameter [3:0] P = ...`),
  /// kept as source text; both empty when the parameter is unranged.
  std::string range_left_expr;
  std::string range_right_expr;
  SourceLoc loc;
};

enum class PortDir { kIn, kOut, kInout };

/// Printable name of a direction ("in", "out", "inout").
[[nodiscard]] const char* port_dir_name(PortDir dir);

/// A port declaration. Vector bounds are stored as expression text
/// (e.g. left="WIDTH-1", right="0") so widths parametrized by generics can
/// be evaluated per design point.
struct Port {
  std::string name;
  PortDir dir = PortDir::kIn;
  std::string type_name;  ///< "std_logic", "std_logic_vector", "wire", "logic", ...
  bool is_vector = false;
  std::string left_expr;   ///< empty for scalar ports
  std::string right_expr;  ///< empty for scalar ports
  bool downto = true;      ///< VHDL "downto" vs "to"; Verilog [l:r] maps to downto
  /// More than one packed dimension (`[A-1:0][B-1:0]`): left/right hold the
  /// outermost range only, so single-range width math does not apply.
  bool multi_packed = false;
  SourceLoc loc;
};

/// One parsed module/entity interface.
struct Module {
  std::string name;
  HdlLanguage language = HdlLanguage::kVhdl;
  std::vector<std::string> libraries;    ///< VHDL library clauses (e.g. "ieee")
  std::vector<std::string> use_clauses;  ///< VHDL use clauses / SV imports
  std::vector<Parameter> parameters;
  std::vector<Port> ports;
  std::vector<std::string> architectures;  ///< VHDL architecture names seen for this entity

  /// User-tunable parameters (excludes localparams/constants).
  [[nodiscard]] std::vector<Parameter> free_parameters() const {
    std::vector<Parameter> out;
    for (const auto& p : parameters)
      if (!p.is_local) out.push_back(p);
    return out;
  }

  /// Find a port by name (case-insensitive for VHDL, sensitive otherwise).
  [[nodiscard]] const Port* find_port(const std::string& name) const;
};

/// All modules found in one source file.
struct DesignFile {
  std::string path;
  HdlLanguage language = HdlLanguage::kVhdl;
  std::vector<Module> modules;

  [[nodiscard]] const Module* find_module(const std::string& name) const;
};

/// Result of parsing one file. `ok` is true when at least one module was
/// recovered and no fatal diagnostics occurred.
struct ParseResult {
  DesignFile file;
  std::vector<Diagnostic> diagnostics;
  bool ok = false;
};

/// Heuristic clock-port detection: a 1-bit input whose name contains
/// "clk" or "clock" (Dovado needs the clock to wire the box and the XDC
/// constraint). Returns nullptr when no candidate exists.
[[nodiscard]] const Port* find_clock_port(const Module& module);

}  // namespace dovado::hdl
