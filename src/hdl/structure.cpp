#include "src/hdl/structure.hpp"

#include <set>

#include "src/hdl/lexer.hpp"

namespace dovado::hdl {

namespace {

/// Verilog/SV words that can never be net names. Identifiers matching one
/// of these are skipped by the read/drive classification.
const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords = {
      "module", "endmodule", "macromodule", "input", "output", "inout", "wire",
      "reg", "logic", "bit", "tri", "tri0", "tri1", "wand", "wor", "var",
      "signed", "unsigned", "assign", "deassign", "always", "always_ff",
      "always_comb", "always_latch", "initial", "final", "begin", "end", "if",
      "else", "case", "casez", "casex", "endcase", "default", "for", "while",
      "repeat", "forever", "posedge", "negedge", "edge", "or", "and", "not",
      "xor", "nand", "nor", "xnor", "buf", "generate", "endgenerate", "genvar",
      "localparam", "parameter", "specparam", "integer", "real", "realtime",
      "time", "function", "endfunction", "task", "endtask", "return",
      "typedef", "enum", "struct", "union", "packed", "byte", "int",
      "shortint", "longint", "shortreal", "string", "void", "const", "static",
      "automatic", "unique", "unique0", "priority", "wait", "fork", "join",
      "join_any", "join_none", "disable", "force", "release", "supply0",
      "supply1", "event", "import", "export", "defparam", "inside", "iff",
      "do", "break", "continue", "assert", "assume", "cover", "property",
      "endproperty", "sequence", "endsequence", "specify", "endspecify",
  };
  return kKeywords;
}

bool is_kw(const Token& t) {
  return t.kind == TokenKind::kIdentifier && keyword_set().count(t.text) > 0;
}

bool is_name(const Token& t) { return t.kind == TokenKind::kIdentifier && !is_kw(t); }

/// The scanner proper: a linear, paren-depth-aware walk over the body
/// tokens of one module.
class Scanner {
 public:
  Scanner(const std::vector<Token>& tokens, std::size_t begin, std::size_t end,
          ModuleStructure& out)
      : toks_(tokens), i_(begin), end_(end), out_(out) {}

  void run() {
    while (i_ < end_) {
      const Token& t = toks_[i_];
      if (t.kind == TokenKind::kEof) break;
      if (t.is_punct("(")) { ++depth_; ++i_; continue; }
      if (t.is_punct(")")) { if (depth_ > 0) --depth_; ++i_; continue; }

      if (t.kind == TokenKind::kIdentifier && is_kw(t)) {
        const std::string& kw = t.text;
        if (kw == "function" || kw == "task") { skip_region(kw == "function" ? "endfunction" : "endtask"); continue; }
        if (kw == "parameter" || kw == "localparam" || kw == "specparam" ||
            kw == "integer" || kw == "genvar" || kw == "real" || kw == "realtime" ||
            kw == "time" || kw == "event" || kw == "typedef" || kw == "import" ||
            kw == "defparam") { skip_to_semicolon(); continue; }
        if (kw == "input" || kw == "output" || kw == "inout" || kw == "wire" ||
            kw == "reg" || kw == "logic" || kw == "bit" || kw == "tri" ||
            kw == "tri0" || kw == "tri1" || kw == "wand" || kw == "wor" ||
            kw == "var") { parse_decl(); continue; }
        if (kw == "assign") { parse_assign(); continue; }
        // always/initial event controls, if/case/for headers: the main loop's
        // paren tracking classifies their contents as reads.
        ++i_;
        continue;
      }

      if (is_name(t)) {
        if (depth_ == 0) {
          if (try_instance()) continue;
          if (try_proc_driver()) continue;
        }
        mark_read(t.text);
        ++i_;
        continue;
      }
      ++i_;
    }
  }

 private:
  NetInfo& net(const std::string& name) {
    NetInfo& n = out_.nets[name];
    if (n.name.empty()) n.name = name;
    return n;
  }

  void mark_read(const std::string& name) { net(name).read = true; }

  void skip_to_semicolon() {
    while (i_ < end_ && !toks_[i_].is_punct(";")) ++i_;
    if (i_ < end_) ++i_;
  }

  void skip_region(std::string_view end_kw) {
    while (i_ < end_ && !toks_[i_].is_keyword(end_kw)) ++i_;
    if (i_ < end_) ++i_;
  }

  /// Skip a balanced punct pair starting at i_ (which must be `open`).
  /// Identifiers inside are marked as reads.
  void skip_balanced(std::string_view open, std::string_view close, bool mark_reads) {
    int depth = 0;
    while (i_ < end_) {
      const Token& t = toks_[i_];
      if (t.is_punct(open)) ++depth;
      else if (t.is_punct(close)) {
        --depth;
        if (depth == 0) { ++i_; return; }
      } else if (mark_reads && is_name(t)) {
        mark_read(t.text);
      }
      ++i_;
    }
  }

  /// Collect the source text of a packed range `[l:r]` at i_. Returns true
  /// and fills l/r when the range has exactly one top-level ':'.
  bool capture_range(std::string& left, std::string& right) {
    // i_ at '['.
    std::size_t j = i_ + 1;
    int brackets = 1;
    int parens = 0;
    std::string* side = &left;
    bool split = false;
    bool ok = true;
    while (j < end_ && brackets > 0) {
      const Token& t = toks_[j];
      if (t.is_punct("[")) ++brackets;
      else if (t.is_punct("]")) { --brackets; if (brackets == 0) break; }
      else if (t.is_punct("(")) ++parens;
      else if (t.is_punct(")")) --parens;
      if (brackets == 1 && parens == 0 && t.is_punct(":")) {
        if (split) ok = false;  // second top-level ':' — not a simple range
        split = true;
        side = &right;
        ++j;
        continue;
      }
      if (brackets > 0) {
        if (!side->empty()) *side += " ";
        *side += t.text;
        if (is_name(t)) mark_read(t.text);
      }
      ++j;
    }
    i_ = j < end_ ? j + 1 : j;  // past ']'
    return ok && split && !left.empty() && !right.empty();
  }

  void parse_decl() {
    // i_ at a direction or net-type keyword.
    bool variable_type = false;  // reg/logic/bit/var: initializer, not driver
    while (i_ < end_ && toks_[i_].kind == TokenKind::kIdentifier && is_kw(toks_[i_])) {
      const std::string& kw = toks_[i_].text;
      if (kw != "input" && kw != "output" && kw != "inout" && kw != "wire" &&
          kw != "reg" && kw != "logic" && kw != "bit" && kw != "tri" &&
          kw != "tri0" && kw != "tri1" && kw != "wand" && kw != "wor" &&
          kw != "var" && kw != "signed" && kw != "unsigned") {
        break;
      }
      if (kw == "reg" || kw == "logic" || kw == "bit" || kw == "var") {
        variable_type = true;
      }
      ++i_;
    }
    std::string left;
    std::string right;
    bool vec = false;
    bool multi_packed = false;
    while (i_ < end_ && toks_[i_].is_punct("[")) {
      if (!vec) {
        vec = capture_range(left, right);
      } else {
        multi_packed = true;  // multidimensional packed: width rules skip it
        std::string l2;
        std::string r2;
        (void)capture_range(l2, r2);
      }
    }
    // Name list.
    while (i_ < end_) {
      if (!is_name(toks_[i_])) { skip_to_semicolon(); return; }
      NetInfo& n = net(toks_[i_].text);
      n.declared = true;
      n.loc = toks_[i_].loc;
      if (vec) {
        n.is_vector = true;
        n.left_expr = left;
        n.right_expr = right;
      }
      if (multi_packed) n.is_array = true;
      ++i_;
      while (i_ < end_ && toks_[i_].is_punct("[")) {  // unpacked dimensions
        n.is_array = true;
        skip_balanced("[", "]", /*mark_reads=*/true);
      }
      if (i_ < end_ && toks_[i_].is_punct("=")) {
        ++i_;
        if (variable_type) {
          // `reg x = 0;` is an initial value, not a driver: skip the
          // expression without charging anyone.
          ContAssign ignored;
          collect_rhs(ignored, {",", ";"});
        } else {
          // Declaration assignment: `wire x = expr;` drives the whole net.
          ContAssign assign;
          assign.lhs = n.name;
          assign.whole = true;
          assign.loc = n.loc;
          collect_rhs(assign, {",", ";"});
          n.whole_cont_drivers += 1;
          out_.assigns.push_back(std::move(assign));
        }
      }
      if (i_ < end_ && toks_[i_].is_punct(",")) { ++i_; continue; }
      skip_to_semicolon();
      return;
    }
  }

  /// Collect RHS identifiers until one of `stops` at depth 0; leaves i_ on
  /// the stop token.
  void collect_rhs(ContAssign& assign, std::initializer_list<std::string_view> stops) {
    int parens = 0;
    int brackets = 0;
    int braces = 0;
    std::size_t tokens_seen = 0;
    std::size_t idents_seen = 0;
    while (i_ < end_) {
      const Token& t = toks_[i_];
      if (parens == 0 && brackets == 0 && braces == 0) {
        bool stop = false;
        for (std::string_view s : stops) {
          if (t.is_punct(s)) { stop = true; break; }
        }
        if (stop) break;
      }
      if (t.is_punct("(")) ++parens;
      else if (t.is_punct(")")) --parens;
      else if (t.is_punct("[")) ++brackets;
      else if (t.is_punct("]")) --brackets;
      else if (t.is_punct("{")) ++braces;
      else if (t.is_punct("}")) --braces;
      if (is_name(t)) {
        assign.rhs.push_back(t.text);
        mark_read(t.text);
        ++idents_seen;
      }
      ++tokens_seen;
      ++i_;
    }
    assign.rhs_single_ident = tokens_seen == 1 && idents_seen == 1;
  }

  void parse_assign() {
    ++i_;  // 'assign'
    if (i_ < end_ && toks_[i_].is_punct("#")) {  // delay control
      ++i_;
      if (i_ < end_ && toks_[i_].is_punct("(")) skip_balanced("(", ")", true);
      else if (i_ < end_) ++i_;
    }
    if (i_ < end_ && toks_[i_].is_punct("(")) {  // drive strength
      skip_balanced("(", ")", false);
    }
    for (;;) {
      if (i_ >= end_) return;
      if (toks_[i_].is_punct("{")) {
        // Concatenation target: each member is a partial driver.
        std::size_t j = i_;
        int braces = 0;
        while (j < end_) {
          const Token& t = toks_[j];
          if (t.is_punct("{")) ++braces;
          else if (t.is_punct("}")) { --braces; if (braces == 0) break; }
          else if (is_name(t)) net(t.text).slice_cont_drivers += 1;
          ++j;
        }
        i_ = j < end_ ? j + 1 : j;
        if (i_ < end_ && toks_[i_].is_punct("=")) {
          ++i_;
          ContAssign sink;  // reads only; concat LHS adds no loop edges
          collect_rhs(sink, {",", ";"});
        }
      } else if (is_name(toks_[i_])) {
        ContAssign assign;
        assign.lhs = toks_[i_].text;
        assign.loc = toks_[i_].loc;
        ++i_;
        while (i_ < end_ && toks_[i_].is_punct("[")) {
          assign.whole = false;
          skip_balanced("[", "]", true);
        }
        if (i_ >= end_ || !toks_[i_].is_punct("=")) { skip_to_semicolon(); return; }
        ++i_;
        collect_rhs(assign, {",", ";"});
        NetInfo& n = net(assign.lhs);
        if (assign.whole) n.whole_cont_drivers += 1;
        else n.slice_cont_drivers += 1;
        out_.assigns.push_back(std::move(assign));
      } else {
        skip_to_semicolon();
        return;
      }
      if (i_ < end_ && toks_[i_].is_punct(",")) { ++i_; continue; }
      skip_to_semicolon();
      return;
    }
  }

  /// Instantiation: `Type [#(...)] instance_name ( ... ) ;` at depth 0.
  /// Every net inside the port list might be driven and read by the child,
  /// so connection marks both (the scanner cannot see child directions).
  bool try_instance() {
    std::size_t j = i_ + 1;
    if (j < end_ && toks_[j].is_punct("#")) {
      ++j;
      if (j >= end_ || !toks_[j].is_punct("(")) return false;
      int depth = 0;
      while (j < end_) {
        if (toks_[j].is_punct("(")) ++depth;
        else if (toks_[j].is_punct(")")) { --depth; if (depth == 0) { ++j; break; } }
        ++j;
      }
    }
    if (j >= end_ || !is_name(toks_[j])) return false;
    ++j;
    while (j < end_ && toks_[j].is_punct("[")) {  // instance arrays
      int depth = 0;
      while (j < end_) {
        if (toks_[j].is_punct("[")) ++depth;
        else if (toks_[j].is_punct("]")) { --depth; if (depth == 0) { ++j; break; } }
        ++j;
      }
    }
    if (j >= end_ || !toks_[j].is_punct("(")) return false;
    // Confirmed instantiation; mark connected nets (skipping `.formal`
    // names) and advance past `;`.
    i_ = j;
    int depth = 0;
    bool after_dot = false;
    while (i_ < end_) {
      const Token& t = toks_[i_];
      if (t.is_punct("(")) ++depth;
      else if (t.is_punct(")")) { --depth; if (depth == 0) { ++i_; break; } }
      else if (t.is_punct(".")) { after_dot = true; ++i_; continue; }
      else if (is_name(t)) {
        if (!after_dot) {
          NetInfo& n = net(t.text);
          n.instance_connected = true;
          n.read = true;
        }
      }
      after_dot = false;
      ++i_;
    }
    if (i_ < end_ && toks_[i_].is_punct(";")) ++i_;
    return true;
  }

  /// Procedural drive target: `name [sel]... =` or `<=` at depth 0. The
  /// rest of the statement (to `;`) is reads.
  bool try_proc_driver() {
    std::size_t j = i_ + 1;
    bool whole = true;
    while (j < end_ && toks_[j].is_punct("[")) {
      whole = false;
      int depth = 0;
      while (j < end_) {
        if (toks_[j].is_punct("[")) ++depth;
        else if (toks_[j].is_punct("]")) { --depth; if (depth == 0) { ++j; break; } }
        ++j;
      }
    }
    if (j >= end_ || !(toks_[j].is_punct("=") || toks_[j].is_punct("<="))) return false;
    NetInfo& n = net(toks_[i_].text);
    if (whole) n.whole_proc_drivers += 1;
    else n.slice_proc_drivers += 1;
    if (!whole) {
      // Selected target: the index expressions are reads.
      std::size_t k = i_ + 1;
      int depth = 0;
      while (k < j) {
        if (is_name(toks_[k]) && depth > 0) mark_read(toks_[k].text);
        if (toks_[k].is_punct("[")) ++depth;
        else if (toks_[k].is_punct("]")) --depth;
        ++k;
      }
    }
    i_ = j + 1;
    // Consume the right-hand side, marking reads (any depth).
    while (i_ < end_ && !toks_[i_].is_punct(";")) {
      if (is_name(toks_[i_])) mark_read(toks_[i_].text);
      ++i_;
    }
    if (i_ < end_) ++i_;
    return true;
  }

  const std::vector<Token>& toks_;
  std::size_t i_;
  std::size_t end_;
  int depth_ = 0;  ///< paren depth in the main loop
  ModuleStructure& out_;
};

}  // namespace

ModuleStructure scan_structure(std::string_view text, HdlLanguage language,
                               const std::string& module_name) {
  ModuleStructure out;
  if (language == HdlLanguage::kVhdl) return out;

  std::vector<Diagnostic> diags;
  Lexer lexer(text, language);
  const std::vector<Token> tokens = lexer.tokenize(diags);

  // Locate `module <name>`.
  std::size_t i = 0;
  bool found = false;
  for (; i + 1 < tokens.size(); ++i) {
    if (tokens[i].is_keyword("module") && tokens[i + 1].kind == TokenKind::kIdentifier &&
        tokens[i + 1].text == module_name) {
      i += 2;
      found = true;
      break;
    }
  }
  if (!found) return out;

  // Skip the header (parameter ports + port list) to the first top-level ';'.
  int depth = 0;
  while (i < tokens.size() && tokens[i].kind != TokenKind::kEof) {
    if (tokens[i].is_punct("(")) ++depth;
    else if (tokens[i].is_punct(")")) --depth;
    else if (tokens[i].is_punct(";") && depth == 0) { ++i; break; }
    ++i;
  }

  // Body extent: up to the matching endmodule (modules do not nest).
  std::size_t end = i;
  while (end < tokens.size() && !tokens[end].is_keyword("endmodule") &&
         tokens[end].kind != TokenKind::kEof) {
    ++end;
  }

  out.found = true;
  Scanner scanner(tokens, i, end, out);
  scanner.run();
  return out;
}

}  // namespace dovado::hdl
