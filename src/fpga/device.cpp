#include "src/fpga/device.hpp"

#include "src/util/strings.hpp"

namespace dovado::fpga {

namespace {

// Timing parameter sets per family/speed grade. The UltraScale+ 16 nm fabric
// is substantially faster per logic level and per net than 28 nm 7-series;
// the ratios below reproduce the paper's observation that near-identical
// TiReX configurations reach ~550 MHz on the ZU3EG but only ~190 MHz on the
// XC7K70T (Sec. IV-D).
TimingParams kintex7_grade1() {
  TimingParams t;
  t.lut_delay_ns = 0.124;
  t.net_delay_ns = 0.380;
  t.ff_clk_to_q_ns = 0.340;
  t.ff_setup_ns = 0.060;
  t.bram_clk_to_out_ns = 1.900;
  t.dsp_delay_ns = 1.200;
  t.clock_uncertainty_ns = 0.035;
  t.congestion_alpha = 0.9;
  return t;
}

TimingParams artix7_grade1() {
  TimingParams t = kintex7_grade1();
  t.lut_delay_ns = 0.152;
  t.net_delay_ns = 0.460;
  t.bram_clk_to_out_ns = 2.100;
  return t;
}

TimingParams ultrascale_plus_grade1() {
  TimingParams t;
  t.lut_delay_ns = 0.043;
  t.net_delay_ns = 0.135;
  t.ff_clk_to_q_ns = 0.110;
  t.ff_setup_ns = 0.025;
  t.bram_clk_to_out_ns = 0.750;
  t.dsp_delay_ns = 0.500;
  t.clock_uncertainty_ns = 0.025;
  t.congestion_alpha = 0.7;
  return t;
}

std::vector<Device> build_catalog() {
  std::vector<Device> parts;

  // Kintex-7 XC7K70T: the paper quotes 41k LUTs and 82k FFs (Sec. IV-D).
  {
    Device d;
    d.part = "xc7k70tfbv676-1";
    d.family = "kintex7";
    d.display_name = "xc7k70t";
    d.process_nm = 28;
    d.speed_grade = 1;
    d.resources = {41000, 82000, 135, 240, 0, 300};
    d.timing = kintex7_grade1();
    parts.push_back(d);
  }

  // Zynq UltraScale+ ZU3EG: the paper quotes 70k LUTs and 141k FFs.
  {
    Device d;
    d.part = "xczu3eg-sbva484-1-e";
    d.family = "zynquplus";
    d.display_name = "zu3eg";
    d.process_nm = 16;
    d.speed_grade = 1;
    d.resources = {70560, 141120, 216, 360, 0, 252};
    d.timing = ultrascale_plus_grade1();
    parts.push_back(d);
  }

  // Artix-7 XC7A35T (PYNQ/Basys-class): exercises a smaller, slower fabric.
  {
    Device d;
    d.part = "xc7a35ticsg324-1l";
    d.family = "artix7";
    d.display_name = "xc7a35t";
    d.process_nm = 28;
    d.speed_grade = 1;
    d.resources = {20800, 41600, 50, 90, 0, 210};
    d.timing = artix7_grade1();
    parts.push_back(d);
  }

  // Kintex-7 XC7K325T (KC705 evaluation board), speed grade -2.
  {
    Device d;
    d.part = "xc7k325tffg900-2";
    d.family = "kintex7";
    d.display_name = "xc7k325t";
    d.process_nm = 28;
    d.speed_grade = 2;
    d.resources = {203800, 407600, 445, 840, 0, 500};
    d.timing = kintex7_grade1();
    // -2 silicon is ~10% faster than -1.
    d.timing.lut_delay_ns *= 0.90;
    d.timing.net_delay_ns *= 0.90;
    d.timing.ff_clk_to_q_ns *= 0.90;
    d.timing.bram_clk_to_out_ns *= 0.90;
    parts.push_back(d);
  }

  // Zynq-7020 (common board target; paper's methodology supports boards too).
  {
    Device d;
    d.part = "xc7z020clg400-1";
    d.family = "zynq7000";
    d.display_name = "xc7z020";
    d.process_nm = 28;
    d.speed_grade = 1;
    d.resources = {53200, 106400, 140, 220, 0, 200};
    d.timing = kintex7_grade1();
    parts.push_back(d);
  }

  // Virtex UltraScale+ VU9P: the URAM-bearing part, exercising the
  // "device-dependent resources are reported only when present" path.
  {
    Device d;
    d.part = "xcvu9p-flga2104-2l-e";
    d.family = "virtexuplus";
    d.display_name = "xcvu9p";
    d.process_nm = 16;
    d.speed_grade = 2;
    d.resources = {1182240, 2364480, 2160, 6840, 960, 832};
    d.timing = ultrascale_plus_grade1();
    parts.push_back(d);
  }

  return parts;
}

}  // namespace

const std::vector<Device>& DeviceCatalog::all() {
  static const std::vector<Device> catalog = build_catalog();
  return catalog;
}

std::optional<Device> DeviceCatalog::find(std::string_view part) {
  const std::string wanted = util::to_lower(util::trim(part));
  for (const auto& d : all()) {
    if (d.part == wanted || d.display_name == wanted) return d;
  }
  return std::nullopt;
}

}  // namespace dovado::fpga
