// FPGA part catalog: resource inventories and timing model parameters.
//
// Dovado targets "boards or parts"; the simulated toolchain needs the same
// information real Vivado gets from its part database — how many LUTs / FFs /
// BRAMs / DSPs / URAMs a device has, and how fast its fabric is. The paper's
// evaluation relies on two devices (Kintex-7 XC7K70T at 28 nm and Zynq
// UltraScale+ ZU3EG at 16 nm) whose resource counts it quotes explicitly;
// those numbers are reproduced here. URAM is deliberately absent from most
// parts because the paper calls out that device-dependent resources are
// "reported only if present".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dovado::fpga {

/// Countable fabric resources of a device. BRAM is counted in 36Kb blocks
/// (a BRAM18 consumes half a block).
struct ResourceInventory {
  std::int64_t lut = 0;
  std::int64_t ff = 0;
  std::int64_t bram36 = 0;
  std::int64_t dsp = 0;
  std::int64_t uram = 0;  ///< 0 when the family has no URAM
  std::int64_t io = 0;
};

/// Fabric timing parameters consumed by the SimVivado timing engine. All
/// delays in nanoseconds; calibrated per family/speed grade so the absolute
/// frequencies land in the ranges the paper reports (e.g. ~200 MHz for a
/// moderate-depth Kintex-7 datapath, ~550 MHz for the same logic on ZU3EG).
struct TimingParams {
  double lut_delay_ns = 0.124;      ///< one LUT6 logic level
  double net_delay_ns = 0.300;      ///< average routed net, uncongested
  double ff_clk_to_q_ns = 0.340;
  double ff_setup_ns = 0.060;
  double bram_clk_to_out_ns = 1.800;  ///< synchronous BRAM read access
  double dsp_delay_ns = 1.100;        ///< fully pipelined DSP48 stage
  double clock_uncertainty_ns = 0.035;
  double congestion_alpha = 0.9;    ///< routing-delay growth with utilization
};

/// A supported FPGA part.
struct Device {
  std::string part;         ///< full Xilinx part name, lower case
  std::string family;       ///< e.g. "kintex7", "zynquplus"
  std::string display_name; ///< short human-readable name
  int process_nm = 28;      ///< silicon process node
  int speed_grade = 1;      ///< -1/-2/-3 (higher = faster)
  ResourceInventory resources;
  TimingParams timing;

  /// True if this device exposes UltraRAM blocks.
  [[nodiscard]] bool has_uram() const noexcept { return resources.uram > 0; }
};

/// Static registry of known parts. Lookup is case-insensitive and accepts
/// either the full part name or the display name.
class DeviceCatalog {
 public:
  /// Find a device; std::nullopt when the part is unknown.
  [[nodiscard]] static std::optional<Device> find(std::string_view part);

  /// All known parts (stable order).
  [[nodiscard]] static const std::vector<Device>& all();
};

}  // namespace dovado::fpga
