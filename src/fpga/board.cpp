#include "src/fpga/board.hpp"

#include "src/util/strings.hpp"

namespace dovado::fpga {

namespace {

std::vector<Board> build_boards() {
  return {
      // Avnet Ultra96: the ZU3EG the paper's TiReX study targets.
      {"ultra96", "Avnet Ultra96-V2", "xczu3eg-sbva484-1-e", 100.0},
      // Digilent Arty A7-35T.
      {"arty-a7-35", "Digilent Arty A7-35T", "xc7a35ticsg324-1l", 100.0},
      // Digilent PYNQ-Z1 / Arty Z7-20 class Zynq-7020 boards.
      {"pynq-z1", "TUL PYNQ-Z1", "xc7z020clg400-1", 125.0},
      // Xilinx KC705 (Kintex-7 evaluation kit).
      {"kc705", "Xilinx KC705", "xc7k325tffg900-2", 200.0},
      // Xilinx VCU118 (Virtex UltraScale+ with URAM).
      {"vcu118", "Xilinx VCU118", "xcvu9p-flga2104-2l-e", 250.0},
  };
}

}  // namespace

const std::vector<Board>& BoardCatalog::all() {
  static const std::vector<Board> boards = build_boards();
  return boards;
}

std::optional<Board> BoardCatalog::find(std::string_view name) {
  const std::string wanted = util::to_lower(util::trim(name));
  for (const auto& b : all()) {
    if (b.name == wanted) return b;
  }
  return std::nullopt;
}

std::optional<Device> resolve_device(std::string_view target) {
  if (auto device = DeviceCatalog::find(target)) return device;
  if (auto board = BoardCatalog::find(target)) {
    return DeviceCatalog::find(board->part);
  }
  return std::nullopt;
}

}  // namespace dovado::fpga
