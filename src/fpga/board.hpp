// Board catalog: named development boards mapping to catalog parts.
//
// Dovado exposes "the possibility of tailoring this step for a given board
// or parts" (paper Sec. III-A.3). A board is a part plus board-level
// context (the reference clock the designer usually constrains against).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/fpga/device.hpp"

namespace dovado::fpga {

struct Board {
  std::string name;          ///< canonical lower-case board name
  std::string display_name;  ///< vendor marketing name
  std::string part;          ///< full part name (must exist in DeviceCatalog)
  double reference_clock_mhz = 100.0;
};

class BoardCatalog {
 public:
  /// Find a board by name (case-insensitive). std::nullopt when unknown.
  [[nodiscard]] static std::optional<Board> find(std::string_view name);

  /// All known boards (stable order).
  [[nodiscard]] static const std::vector<Board>& all();
};

/// Resolve a target string that may be a part name, a part display name or
/// a board name, to a device. std::nullopt when nothing matches.
[[nodiscard]] std::optional<Device> resolve_device(std::string_view target);

}  // namespace dovado::fpga
