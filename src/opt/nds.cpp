#include "src/opt/nds.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace dovado::opt {

std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    const std::vector<Objectives>& objectives) {
  const std::size_t n = objectives.size();
  std::vector<std::vector<std::size_t>> fronts;
  if (n == 0) return fronts;

  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      if (dominates(objectives[p], objectives[q])) {
        dominated_by[p].push_back(q);
        ++domination_count[q];
      } else if (dominates(objectives[q], objectives[p])) {
        dominated_by[q].push_back(p);
        ++domination_count[p];
      }
    }
  }

  std::vector<std::size_t> current;
  for (std::size_t p = 0; p < n; ++p) {
    if (domination_count[p] == 0) current.push_back(p);
  }
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowding_distance(const std::vector<Objectives>& objectives,
                                      const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(), std::numeric_limits<double>::infinity());
    return distance;
  }

  const std::size_t m = objectives[front[0]].size();
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return objectives[front[a]][obj] < objectives[front[b]][obj];
    });
    const double lo = objectives[front[order.front()]][obj];
    const double hi = objectives[front[order.back()]][obj];
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;  // no spread in this objective
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const double prev = objectives[front[order[i - 1]]][obj];
      const double next = objectives[front[order[i + 1]]][obj];
      distance[order[i]] += (next - prev) / (hi - lo);
    }
  }
  return distance;
}

std::vector<std::size_t> non_dominated_indices(const std::vector<Objectives>& objectives) {
  std::vector<std::size_t> result;
  const std::size_t n = objectives.size();
  for (std::size_t p = 0; p < n; ++p) {
    bool dominated = false;
    for (std::size_t q = 0; q < n && !dominated; ++q) {
      if (q != p && dominates(objectives[q], objectives[p])) dominated = true;
    }
    if (!dominated) result.push_back(p);
  }
  return result;
}

std::vector<Individual> pareto_subset(const std::vector<Individual>& population) {
  std::vector<Objectives> objs;
  objs.reserve(population.size());
  for (const auto& ind : population) objs.push_back(ind.objectives);
  const auto indices = non_dominated_indices(objs);

  std::vector<Individual> front;
  std::set<Genome> seen;
  for (std::size_t i : indices) {
    if (seen.insert(population[i].genome).second) front.push_back(population[i]);
  }
  return front;
}

bool insert_nondominated(std::vector<Individual>& front, Individual candidate) {
  for (const auto& member : front) {
    if (dominates(member.objectives, candidate.objectives) ||
        member.genome == candidate.genome) {
      return false;
    }
  }
  front.erase(std::remove_if(front.begin(), front.end(),
                             [&](const Individual& member) {
                               return dominates(candidate.objectives, member.objectives);
                             }),
              front.end());
  front.push_back(std::move(candidate));
  return true;
}

}  // namespace dovado::opt
