// The ask/tell optimizer layer: context, registry and the cheap searchers.
//
// The steady-state engine (core/dse.cpp) drives search through the
// opt::Optimizer seam only (see optimizer_base.hpp): ask() pulls the next
// candidate genome, tell() pushes the evaluated objectives back (with the
// tool seconds the answer cost, so composite optimizers can do
// per-tool-second credit assignment), reserve() marks genomes already
// handed out by a crashed campaign. Mirrors the edatool::EdaBackend
// registry pattern: optimizers are created by name through
// OptimizerRegistry, which throws with a did-you-mean hint on unknown
// names.
//
// Shipped implementations:
//   - "nsga2"      steady-state (mu+1) NSGA-II (opt/nsga2.hpp)
//   - "random"     seeded distinct uniform-random sampling
//   - "local"      integer local search hill-climbing from front members
//   - "surrogate"  random candidates ranked by a surrogate model (the
//                  engine wires in NWM estimates; degrades to random
//                  sampling while no surrogate is available)
//   - "exhaustive" mixed-radix enumeration of the whole space
//   - "portfolio"  UCB bandit over a set of member optimizers
//                  (opt/portfolio.hpp)
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/opt/nsga2.hpp"
#include "src/opt/optimizer_base.hpp"
#include "src/opt/problem.hpp"
#include "src/util/rng.hpp"

namespace dovado::opt {

/// Everything an optimizer factory may need. `problem` is required;
/// `ga` carries the seed, population sizing, operator knobs and warm-start
/// genomes every searcher interprets as it sees fit.
struct OptimizerContext {
  Problem* problem = nullptr;
  Nsga2Config ga;
  SurrogateFn surrogate;
  /// Member names for the "portfolio" optimizer; empty selects the default
  /// set (nsga2, random, local, surrogate).
  std::vector<std::string> portfolio_members;
};

/// Shared machinery of the non-GA searchers: a flat archive of every told
/// individual (front() is its duplicate-free non-dominated subset via
/// nds.hpp), a seen-set duplicate filter shared with reserve(), and seeded
/// warm-start genomes handed out before the searcher's own proposals.
class ArchiveOptimizer : public Optimizer {
 public:
  ArchiveOptimizer(OptimizerInfo info, const OptimizerContext& ctx);

  [[nodiscard]] const OptimizerInfo& info() const override { return info_; }
  [[nodiscard]] Genome ask() final;
  void tell(const Genome& genome, const Objectives& objectives,
            double cost_seconds = 0.0) override;
  void reserve(const Genome& genome) override { seen_.insert(genome); }
  [[nodiscard]] std::vector<Individual> front() const override;
  [[nodiscard]] std::size_t told() const override { return told_; }

 protected:
  /// The searcher's own proposal once seeds are exhausted. ask() records
  /// the returned genome in seen_; propose() must only consult it.
  [[nodiscard]] virtual Genome propose() = 0;

  /// Uniform-random genome distinct from everything seen; gives up and
  /// returns a duplicate after `stale_limit` consecutive known draws (the
  /// space is then effectively exhausted).
  [[nodiscard]] Genome random_distinct(int stale_limit = 1000);

  OptimizerInfo info_;
  Problem& problem_;
  util::Rng rng_;
  std::set<Genome> seen_;            ///< genomes handed out or reserved
  std::vector<Individual> archive_;  ///< every told individual
  std::vector<Genome> seeds_;        ///< warm-start genomes, handed out first
  std::size_t seed_next_ = 0;
  std::size_t told_ = 0;
};

/// Seeded distinct uniform-random search (the random_search baseline as an
/// ask/tell optimizer).
class RandomSearchOptimizer final : public ArchiveOptimizer {
 public:
  explicit RandomSearchOptimizer(const OptimizerContext& ctx);

 protected:
  [[nodiscard]] Genome propose() override;
};

/// Integer local search: hill-climb by perturbing current front members one
/// coordinate at a time (±1 steps, occasionally larger), falling back to
/// random sampling while the front is empty or the neighbourhood is
/// exhausted.
class LocalSearchOptimizer final : public ArchiveOptimizer {
 public:
  explicit LocalSearchOptimizer(const OptimizerContext& ctx);
  void tell(const Genome& genome, const Objectives& objectives,
            double cost_seconds = 0.0) override;

 protected:
  [[nodiscard]] Genome propose() override;

 private:
  /// Incrementally maintained non-dominated set (genomes + objectives) the
  /// climber walks from; round-robin over its members.
  std::vector<Individual> climb_front_;
  std::size_t next_member_ = 0;
  int retries_ = 10;
};

/// Surrogate-guided sampler: draws a batch of random candidates and asks
/// the surrogate to rank them, proposing the candidate least dominated by
/// the current front (ties broken by the smaller normalized objective sum).
/// Degrades to plain random sampling while no surrogate is wired in or it
/// has nothing to say yet.
class SurrogateSamplerOptimizer final : public ArchiveOptimizer {
 public:
  explicit SurrogateSamplerOptimizer(const OptimizerContext& ctx);
  void tell(const Genome& genome, const Objectives& objectives,
            double cost_seconds = 0.0) override;

 protected:
  [[nodiscard]] Genome propose() override;

 private:
  SurrogateFn surrogate_;
  std::size_t candidates_ = 16;         ///< batch size ranked per proposal
  std::vector<Individual> rank_front_;  ///< incremental front for ranking
  Objectives obj_min_;  ///< per-dimension bounds over valid tells
  Objectives obj_max_;  ///< (for the normalized tie-break sum)
};

/// Mixed-radix enumeration of the whole index space (the exhaustive_search
/// baseline as an ask/tell optimizer). After the space is exhausted it
/// falls back to random duplicates so ask() never blocks.
class ExhaustiveOptimizer final : public ArchiveOptimizer {
 public:
  explicit ExhaustiveOptimizer(const OptimizerContext& ctx);

  /// True once every point of the space has been handed out.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 protected:
  [[nodiscard]] Genome propose() override;

 private:
  Genome odometer_;
  bool exhausted_ = false;
};

/// Name -> factory registry of optimizers, mirroring edatool::BackendRegistry.
/// The built-ins above are always registered; hosts may add their own.
class OptimizerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Optimizer>(const OptimizerContext&)>;

  static void register_optimizer(const std::string& name, Factory factory);

  /// Instantiate an optimizer by name; throws std::runtime_error (listing
  /// the known names, with a did-you-mean hint) when the name is unknown,
  /// or when the context is unusable (null problem, bad portfolio members).
  [[nodiscard]] static std::unique_ptr<Optimizer> create(const std::string& name,
                                                         const OptimizerContext& ctx);

  /// Throw the same unknown-name error create() would, without needing a
  /// usable context (CLI/engine validation before a Problem exists).
  static void ensure_known(const std::string& name);

  /// Registered optimizer names, sorted.
  [[nodiscard]] static std::vector<std::string> names();
};

}  // namespace dovado::opt
