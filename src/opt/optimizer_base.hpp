// The pure ask/tell optimizer interface (see optimizer.hpp for the
// registry, the context struct and the shipped implementations).
//
// Split from optimizer.hpp so concrete searchers declared alongside their
// algorithm (e.g. SteadyStateNsga2 in nsga2.hpp) can derive from Optimizer
// without pulling in the whole optimizer layer.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/opt/problem.hpp"

namespace dovado::opt {

/// Capability flags an optimizer advertises. The engine consults these
/// instead of knowing concrete types.
struct OptimizerInfo {
  std::string name;             ///< registry name ("nsga2", "random", ...)
  bool elitist = false;         ///< keeps a bounded elite population
  bool uses_seeds = false;      ///< consumes Nsga2Config::initial_genomes
  bool uses_surrogate = false;  ///< consults OptimizerContext::surrogate
  bool composite = false;       ///< routes asks to owned member optimizers
};

/// Per-member counters of one optimizer (composite optimizers report one
/// entry per member; plain optimizers report a single entry for themselves).
struct MemberStats {
  std::string name;
  std::size_t asks = 0;       ///< genomes this member produced
  std::size_t tells = 0;      ///< evaluated results routed back to it
  double hv_gain = 0.0;       ///< normalized hypervolume gain credited to it
  double cost_seconds = 0.0;  ///< tool seconds its answers cost
  double weight = 1.0;        ///< current selection weight (bandit share)
};

/// Optional surrogate hook: estimated objective vector (minimized) for a
/// genome, or std::nullopt while no estimate is available.
using SurrogateFn = std::function<std::optional<Objectives>(const Genome&)>;

/// Pure-virtual ask/tell searcher. Implementations must be deterministic
/// for a fixed seed and tell() order, and ask() must never block: it always
/// returns a genome, accepting a duplicate only when the space is
/// exhausted.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  [[nodiscard]] virtual const OptimizerInfo& info() const = 0;

  /// Next genome to evaluate.
  [[nodiscard]] virtual Genome ask() = 0;

  /// Report an evaluated genome. `cost_seconds` is the simulated tool time
  /// the answer cost (0 for estimates, cache hits and screen settles);
  /// composite optimizers use it for per-tool-second credit assignment.
  virtual void tell(const Genome& genome, const Objectives& objectives,
                    double cost_seconds = 0.0) = 0;

  /// Register a genome as already handed out (e.g. an inflight point
  /// replayed from a journal on resume) so ask() will not produce it again.
  virtual void reserve(const Genome& genome) = 0;

  /// reserve() plus attribution: the eventual tell() for this genome is
  /// routed to `member` (portfolio resume). Non-composite optimizers
  /// ignore the member name.
  virtual void reserve_for(const Genome& genome, const std::string& member) {
    (void)member;
    reserve(genome);
  }

  /// Name of the member that produced (or will receive the tell for) this
  /// genome — stamped into journal inflight records so --resume can route
  /// the replayed tell back. Non-composite optimizers: info().name.
  [[nodiscard]] virtual std::string attributed_to(const Genome& genome) const {
    (void)genome;
    return info().name;
  }

  /// Duplicate-free non-dominated subset of everything told so far.
  [[nodiscard]] virtual std::vector<Individual> front() const = 0;

  /// Number of tell() calls so far.
  [[nodiscard]] virtual std::size_t told() const = 0;

  /// Per-member counters. Plain optimizers report one entry (asks == tells
  /// == told(), weight 1); composite optimizers one entry per member.
  [[nodiscard]] virtual std::vector<MemberStats> member_stats() const;
};

}  // namespace dovado::opt
