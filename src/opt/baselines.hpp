// Baseline explorers: uniform random search and exhaustive enumeration.
//
// The paper positions NSGA-II against naive alternatives (exhaustive
// evaluation is "prohibitive" for non-trivial modules, Sec. I). These
// baselines share the Problem interface so the micro benches can compare
// front quality at equal tool-call budgets, and exhaustive search provides
// ground-truth Pareto fronts for small spaces in tests.
//
// Both are thin synchronous drivers over the ask/tell adapters in
// opt/optimizer.hpp ("random" / "exhaustive" in the registry); the
// steady-state engine runs the same searchers asynchronously.
#pragma once

#include "src/opt/problem.hpp"
#include "src/util/rng.hpp"

namespace dovado::opt {

/// Result of a baseline run: every evaluated individual plus the
/// duplicate-free non-dominated subset.
struct BaselineResult {
  std::vector<Individual> evaluated;
  std::vector<Individual> pareto_front;
  std::size_t evaluations = 0;
};

/// Evaluate `budget` distinct uniform-random genomes (fewer if the space is
/// smaller than the budget).
[[nodiscard]] BaselineResult random_search(Problem& problem, std::size_t budget,
                                           std::uint64_t seed);

/// Evaluate the entire design space. `max_points` guards against accidental
/// explosion (returns an empty result when the volume exceeds it).
[[nodiscard]] BaselineResult exhaustive_search(Problem& problem,
                                               std::int64_t max_points = 1 << 20);

}  // namespace dovado::opt
