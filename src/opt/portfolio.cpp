#include "src/opt/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/opt/indicators.hpp"
#include "src/opt/nds.hpp"
#include "src/util/strings.hpp"

namespace dovado::opt {

namespace {

bool objectives_valid(const Objectives& objectives) {
  for (double v : objectives) {
    if (!std::isfinite(v) || std::abs(v) >= 1e17) return false;
  }
  return !objectives.empty();
}

}  // namespace

Portfolio::Portfolio(std::vector<std::unique_ptr<Optimizer>> members,
                     PortfolioConfig config)
    : config_(config), members_(std::move(members)) {
  if (members_.empty()) {
    throw std::runtime_error("portfolio: needs at least one member optimizer");
  }
  std::set<std::string> names;
  for (const auto& member : members_) {
    if (!member) throw std::runtime_error("portfolio: null member optimizer");
    if (!names.insert(member->info().name).second) {
      throw std::runtime_error("portfolio: duplicate member '" + member->info().name +
                               "' (resume attribution is by member name)");
    }
  }
  info_.name = "portfolio";
  info_.elitist = true;
  info_.uses_seeds = true;
  info_.uses_surrogate = true;
  info_.composite = true;
  asks_.assign(members_.size(), 0);
  tells_.assign(members_.size(), 0);
  gain_.assign(members_.size(), 0.0);
  cost_.assign(members_.size(), 0.0);
}

const OptimizerInfo& Portfolio::info() const { return info_; }

std::vector<double> Portfolio::scores() const {
  std::vector<double> rate(members_.size(), 0.0);
  double max_rate = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    rate[i] = gain_[i] / std::max(cost_[i], config_.min_cost_seconds);
    max_rate = std::max(max_rate, rate[i]);
  }
  double total_asks = 0.0;
  for (std::size_t n : asks_) total_asks += static_cast<double>(n);
  std::vector<double> out(members_.size(), 0.0);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const double exploit = max_rate > 0.0 ? rate[i] / max_rate : 0.0;
    const double explore =
        config_.exploration *
        std::sqrt(2.0 * std::log(std::max(total_asks, 1.0)) /
                  static_cast<double>(std::max<std::size_t>(asks_[i], 1)));
    out[i] = exploit + explore;
  }
  return out;
}

std::size_t Portfolio::pick() const {
  // Cold start: every member gets asked once, in member order, before the
  // bandit has anything to compare.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (asks_[i] == 0) return i;
  }
  const std::vector<double> score = scores();
  std::size_t best = 0;
  for (std::size_t i = 1; i < members_.size(); ++i) {
    if (score[i] > score[best]) best = i;
  }
  return best;
}

Genome Portfolio::ask() {
  const std::size_t member = pick();
  ++asks_[member];
  Genome g = members_[member]->ask();
  // Portfolio-level dedup: members do not see each other's proposals, so
  // re-ask the same member when it lands on a point another member already
  // owns. After the retry budget the duplicate is accepted (tiny or
  // exhausted spaces) — the broker answers it from cache anyway.
  for (int attempt = 0;
       attempt < std::max(1, config_.duplicate_retries) && seen_.count(g) != 0;
       ++attempt) {
    g = members_[member]->ask();
  }
  seen_.insert(g);
  attribution_[g] = member;
  return g;
}

double Portfolio::credit_gain(const Genome& genome, const Objectives& objectives) {
  if (!objectives_valid(objectives)) return 0.0;
  // Fold the point into the running normalization bounds first, so both
  // hypervolume snapshots below use the same (current) scaling and their
  // difference isolates this point's contribution.
  if (obj_min_.empty()) {
    obj_min_ = objectives;
    obj_max_ = objectives;
  } else {
    for (std::size_t i = 0; i < objectives.size() && i < obj_min_.size(); ++i) {
      obj_min_[i] = std::min(obj_min_[i], objectives[i]);
      obj_max_[i] = std::max(obj_max_[i], objectives[i]);
    }
  }
  auto normalize = [&](const Objectives& o) {
    Objectives out(o.size(), 0.0);
    for (std::size_t i = 0; i < o.size() && i < obj_min_.size(); ++i) {
      const double spread = obj_max_[i] - obj_min_[i];
      out[i] = spread > 0.0 ? (o[i] - obj_min_[i]) / spread : 0.0;
    }
    return out;
  };
  const Objectives reference(objectives.size(), 1.1);
  std::vector<Objectives> normalized;
  normalized.reserve(front_.size() + 1);
  for (const auto& member : front_) normalized.push_back(normalize(member.objectives));
  const double before = hypervolume(normalized, reference);

  Individual ind;
  ind.genome = genome;
  ind.objectives = objectives;
  ind.evaluated = true;
  if (!insert_nondominated(front_, std::move(ind))) return 0.0;

  normalized.clear();
  for (const auto& member : front_) normalized.push_back(normalize(member.objectives));
  const double after = hypervolume(normalized, reference);
  return std::max(0.0, after - before);
}

void Portfolio::tell(const Genome& genome, const Objectives& objectives,
                     double cost_seconds) {
  ++told_;
  std::size_t member = 0;
  if (auto it = attribution_.find(genome); it != attribution_.end()) {
    member = it->second;
  }
  const double gain = credit_gain(genome, objectives);
  ++tells_[member];
  gain_[member] += gain;
  cost_[member] += std::max(0.0, cost_seconds);
  members_[member]->tell(genome, objectives, cost_seconds);
}

void Portfolio::reserve(const Genome& genome) {
  seen_.insert(genome);
  for (auto& member : members_) member->reserve(genome);
}

void Portfolio::reserve_for(const Genome& genome, const std::string& member) {
  reserve(genome);
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i]->info().name == member) {
      attribution_[genome] = i;
      return;
    }
  }
  // Unknown attribution (journal written by a different member set, or a
  // pre-v3 journal without the field): the tell routes to member 0.
}

std::string Portfolio::attributed_to(const Genome& genome) const {
  if (auto it = attribution_.find(genome); it != attribution_.end()) {
    return members_[it->second]->info().name;
  }
  return info_.name;
}

std::vector<MemberStats> Portfolio::member_stats() const {
  const std::vector<double> score = scores();
  double total = 0.0;
  for (double s : score) total += s;
  std::vector<MemberStats> out;
  out.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    MemberStats stats;
    stats.name = members_[i]->info().name;
    stats.asks = asks_[i];
    stats.tells = tells_[i];
    stats.hv_gain = gain_[i];
    stats.cost_seconds = cost_[i];
    stats.weight = total > 0.0 ? score[i] / total
                               : 1.0 / static_cast<double>(members_.size());
    out.push_back(std::move(stats));
  }
  return out;
}

std::unique_ptr<Portfolio> make_portfolio(const OptimizerContext& ctx) {
  std::vector<std::string> names = ctx.portfolio_members;
  if (names.empty()) names = {"nsga2", "random", "local", "surrogate"};
  std::vector<std::unique_ptr<Optimizer>> members;
  members.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "portfolio") {
      throw std::runtime_error("portfolio: cannot nest a portfolio member");
    }
    OptimizerContext member_ctx = ctx;
    // Independent random streams per member; member 0 keeps the campaign
    // seed so a single-member portfolio reproduces that searcher exactly.
    member_ctx.ga.seed = ctx.ga.seed + 7919 * i;
    members.push_back(OptimizerRegistry::create(names[i], member_ctx));
  }
  return std::make_unique<Portfolio>(std::move(members));
}

}  // namespace dovado::opt
