// NSGA-II: elitist non-dominated sorting genetic algorithm (Deb et al. 2002).
//
// This is the paper's DSE solver (Sec. III-B.1): elite-preserving, requires
// no domain knowledge of the search space or metrics, and the sorting by
// non-domination keeps the bookkeeping cheap. Configuration mirrors the
// paper's Sec. IV setup: integer random sampling, integer SBX, duplicate
// elimination, Gaussian-probability mutation.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <set>

#include "src/opt/nds.hpp"
#include "src/opt/operators.hpp"
#include "src/opt/optimizer_base.hpp"
#include "src/opt/problem.hpp"

namespace dovado::opt {

enum class MutationKind {
  kGaussianProbability,  ///< the paper's setup (mean 0.5, tuned variance)
  kPolynomial,           ///< pymoo's default, used in ablations
};

struct Nsga2Config {
  std::size_t population_size = 40;
  std::size_t max_generations = 50;
  std::uint64_t seed = 1;

  double crossover_eta = 15.0;
  double crossover_prob_var = 0.9;

  /// Genomes injected into the initial population before random sampling
  /// (repaired into the domain, deduplicated). Used to continue a previous
  /// exploration from its front instead of restarting cold.
  std::vector<Genome> initial_genomes;

  MutationKind mutation = MutationKind::kGaussianProbability;
  double mutation_gaussian_mean = 0.5;    ///< per-individual probability mean
  double mutation_gaussian_sigma = 0.15;  ///< the hand-tuned variance knob
  double mutation_step_fraction = 0.1;    ///< Gaussian step size vs domain
  double mutation_polynomial_eta = 20.0;
  /// Per-variable probability for polynomial mutation; <0 => 1/n_vars.
  double mutation_polynomial_prob = -1.0;

  bool eliminate_duplicates = true;
  /// Max attempts to mate a non-duplicate offspring before accepting one.
  int duplicate_retries = 10;

  /// Controlled elitism (Deb & Goel [25], the paper's other NSGA reference):
  /// cap the share of each front in the surviving population to a geometric
  /// schedule with ratio r in (0,1), keeping lateral diversity from worse
  /// fronts for better convergence on multi-modal landscapes. 0 disables it
  /// (standard NSGA-II survival).
  double controlled_elitism_r = 0.0;

  /// Optional early-termination check, polled once per generation (used for
  /// the paper's wall-clock soft deadline on the genetic algorithm).
  std::function<bool()> should_stop;

  /// Optional batch evaluator: evaluate all unevaluated individuals in the
  /// span (e.g. in parallel, or through the approximation control model) and
  /// return how many of them actually received a genuine score from some
  /// evaluation source. Individuals the engine only penalty-scored without
  /// consuming an evaluation (deadline cuts, unhedged fast-fails) must not
  /// be counted — Nsga2Result::evaluations sums exactly these return values.
  /// Defaults to sequentially calling Problem::evaluate.
  std::function<std::size_t(Problem&, std::vector<Individual>&)> batch_evaluate;

  /// Optional per-generation observer (generation index, population after
  /// survival).
  std::function<void(std::size_t, const std::vector<Individual>&)> on_generation;
};

/// Result of one NSGA-II run.
struct Nsga2Result {
  std::vector<Individual> population;       ///< final population (ranked)
  std::vector<Individual> pareto_front;     ///< rank-0 subset, duplicates removed
  std::size_t generations_run = 0;
  std::size_t evaluations = 0;              ///< Problem::evaluate calls issued
};

class Nsga2 {
 public:
  explicit Nsga2(Nsga2Config config) : config_(std::move(config)) {}

  /// Run the algorithm on a problem.
  [[nodiscard]] Nsga2Result run(Problem& problem);

 private:
  void evaluate_all(Problem& problem, std::vector<Individual>& individuals,
                    std::size_t& evaluations);
  [[nodiscard]] std::vector<Individual> make_offspring(
      const Problem& problem, const std::vector<Individual>& population, util::Rng& rng) const;

  /// (mu + lambda) survival: standard elitist truncation, or the controlled
  /// elitist geometric schedule when controlled_elitism_r > 0.
  [[nodiscard]] std::vector<Individual> survive(
      std::vector<Individual>& merged, const std::vector<Objectives>& objs,
      const std::vector<std::vector<std::size_t>>& fronts) const;

  Nsga2Config config_;
};

/// Recompute rank and crowding distance for every member of `population`
/// via one fast non-dominated sort (shared by the generational and the
/// steady-state engines).
void assign_rank_crowding(std::vector<Individual>& population);

/// Steady-state (mu+1) NSGA-II as an ask/tell searcher.
///
/// The generational `Nsga2` evaluates offspring in lambda-sized barriers —
/// one slow point stalls the whole batch. This class inverts control: the
/// caller pulls candidate genomes with ask() (as many as it wants inflight),
/// evaluates them at its own pace, and pushes results back with tell().
/// Survival is per-completion: each tell() inserts the individual and, once
/// the population exceeds `population_size`, drops the single worst member
/// (last non-dominated front, minimum crowding). With a deterministic
/// completion order the whole trajectory is deterministic for a fixed seed.
///
/// Reuses Nsga2Config: population_size, seed, operator knobs, duplicate
/// elimination and initial_genomes behave as in the generational engine;
/// max_generations / batch_evaluate / on_generation / controlled_elitism_r
/// are ignored (budgeting and observation belong to the caller, and the
/// controlled-elitism schedule is a whole-population survival rule that has
/// no (mu+1) analogue).
///
/// Registered as "nsga2" in opt::OptimizerRegistry (see opt/optimizer.hpp).
class SteadyStateNsga2 final : public Optimizer {
 public:
  /// Builds the initial candidate list (seeded genomes repaired and
  /// deduplicated, then random sampling) exactly as Nsga2::run does.
  SteadyStateNsga2(Nsga2Config config, Problem& problem);

  [[nodiscard]] const OptimizerInfo& info() const override;

  /// Next genome to evaluate: initial candidates first, then mated
  /// offspring (tournament + SBX + mutation with duplicate retries, random
  /// immigrants when mating keeps producing known genomes). Never blocks;
  /// always returns a genome, accepting a duplicate only when the space is
  /// exhausted.
  [[nodiscard]] Genome ask() override;

  /// Report an evaluated genome. Inserts it into the population and applies
  /// (mu+1) survival; rank/crowding are reassigned on every call. The
  /// cost is bookkeeping the GA itself does not use.
  void tell(const Genome& genome, const Objectives& objectives,
            double cost_seconds = 0.0) override;

  /// Register a genome as already handed out (e.g. an inflight point
  /// replayed from a journal on resume) so ask() will not produce it again.
  void reserve(const Genome& genome) override;

  /// Duplicate-free rank-0 subset of the current population.
  [[nodiscard]] std::vector<Individual> front() const override {
    return pareto_subset(population_);
  }

  /// Current population, ranked (size grows to population_size, then stays).
  [[nodiscard]] const std::vector<Individual>& population() const noexcept {
    return population_;
  }

  /// Number of tell() calls so far.
  [[nodiscard]] std::size_t told() const noexcept override { return told_; }

 private:
  [[nodiscard]] Genome make_one_offspring();

  Nsga2Config config_;
  Problem& problem_;
  util::Rng rng_;
  std::vector<Genome> initial_;    ///< handed out before any mating
  std::size_t initial_next_ = 0;
  std::deque<Genome> pending_;     ///< second child of each mating, queued
  std::set<Genome> seen_;          ///< genomes handed out (duplicate filter)
  std::set<Genome> reserved_;      ///< replayed points ask() must skip
  std::vector<Individual> population_;
  std::size_t told_ = 0;
};

}  // namespace dovado::opt
