// Optimizer portfolio with online algorithm selection (SoberDSE direction;
// see DESIGN.md "Optimizer portfolio & algorithm selection").
//
// A Portfolio owns N member optimizers and routes every ask() through a
// UCB-style bandit: each member's exploitation score is its credited
// hypervolume gain per tool second (normalized by the best member), plus
// the usual sqrt(2 ln T / n_i) exploration bonus. Credit is assigned at
// tell(): the portfolio keeps an incrementally maintained global front
// over normalized objectives and charges the hypervolume delta each answer
// produced to the member that asked for the point — the context-mixing
// idiom of weak predictors: run several cheap searchers, continuously
// shift weight to whichever is currently earning.
//
// Resume: the engine stamps each journal inflight record with
// attributed_to(genome); on --resume it calls reserve_for(genome, member)
// so the replayed tell() is routed back to the member that originally
// asked — exactly once, like any other tell.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/opt/optimizer.hpp"

namespace dovado::opt {

struct PortfolioConfig {
  /// UCB exploration constant (scales the sqrt(2 ln T / n) bonus).
  double exploration = 0.5;
  /// Floor on a member's accumulated tool seconds when computing its
  /// gain-per-second rate, so members answered mostly by estimates or
  /// cache hits (zero cost) cannot claim an infinite rate.
  double min_cost_seconds = 1.0;
  /// Portfolio-level duplicate retries: how many times ask() re-asks the
  /// chosen member when it proposes a point another member already owns.
  int duplicate_retries = 10;
};

/// Registered as "portfolio" in opt::OptimizerRegistry.
class Portfolio final : public Optimizer {
 public:
  /// Takes ownership of the members (at least one, all non-null, names
  /// unique — resume attribution is by member name).
  Portfolio(std::vector<std::unique_ptr<Optimizer>> members, PortfolioConfig config = {});

  [[nodiscard]] const OptimizerInfo& info() const override;
  [[nodiscard]] Genome ask() override;
  void tell(const Genome& genome, const Objectives& objectives,
            double cost_seconds = 0.0) override;
  void reserve(const Genome& genome) override;
  void reserve_for(const Genome& genome, const std::string& member) override;
  [[nodiscard]] std::string attributed_to(const Genome& genome) const override;
  [[nodiscard]] std::vector<Individual> front() const override { return front_; }
  [[nodiscard]] std::size_t told() const override { return told_; }
  [[nodiscard]] std::vector<MemberStats> member_stats() const override;

  [[nodiscard]] const std::vector<std::unique_ptr<Optimizer>>& members() const {
    return members_;
  }

 private:
  /// The bandit: index of the member the next ask() is routed to. Members
  /// that never asked go first (round robin in member order); afterwards
  /// the highest UCB score wins, first index breaking ties — fully
  /// deterministic given the ask/tell history.
  [[nodiscard]] std::size_t pick() const;

  /// Current UCB scores (exploitation + exploration), for pick() and for
  /// the selection weights reported through member_stats().
  [[nodiscard]] std::vector<double> scores() const;

  /// Update the normalized global front with a told point and return the
  /// hypervolume it added (0 for penalty/failure objectives and for
  /// dominated points).
  double credit_gain(const Genome& genome, const Objectives& objectives);

  OptimizerInfo info_;
  PortfolioConfig config_;
  std::vector<std::unique_ptr<Optimizer>> members_;

  // Bandit state, indexed like members_.
  std::vector<std::size_t> asks_;
  std::vector<std::size_t> tells_;
  std::vector<double> gain_;  ///< credited normalized hypervolume gain
  std::vector<double> cost_;  ///< accumulated tool seconds

  std::map<Genome, std::size_t> attribution_;  ///< genome -> asking member
  std::set<Genome> seen_;                      ///< portfolio-level dedup
  std::size_t told_ = 0;

  // Global front over all tells, with running normalization bounds (the
  // hypervolume credit is computed in normalized objective space against a
  // constant 1.1 reference).
  std::vector<Individual> front_;
  Objectives obj_min_;
  Objectives obj_max_;
};

/// Factory behind the "portfolio" registry name: builds the members named
/// in ctx.portfolio_members (default: nsga2, random, local, surrogate) via
/// OptimizerRegistry::create, offsetting each member's seed so their random
/// streams are independent. Throws std::runtime_error on unknown member
/// names (with a did-you-mean hint), duplicate members, or a nested
/// "portfolio" member.
[[nodiscard]] std::unique_ptr<Portfolio> make_portfolio(const OptimizerContext& ctx);

}  // namespace dovado::opt
