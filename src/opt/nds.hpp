// Fast non-dominated sorting and crowding distance (Deb et al., NSGA-II).
#pragma once

#include <vector>

#include "src/opt/problem.hpp"

namespace dovado::opt {

/// Partition objective vectors into non-domination fronts. Returns fronts of
/// indices into `objectives`: fronts[0] is the Pareto front; every solution
/// appears in exactly one front. O(M*N^2) as in the paper [26].
[[nodiscard]] std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    const std::vector<Objectives>& objectives);

/// Crowding distance of each member of one front (indices parallel to
/// `front`). Boundary solutions get +infinity. Objectives with zero spread
/// contribute nothing.
[[nodiscard]] std::vector<double> crowding_distance(const std::vector<Objectives>& objectives,
                                                    const std::vector<std::size_t>& front);

/// Indices of the non-dominated subset of `objectives` (== front 0, but
/// computed with a single O(N^2) pass; duplicates of a non-dominated point
/// are all kept).
[[nodiscard]] std::vector<std::size_t> non_dominated_indices(
    const std::vector<Objectives>& objectives);

/// Extract the duplicate-free (by genome) rank-0 front of an evaluated
/// population. Shared by the NSGA-II engines, the baselines and the
/// archive-based optimizers.
[[nodiscard]] std::vector<Individual> pareto_subset(const std::vector<Individual>& population);

/// Incrementally maintain a non-dominated set: inserts `candidate` unless a
/// member dominates it (or an identical genome is already present),
/// evicting every member it dominates. Returns true when the candidate
/// entered the front. O(front) per call — the per-tell companion to the
/// batch pareto_subset().
bool insert_nondominated(std::vector<Individual>& front, Individual candidate);

}  // namespace dovado::opt
