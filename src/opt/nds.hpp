// Fast non-dominated sorting and crowding distance (Deb et al., NSGA-II).
#pragma once

#include <vector>

#include "src/opt/problem.hpp"

namespace dovado::opt {

/// Partition objective vectors into non-domination fronts. Returns fronts of
/// indices into `objectives`: fronts[0] is the Pareto front; every solution
/// appears in exactly one front. O(M*N^2) as in the paper [26].
[[nodiscard]] std::vector<std::vector<std::size_t>> fast_non_dominated_sort(
    const std::vector<Objectives>& objectives);

/// Crowding distance of each member of one front (indices parallel to
/// `front`). Boundary solutions get +infinity. Objectives with zero spread
/// contribute nothing.
[[nodiscard]] std::vector<double> crowding_distance(const std::vector<Objectives>& objectives,
                                                    const std::vector<std::size_t>& front);

/// Indices of the non-dominated subset of `objectives` (== front 0, but
/// computed with a single O(N^2) pass; duplicates of a non-dominated point
/// are all kept).
[[nodiscard]] std::vector<std::size_t> non_dominated_indices(
    const std::vector<Objectives>& objectives);

}  // namespace dovado::opt
