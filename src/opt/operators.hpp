// Genetic operators for integer-coded genomes (index space).
//
// The paper's configuration (Sec. IV): integer random sampling, integer
// simulated binary crossover [31], duplicate elimination, and a mutation
// whose per-individual probability is approximately Gaussian with mean 0.5
// and hand-tuned variance. Polynomial mutation is provided as well (pymoo's
// default companion to SBX) and used by the ablation benches.
#pragma once

#include "src/opt/problem.hpp"
#include "src/util/rng.hpp"

namespace dovado::opt {

/// Uniform random genome within the problem's index domains.
[[nodiscard]] Genome random_genome(const Problem& problem, util::Rng& rng);

/// Integer simulated binary crossover: produces two children from two
/// parents. `eta` is the distribution index (larger => children closer to
/// parents); `prob_var` is the per-variable crossover probability.
/// Children are rounded to integers and repaired into the domain.
void sbx_integer(const Problem& problem, const Genome& parent_a, const Genome& parent_b,
                 double eta, double prob_var, util::Rng& rng, Genome& child_a,
                 Genome& child_b);

/// Polynomial mutation in integer space: each variable mutates with
/// probability `prob_var`; `eta` is the distribution index.
void polynomial_mutation(const Problem& problem, Genome& genome, double eta, double prob_var,
                         util::Rng& rng);

/// The paper's mutation: the per-individual mutation probability is drawn
/// from N(mean, sigma) clamped to [0,1] (mean 0.5 per Sec. IV); each selected
/// variable takes a Gaussian step scaled to `step_fraction` of its domain.
void gaussian_mutation(const Problem& problem, Genome& genome, double mean, double sigma,
                       double step_fraction, util::Rng& rng);

/// Binary tournament on (rank, crowding): lower rank wins, ties broken by
/// larger crowding distance, further ties by coin flip. Returns the index of
/// the winner between i and j.
[[nodiscard]] std::size_t tournament(const std::vector<Individual>& population, std::size_t i,
                                     std::size_t j, util::Rng& rng);

}  // namespace dovado::opt
