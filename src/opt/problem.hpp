// Multi-objective integer optimization problem interface.
//
// The paper formulates DSE as a multi-objective *integer* problem
// (Sec. III-B.1): only integer-valued parameters are synthesizable, boolean
// parameters become {0,1}, and designers may restrict domains (e.g. to
// powers of two). The optimizer works in *index space*: variable i takes
// values in [0, cardinality(i)); the problem decodes indices to actual
// parameter values. This makes restricted domains (power-of-two lists)
// first-class citizens of the search instead of constraint hacks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dovado::opt {

/// A candidate solution in index space.
using Genome = std::vector<std::int64_t>;

/// Objective vector; every objective is MINIMIZED (negate to maximize).
using Objectives = std::vector<double>;

class Problem {
 public:
  virtual ~Problem() = default;

  /// Number of decision variables.
  [[nodiscard]] virtual std::size_t n_vars() const = 0;

  /// Number of objectives (all minimized).
  [[nodiscard]] virtual std::size_t n_objectives() const = 0;

  /// Cardinality of variable i's domain; genome[i] in [0, cardinality(i)).
  [[nodiscard]] virtual std::int64_t cardinality(std::size_t var) const = 0;

  /// Evaluate one genome. Must be safe to call from multiple threads
  /// concurrently unless the host serializes evaluation itself.
  [[nodiscard]] virtual Objectives evaluate(const Genome& genome) = 0;

  /// Total volume of the search space (product of cardinalities, saturating).
  [[nodiscard]] std::int64_t volume() const {
    std::int64_t v = 1;
    for (std::size_t i = 0; i < n_vars(); ++i) {
      const std::int64_t c = cardinality(i);
      if (c <= 0) return 0;
      if (v > (std::int64_t{1} << 62) / c) return std::int64_t{1} << 62;  // saturate
      v *= c;
    }
    return v;
  }

  /// Clamp a genome into the valid index ranges (in place).
  void repair(Genome& genome) const {
    for (std::size_t i = 0; i < genome.size() && i < n_vars(); ++i) {
      const std::int64_t hi = cardinality(i) - 1;
      if (genome[i] < 0) genome[i] = 0;
      if (genome[i] > hi) genome[i] = hi;
    }
  }
};

/// One evaluated individual.
struct Individual {
  Genome genome;
  Objectives objectives;
  int rank = -1;            ///< non-domination rank (0 = Pareto front)
  double crowding = 0.0;    ///< crowding distance within its front
  bool evaluated = false;
};

/// Pareto dominance for minimization: a dominates b iff a is no worse in
/// every objective and strictly better in at least one.
[[nodiscard]] inline bool dominates(const Objectives& a, const Objectives& b) {
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

}  // namespace dovado::opt
