#include "src/opt/operators.hpp"

#include <algorithm>
#include <cmath>

namespace dovado::opt {

Genome random_genome(const Problem& problem, util::Rng& rng) {
  Genome g(problem.n_vars());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = rng.uniform_int(0, problem.cardinality(i) - 1);
  }
  return g;
}

void sbx_integer(const Problem& problem, const Genome& parent_a, const Genome& parent_b,
                 double eta, double prob_var, util::Rng& rng, Genome& child_a,
                 Genome& child_b) {
  const std::size_t n = problem.n_vars();
  child_a = parent_a;
  child_b = parent_b;
  for (std::size_t i = 0; i < n; ++i) {
    if (!rng.chance(prob_var)) continue;
    const double a = static_cast<double>(parent_a[i]);
    const double b = static_cast<double>(parent_b[i]);
    if (std::fabs(a - b) < 1e-12) continue;
    // Deb & Agrawal's spread factor: beta from the polynomial distribution.
    const double u = rng.uniform();
    double beta = 0.0;
    if (u <= 0.5) {
      beta = std::pow(2.0 * u, 1.0 / (eta + 1.0));
    } else {
      beta = std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    }
    const double c1 = 0.5 * ((1.0 + beta) * a + (1.0 - beta) * b);
    const double c2 = 0.5 * ((1.0 - beta) * a + (1.0 + beta) * b);
    child_a[i] = static_cast<std::int64_t>(std::llround(c1));
    child_b[i] = static_cast<std::int64_t>(std::llround(c2));
    // Swap children halves at random (standard SBX symmetry restoration).
    if (rng.chance(0.5)) std::swap(child_a[i], child_b[i]);
  }
  problem.repair(child_a);
  problem.repair(child_b);
}

void polynomial_mutation(const Problem& problem, Genome& genome, double eta, double prob_var,
                         util::Rng& rng) {
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.chance(prob_var)) continue;
    const double lo = 0.0;
    const double hi = static_cast<double>(problem.cardinality(i) - 1);
    if (hi <= lo) continue;
    const double x = static_cast<double>(genome[i]);
    const double u = rng.uniform();
    double delta = 0.0;
    if (u < 0.5) {
      const double dl = (x - lo) / (hi - lo);
      delta = std::pow(2.0 * u + (1.0 - 2.0 * u) * std::pow(1.0 - dl, eta + 1.0),
                       1.0 / (eta + 1.0)) -
              1.0;
    } else {
      const double dr = (hi - x) / (hi - lo);
      delta = 1.0 - std::pow(2.0 * (1.0 - u) + 2.0 * (u - 0.5) * std::pow(1.0 - dr, eta + 1.0),
                             1.0 / (eta + 1.0));
    }
    double mutated = x + delta * (hi - lo);
    // Guarantee at least one integer step so mutation is never a no-op on
    // coarse domains.
    if (std::llround(mutated) == genome[i]) {
      mutated += (delta >= 0.0) ? 1.0 : -1.0;
    }
    genome[i] = static_cast<std::int64_t>(std::llround(mutated));
  }
  problem.repair(genome);
}

void gaussian_mutation(const Problem& problem, Genome& genome, double mean, double sigma,
                       double step_fraction, util::Rng& rng) {
  const double prob = std::clamp(rng.gaussian(mean, sigma), 0.0, 1.0);
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.chance(prob)) continue;
    const double range = static_cast<double>(problem.cardinality(i) - 1);
    if (range <= 0.0) continue;
    const double step = rng.gaussian(0.0, std::max(1.0, range * step_fraction));
    std::int64_t delta = static_cast<std::int64_t>(std::llround(step));
    if (delta == 0) delta = rng.chance(0.5) ? 1 : -1;
    genome[i] += delta;
  }
  problem.repair(genome);
}

std::size_t tournament(const std::vector<Individual>& population, std::size_t i,
                       std::size_t j, util::Rng& rng) {
  const Individual& a = population[i];
  const Individual& b = population[j];
  if (a.rank != b.rank) return a.rank < b.rank ? i : j;
  if (a.crowding != b.crowding) return a.crowding > b.crowding ? i : j;
  return rng.chance(0.5) ? i : j;
}

}  // namespace dovado::opt
