#include "src/opt/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace dovado::opt {

namespace {

/// Genome-level duplicate detection set.
using GenomeSet = std::set<Genome>;

/// Apply the configured mutation operator to one genome.
void mutate_genome(const Problem& problem, const Nsga2Config& config, Genome& g,
                   util::Rng& rng) {
  switch (config.mutation) {
    case MutationKind::kGaussianProbability:
      gaussian_mutation(problem, g, config.mutation_gaussian_mean,
                        config.mutation_gaussian_sigma, config.mutation_step_fraction, rng);
      break;
    case MutationKind::kPolynomial: {
      const double prob =
          config.mutation_polynomial_prob > 0.0
              ? config.mutation_polynomial_prob
              : 1.0 / static_cast<double>(std::max<std::size_t>(1, problem.n_vars()));
      polynomial_mutation(problem, g, config.mutation_polynomial_eta, prob, rng);
      break;
    }
  }
}

/// Initial candidate genomes: seeded genomes first (repaired, deduplicated),
/// then integer random sampling with duplicate elimination. A space smaller
/// than the population cannot fill it with uniques, so sampling gives up
/// after 200 consecutive duplicates or once the whole volume is seen.
/// `seen` accumulates every genome produced.
std::vector<Genome> sample_initial(Problem& problem, const Nsga2Config& config,
                                   util::Rng& rng, GenomeSet& seen) {
  std::vector<Genome> initial;
  initial.reserve(config.population_size);
  for (Genome g : config.initial_genomes) {
    if (initial.size() >= config.population_size) break;
    g.resize(problem.n_vars(), 0);
    problem.repair(g);
    if (config.eliminate_duplicates && !seen.insert(g).second) continue;
    initial.push_back(std::move(g));
  }
  const std::int64_t volume = problem.volume();
  int stale = 0;
  while (initial.size() < config.population_size) {
    Genome g = random_genome(problem, rng);
    if (config.eliminate_duplicates && !seen.insert(g).second) {
      if (++stale > 200 || static_cast<std::int64_t>(seen.size()) >= volume) break;
      continue;
    }
    stale = 0;
    initial.push_back(std::move(g));
  }
  return initial;
}

}  // namespace

void Nsga2::evaluate_all(Problem& problem, std::vector<Individual>& individuals,
                         std::size_t& evaluations) {
  if (config_.batch_evaluate) {
    // Count what the engine says it actually evaluated, not what we handed
    // it: deadline-cut and fast-failed points receive penalty objectives
    // without consuming an evaluation and must not inflate the tally.
    evaluations += config_.batch_evaluate(problem, individuals);
    for (auto& ind : individuals) ind.evaluated = true;
    return;
  }
  for (auto& ind : individuals) {
    if (!ind.evaluated) {
      ind.objectives = problem.evaluate(ind.genome);
      ind.evaluated = true;
      ++evaluations;
    }
  }
}

void assign_rank_crowding(std::vector<Individual>& population) {
  std::vector<Objectives> objs;
  objs.reserve(population.size());
  for (const auto& ind : population) objs.push_back(ind.objectives);
  const auto fronts = fast_non_dominated_sort(objs);
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    const auto crowding = crowding_distance(objs, fronts[f]);
    for (std::size_t i = 0; i < fronts[f].size(); ++i) {
      population[fronts[f][i]].rank = static_cast<int>(f);
      population[fronts[f][i]].crowding = crowding[i];
    }
  }
}

std::vector<Individual> Nsga2::make_offspring(const Problem& problem,
                                              const std::vector<Individual>& population,
                                              util::Rng& rng) const {
  GenomeSet existing;
  if (config_.eliminate_duplicates) {
    for (const auto& ind : population) existing.insert(ind.genome);
  }

  const std::size_t n = population.size();
  std::vector<Individual> offspring;
  offspring.reserve(config_.population_size);

  auto mutate = [&](Genome& g) { mutate_genome(problem, config_, g, rng); };

  while (offspring.size() < config_.population_size) {
    const std::size_t before = offspring.size();
    Genome child_a;
    Genome child_b;
    bool accepted = false;
    for (int attempt = 0; attempt < std::max(1, config_.duplicate_retries); ++attempt) {
      const std::size_t p1 =
          tournament(population, rng.index(n), rng.index(n), rng);
      const std::size_t p2 =
          tournament(population, rng.index(n), rng.index(n), rng);
      sbx_integer(problem, population[p1].genome, population[p2].genome,
                  config_.crossover_eta, config_.crossover_prob_var, rng, child_a, child_b);
      mutate(child_a);
      mutate(child_b);
      if (!config_.eliminate_duplicates) {
        accepted = true;
        break;
      }
      if (existing.count(child_a) == 0 || existing.count(child_b) == 0) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      // Mating keeps producing known genomes: inject a random immigrant to
      // preserve diversity instead of spinning.
      child_a = random_genome(problem, rng);
      child_b = random_genome(problem, rng);
    }
    for (Genome* g : {&child_a, &child_b}) {
      if (offspring.size() >= config_.population_size) break;
      if (config_.eliminate_duplicates && existing.count(*g) != 0) continue;
      Individual ind;
      ind.genome = *g;
      if (config_.eliminate_duplicates) existing.insert(*g);
      offspring.push_back(std::move(ind));
    }
    // Tiny/exhausted spaces: every remaining genome is a duplicate. Accept
    // one duplicate to guarantee forward progress (pymoo pads the offspring
    // the same way when elimination cannot fill the population).
    if (offspring.size() == before) {
      Individual ind;
      ind.genome = std::move(child_a);
      offspring.push_back(std::move(ind));
    }
  }
  return offspring;
}

std::vector<Individual> Nsga2::survive(
    std::vector<Individual>& merged, const std::vector<Objectives>& objs,
    const std::vector<std::vector<std::size_t>>& fronts) const {
  const std::size_t capacity = config_.population_size;
  std::vector<Individual> next;
  next.reserve(capacity);

  // Per-front crowding, and per-front orders by decreasing crowding.
  std::vector<std::vector<double>> crowding(fronts.size());
  std::vector<std::vector<std::size_t>> order(fronts.size());
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    crowding[f] = crowding_distance(objs, fronts[f]);
    order[f].resize(fronts[f].size());
    for (std::size_t i = 0; i < order[f].size(); ++i) order[f][i] = i;
    std::sort(order[f].begin(), order[f].end(), [&](std::size_t a, std::size_t b) {
      return crowding[f][a] > crowding[f][b];
    });
  }

  // Allowance per front: everything (standard NSGA-II) or the geometric
  // schedule n_f = N (1-r) r^f / (1 - r^K) of controlled elitism.
  std::vector<std::size_t> allowance(fronts.size());
  const double r = config_.controlled_elitism_r;
  if (r > 0.0 && r < 1.0 && fronts.size() > 1) {
    const double k = static_cast<double>(fronts.size());
    double geometric = (1.0 - r) / (1.0 - std::pow(r, k));
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      allowance[f] = static_cast<std::size_t>(std::llround(
          static_cast<double>(capacity) * geometric * std::pow(r, static_cast<double>(f))));
    }
  } else {
    for (std::size_t f = 0; f < fronts.size(); ++f) allowance[f] = capacity;
  }

  // First pass: each front contributes up to its allowance, best-crowded
  // first. Second pass: remaining capacity is filled front by front from
  // the members passed over (Deb & Goel's overflow rule).
  std::vector<std::vector<std::size_t>> leftovers(fronts.size());
  for (std::size_t f = 0; f < fronts.size() && next.size() < capacity; ++f) {
    std::size_t taken = 0;
    for (std::size_t i : order[f]) {
      if (taken >= allowance[f] || next.size() >= capacity) {
        leftovers[f].push_back(i);
        continue;
      }
      merged[fronts[f][i]].crowding = crowding[f][i];
      next.push_back(merged[fronts[f][i]]);
      ++taken;
    }
  }
  for (std::size_t f = 0; f < fronts.size() && next.size() < capacity; ++f) {
    for (std::size_t i : leftovers[f]) {
      if (next.size() >= capacity) break;
      merged[fronts[f][i]].crowding = crowding[f][i];
      next.push_back(merged[fronts[f][i]]);
    }
  }
  return next;
}

Nsga2Result Nsga2::run(Problem& problem) {
  Nsga2Result result;
  util::Rng rng(config_.seed);

  GenomeSet seen;
  std::vector<Individual> population;
  population.reserve(config_.population_size);
  for (Genome& g : sample_initial(problem, config_, rng, seen)) {
    Individual ind;
    ind.genome = std::move(g);
    population.push_back(std::move(ind));
  }

  evaluate_all(problem, population, result.evaluations);
  assign_rank_crowding(population);

  for (std::size_t gen = 0; gen < config_.max_generations; ++gen) {
    if (config_.should_stop && config_.should_stop()) break;

    std::vector<Individual> offspring = make_offspring(problem, population, rng);
    evaluate_all(problem, offspring, result.evaluations);

    // (mu + lambda) elitist survival.
    std::vector<Individual> merged;
    merged.reserve(population.size() + offspring.size());
    for (auto& ind : population) merged.push_back(std::move(ind));
    for (auto& ind : offspring) merged.push_back(std::move(ind));

    std::vector<Objectives> objs;
    objs.reserve(merged.size());
    for (const auto& ind : merged) objs.push_back(ind.objectives);
    const auto fronts = fast_non_dominated_sort(objs);

    population = survive(merged, objs, fronts);
    assign_rank_crowding(population);
    ++result.generations_run;
    if (config_.on_generation) config_.on_generation(gen, population);
  }

  result.pareto_front = pareto_subset(population);
  result.population = std::move(population);
  return result;
}

SteadyStateNsga2::SteadyStateNsga2(Nsga2Config config, Problem& problem)
    : config_(std::move(config)), problem_(problem), rng_(config_.seed) {
  initial_ = sample_initial(problem_, config_, rng_, seen_);
  population_.reserve(config_.population_size + 1);
}

const OptimizerInfo& SteadyStateNsga2::info() const {
  static const OptimizerInfo kInfo{/*name=*/"nsga2", /*elitist=*/true,
                                   /*uses_seeds=*/true, /*uses_surrogate=*/false,
                                   /*composite=*/false};
  return kInfo;
}

Genome SteadyStateNsga2::make_one_offspring() {
  // Mating needs parents; until at least two individuals have been told
  // back (e.g. while the initial candidates are still inflight), fall back
  // to random immigrants so ask() never blocks on completions.
  if (population_.size() < 2) {
    for (int attempt = 0; attempt < std::max(1, config_.duplicate_retries); ++attempt) {
      Genome g = random_genome(problem_, rng_);
      if (!config_.eliminate_duplicates || seen_.count(g) == 0) return g;
    }
    return random_genome(problem_, rng_);
  }

  const std::size_t n = population_.size();
  Genome child_a;
  Genome child_b;
  for (int attempt = 0; attempt < std::max(1, config_.duplicate_retries); ++attempt) {
    const std::size_t p1 = tournament(population_, rng_.index(n), rng_.index(n), rng_);
    const std::size_t p2 = tournament(population_, rng_.index(n), rng_.index(n), rng_);
    sbx_integer(problem_, population_[p1].genome, population_[p2].genome,
                config_.crossover_eta, config_.crossover_prob_var, rng_, child_a, child_b);
    mutate_genome(problem_, config_, child_a, rng_);
    mutate_genome(problem_, config_, child_b, rng_);
    if (!config_.eliminate_duplicates) return child_a;
    const bool a_fresh = seen_.count(child_a) == 0;
    const bool b_fresh = seen_.count(child_b) == 0;
    if (a_fresh && b_fresh) {
      // Queue the sibling instead of discarding half of every mating.
      pending_.push_back(child_b);
      return child_a;
    }
    if (a_fresh) return child_a;
    if (b_fresh) return child_b;
  }
  // Mating keeps producing known genomes: random immigrant, and if even
  // those are exhausted (tiny space) accept the duplicate child to
  // guarantee forward progress, mirroring the generational engine.
  for (int attempt = 0; attempt < std::max(1, config_.duplicate_retries); ++attempt) {
    Genome g = random_genome(problem_, rng_);
    if (seen_.count(g) == 0) return g;
  }
  return child_a;
}

Genome SteadyStateNsga2::ask() {
  // Initial candidates are pre-inserted into seen_ at sampling time, so a
  // separate reserved_ check keeps replayed points from being re-asked.
  while (initial_next_ < initial_.size()) {
    Genome g = initial_[initial_next_++];
    if (reserved_.count(g) != 0) continue;
    return g;
  }
  while (!pending_.empty()) {
    Genome g = std::move(pending_.front());
    pending_.pop_front();
    // A queued sibling may have been asked or reserved since it was mated.
    if ((!config_.eliminate_duplicates || seen_.count(g) == 0) &&
        reserved_.count(g) == 0) {
      seen_.insert(g);
      return g;
    }
  }
  Genome g = make_one_offspring();
  seen_.insert(g);
  return g;
}

void SteadyStateNsga2::reserve(const Genome& genome) {
  seen_.insert(genome);
  reserved_.insert(genome);
}

void SteadyStateNsga2::tell(const Genome& genome, const Objectives& objectives,
                            double /*cost_seconds*/) {
  ++told_;
  Individual ind;
  ind.genome = genome;
  ind.objectives = objectives;
  ind.evaluated = true;
  population_.push_back(std::move(ind));

  if (population_.size() > config_.population_size) {
    // (mu+1) survival: drop the single worst member — last non-dominated
    // front, minimum crowding (first such index for determinism).
    std::vector<Objectives> objs;
    objs.reserve(population_.size());
    for (const auto& member : population_) objs.push_back(member.objectives);
    const auto fronts = fast_non_dominated_sort(objs);
    const auto& last = fronts.back();
    const auto crowding = crowding_distance(objs, last);
    std::size_t worst = 0;
    for (std::size_t i = 1; i < last.size(); ++i) {
      if (crowding[i] < crowding[worst]) worst = i;
    }
    population_.erase(population_.begin() + static_cast<std::ptrdiff_t>(last[worst]));
  }
  assign_rank_crowding(population_);
}

}  // namespace dovado::opt
