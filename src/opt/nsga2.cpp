#include "src/opt/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace dovado::opt {

namespace {

/// Genome-level duplicate detection set.
using GenomeSet = std::set<Genome>;

}  // namespace

std::vector<Individual> pareto_subset(const std::vector<Individual>& population) {
  std::vector<Objectives> objs;
  objs.reserve(population.size());
  for (const auto& ind : population) objs.push_back(ind.objectives);
  const auto indices = non_dominated_indices(objs);

  std::vector<Individual> front;
  GenomeSet seen;
  for (std::size_t i : indices) {
    if (seen.insert(population[i].genome).second) front.push_back(population[i]);
  }
  return front;
}

void Nsga2::evaluate_all(Problem& problem, std::vector<Individual>& individuals,
                         std::size_t& evaluations) {
  for (const auto& ind : individuals) {
    if (!ind.evaluated) ++evaluations;
  }
  if (config_.batch_evaluate) {
    config_.batch_evaluate(problem, individuals);
    for (auto& ind : individuals) ind.evaluated = true;
    return;
  }
  for (auto& ind : individuals) {
    if (!ind.evaluated) {
      ind.objectives = problem.evaluate(ind.genome);
      ind.evaluated = true;
    }
  }
}

void Nsga2::assign_rank_crowding(std::vector<Individual>& population) const {
  std::vector<Objectives> objs;
  objs.reserve(population.size());
  for (const auto& ind : population) objs.push_back(ind.objectives);
  const auto fronts = fast_non_dominated_sort(objs);
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    const auto crowding = crowding_distance(objs, fronts[f]);
    for (std::size_t i = 0; i < fronts[f].size(); ++i) {
      population[fronts[f][i]].rank = static_cast<int>(f);
      population[fronts[f][i]].crowding = crowding[i];
    }
  }
}

std::vector<Individual> Nsga2::make_offspring(const Problem& problem,
                                              const std::vector<Individual>& population,
                                              util::Rng& rng) const {
  GenomeSet existing;
  if (config_.eliminate_duplicates) {
    for (const auto& ind : population) existing.insert(ind.genome);
  }

  const std::size_t n = population.size();
  std::vector<Individual> offspring;
  offspring.reserve(config_.population_size);

  auto mutate = [&](Genome& g) {
    switch (config_.mutation) {
      case MutationKind::kGaussianProbability:
        gaussian_mutation(problem, g, config_.mutation_gaussian_mean,
                          config_.mutation_gaussian_sigma, config_.mutation_step_fraction,
                          rng);
        break;
      case MutationKind::kPolynomial: {
        const double prob = config_.mutation_polynomial_prob > 0.0
                                ? config_.mutation_polynomial_prob
                                : 1.0 / static_cast<double>(std::max<std::size_t>(
                                            1, problem.n_vars()));
        polynomial_mutation(problem, g, config_.mutation_polynomial_eta, prob, rng);
        break;
      }
    }
  };

  while (offspring.size() < config_.population_size) {
    const std::size_t before = offspring.size();
    Genome child_a;
    Genome child_b;
    bool accepted = false;
    for (int attempt = 0; attempt < std::max(1, config_.duplicate_retries); ++attempt) {
      const std::size_t p1 =
          tournament(population, rng.index(n), rng.index(n), rng);
      const std::size_t p2 =
          tournament(population, rng.index(n), rng.index(n), rng);
      sbx_integer(problem, population[p1].genome, population[p2].genome,
                  config_.crossover_eta, config_.crossover_prob_var, rng, child_a, child_b);
      mutate(child_a);
      mutate(child_b);
      if (!config_.eliminate_duplicates) {
        accepted = true;
        break;
      }
      if (existing.count(child_a) == 0 || existing.count(child_b) == 0) {
        accepted = true;
        break;
      }
    }
    if (!accepted) {
      // Mating keeps producing known genomes: inject a random immigrant to
      // preserve diversity instead of spinning.
      child_a = random_genome(problem, rng);
      child_b = random_genome(problem, rng);
    }
    for (Genome* g : {&child_a, &child_b}) {
      if (offspring.size() >= config_.population_size) break;
      if (config_.eliminate_duplicates && existing.count(*g) != 0) continue;
      Individual ind;
      ind.genome = *g;
      if (config_.eliminate_duplicates) existing.insert(*g);
      offspring.push_back(std::move(ind));
    }
    // Tiny/exhausted spaces: every remaining genome is a duplicate. Accept
    // one duplicate to guarantee forward progress (pymoo pads the offspring
    // the same way when elimination cannot fill the population).
    if (offspring.size() == before) {
      Individual ind;
      ind.genome = std::move(child_a);
      offspring.push_back(std::move(ind));
    }
  }
  return offspring;
}

std::vector<Individual> Nsga2::survive(
    std::vector<Individual>& merged, const std::vector<Objectives>& objs,
    const std::vector<std::vector<std::size_t>>& fronts) const {
  const std::size_t capacity = config_.population_size;
  std::vector<Individual> next;
  next.reserve(capacity);

  // Per-front crowding, and per-front orders by decreasing crowding.
  std::vector<std::vector<double>> crowding(fronts.size());
  std::vector<std::vector<std::size_t>> order(fronts.size());
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    crowding[f] = crowding_distance(objs, fronts[f]);
    order[f].resize(fronts[f].size());
    for (std::size_t i = 0; i < order[f].size(); ++i) order[f][i] = i;
    std::sort(order[f].begin(), order[f].end(), [&](std::size_t a, std::size_t b) {
      return crowding[f][a] > crowding[f][b];
    });
  }

  // Allowance per front: everything (standard NSGA-II) or the geometric
  // schedule n_f = N (1-r) r^f / (1 - r^K) of controlled elitism.
  std::vector<std::size_t> allowance(fronts.size());
  const double r = config_.controlled_elitism_r;
  if (r > 0.0 && r < 1.0 && fronts.size() > 1) {
    const double k = static_cast<double>(fronts.size());
    double geometric = (1.0 - r) / (1.0 - std::pow(r, k));
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      allowance[f] = static_cast<std::size_t>(std::llround(
          static_cast<double>(capacity) * geometric * std::pow(r, static_cast<double>(f))));
    }
  } else {
    for (std::size_t f = 0; f < fronts.size(); ++f) allowance[f] = capacity;
  }

  // First pass: each front contributes up to its allowance, best-crowded
  // first. Second pass: remaining capacity is filled front by front from
  // the members passed over (Deb & Goel's overflow rule).
  std::vector<std::vector<std::size_t>> leftovers(fronts.size());
  for (std::size_t f = 0; f < fronts.size() && next.size() < capacity; ++f) {
    std::size_t taken = 0;
    for (std::size_t i : order[f]) {
      if (taken >= allowance[f] || next.size() >= capacity) {
        leftovers[f].push_back(i);
        continue;
      }
      merged[fronts[f][i]].crowding = crowding[f][i];
      next.push_back(merged[fronts[f][i]]);
      ++taken;
    }
  }
  for (std::size_t f = 0; f < fronts.size() && next.size() < capacity; ++f) {
    for (std::size_t i : leftovers[f]) {
      if (next.size() >= capacity) break;
      merged[fronts[f][i]].crowding = crowding[f][i];
      next.push_back(merged[fronts[f][i]]);
    }
  }
  return next;
}

Nsga2Result Nsga2::run(Problem& problem) {
  Nsga2Result result;
  util::Rng rng(config_.seed);

  // Seeded genomes first (repaired + deduplicated), then integer random
  // sampling with duplicate elimination fills the rest.
  std::vector<Individual> population;
  population.reserve(config_.population_size);
  GenomeSet seen;
  for (Genome g : config_.initial_genomes) {
    if (population.size() >= config_.population_size) break;
    g.resize(problem.n_vars(), 0);
    problem.repair(g);
    if (config_.eliminate_duplicates && !seen.insert(g).second) continue;
    Individual ind;
    ind.genome = std::move(g);
    population.push_back(std::move(ind));
  }
  const std::int64_t volume = problem.volume();
  int stale = 0;
  while (population.size() < config_.population_size) {
    Genome g = random_genome(problem, rng);
    if (config_.eliminate_duplicates && !seen.insert(g).second) {
      // A space smaller than the population cannot fill it with uniques.
      if (++stale > 200 ||
          static_cast<std::int64_t>(seen.size()) >= volume) {
        break;
      }
      continue;
    }
    stale = 0;
    Individual ind;
    ind.genome = std::move(g);
    population.push_back(std::move(ind));
  }

  evaluate_all(problem, population, result.evaluations);
  assign_rank_crowding(population);

  for (std::size_t gen = 0; gen < config_.max_generations; ++gen) {
    if (config_.should_stop && config_.should_stop()) break;

    std::vector<Individual> offspring = make_offspring(problem, population, rng);
    evaluate_all(problem, offspring, result.evaluations);

    // (mu + lambda) elitist survival.
    std::vector<Individual> merged;
    merged.reserve(population.size() + offspring.size());
    for (auto& ind : population) merged.push_back(std::move(ind));
    for (auto& ind : offspring) merged.push_back(std::move(ind));

    std::vector<Objectives> objs;
    objs.reserve(merged.size());
    for (const auto& ind : merged) objs.push_back(ind.objectives);
    const auto fronts = fast_non_dominated_sort(objs);

    population = survive(merged, objs, fronts);
    assign_rank_crowding(population);
    ++result.generations_run;
    if (config_.on_generation) config_.on_generation(gen, population);
  }

  result.pareto_front = pareto_subset(population);
  result.population = std::move(population);
  return result;
}

}  // namespace dovado::opt
