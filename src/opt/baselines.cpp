#include "src/opt/baselines.hpp"

#include <set>

#include "src/opt/nds.hpp"
#include "src/opt/nsga2.hpp"
#include "src/opt/operators.hpp"

namespace dovado::opt {

BaselineResult random_search(Problem& problem, std::size_t budget, std::uint64_t seed) {
  BaselineResult result;
  util::Rng rng(seed);
  std::set<Genome> seen;
  const std::int64_t volume = problem.volume();
  int stale = 0;
  while (result.evaluated.size() < budget &&
         static_cast<std::int64_t>(seen.size()) < volume) {
    Genome g = random_genome(problem, rng);
    if (!seen.insert(g).second) {
      if (++stale > 1000) break;  // space almost exhausted
      continue;
    }
    stale = 0;
    Individual ind;
    ind.genome = std::move(g);
    ind.objectives = problem.evaluate(ind.genome);
    ind.evaluated = true;
    ++result.evaluations;
    result.evaluated.push_back(std::move(ind));
  }
  result.pareto_front = pareto_subset(result.evaluated);
  return result;
}

BaselineResult exhaustive_search(Problem& problem, std::int64_t max_points) {
  BaselineResult result;
  const std::int64_t volume = problem.volume();
  if (volume <= 0 || volume > max_points) return result;

  const std::size_t n = problem.n_vars();
  Genome g(n, 0);
  bool done = false;
  while (!done) {
    Individual ind;
    ind.genome = g;
    ind.objectives = problem.evaluate(g);
    ind.evaluated = true;
    ++result.evaluations;
    result.evaluated.push_back(std::move(ind));

    // Odometer increment over the mixed-radix index space.
    done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (++g[i] < problem.cardinality(i)) {
        done = false;
        break;
      }
      g[i] = 0;
    }
    if (n == 0) break;
  }
  result.pareto_front = pareto_subset(result.evaluated);
  return result;
}

}  // namespace dovado::opt
