#include "src/opt/baselines.hpp"

#include <set>

#include "src/opt/nds.hpp"
#include "src/opt/optimizer.hpp"

namespace dovado::opt {

namespace {

/// Shared driver: pull genomes from an ask/tell searcher until the budget
/// is spent or the searcher starts repeating itself (every adapter accepts
/// a duplicate only once its space is effectively exhausted).
BaselineResult drive(Problem& problem, Optimizer& searcher, std::size_t budget) {
  BaselineResult result;
  std::set<Genome> evaluated;
  while (result.evaluated.size() < budget) {
    Genome g = searcher.ask();
    if (!evaluated.insert(g).second) break;  // space exhausted
    Individual ind;
    ind.genome = g;
    ind.objectives = problem.evaluate(ind.genome);
    ind.evaluated = true;
    searcher.tell(g, ind.objectives);
    ++result.evaluations;
    result.evaluated.push_back(std::move(ind));
  }
  result.pareto_front = pareto_subset(result.evaluated);
  return result;
}

}  // namespace

BaselineResult random_search(Problem& problem, std::size_t budget, std::uint64_t seed) {
  OptimizerContext ctx;
  ctx.problem = &problem;
  ctx.ga.seed = seed;
  RandomSearchOptimizer searcher(ctx);
  return drive(problem, searcher, budget);
}

BaselineResult exhaustive_search(Problem& problem, std::int64_t max_points) {
  const std::int64_t volume = problem.volume();
  if (volume <= 0 || volume > max_points) return {};
  OptimizerContext ctx;
  ctx.problem = &problem;
  ExhaustiveOptimizer searcher(ctx);
  return drive(problem, searcher, static_cast<std::size_t>(volume));
}

}  // namespace dovado::opt
