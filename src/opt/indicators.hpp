// Quality indicators for Pareto fronts: hypervolume and IGD.
//
// Used by tests (convergence invariants) and by the ablation benches to
// compare NSGA-II against baselines at equal evaluation budgets.
#pragma once

#include <vector>

#include "src/opt/problem.hpp"

namespace dovado::opt {

/// Hypervolume dominated by `front` with respect to `reference` (all
/// objectives minimized; points not strictly dominating the reference are
/// ignored). Exact for any dimension via recursive slicing — intended for
/// the small fronts DSE produces (tens of points).
[[nodiscard]] double hypervolume(const std::vector<Objectives>& front,
                                 const Objectives& reference);

/// Inverted generational distance: mean Euclidean distance from each point
/// of `reference_front` to its nearest neighbour in `front`. 0 when `front`
/// covers the reference exactly; lower is better.
[[nodiscard]] double igd(const std::vector<Objectives>& front,
                         const std::vector<Objectives>& reference_front);

/// Normalize objective vectors per dimension to [0,1] over the given set
/// (zero-spread dimensions map to 0). Returns the normalized copy.
[[nodiscard]] std::vector<Objectives> normalize_objectives(
    const std::vector<Objectives>& points);

}  // namespace dovado::opt
