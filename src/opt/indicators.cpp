#include "src/opt/indicators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/opt/nds.hpp"

namespace dovado::opt {

namespace {

/// Recursive hypervolume by slicing on the last dimension (HSO-style).
/// `points` are minimization objectives strictly below `ref` in every
/// dimension.
double hv_recursive(std::vector<Objectives> points, const Objectives& ref) {
  if (points.empty()) return 0.0;
  const std::size_t dim = ref.size();
  if (dim == 1) {
    double best = ref[0];
    for (const auto& p : points) best = std::min(best, p[0]);
    return std::max(0.0, ref[0] - best);
  }

  // Sort by the last objective ascending and sweep slices.
  std::sort(points.begin(), points.end(),
            [dim](const Objectives& a, const Objectives& b) {
              return a[dim - 1] < b[dim - 1];
            });

  double volume = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double slice_lo = points[i][dim - 1];
    const double slice_hi = (i + 1 < points.size()) ? points[i + 1][dim - 1] : ref[dim - 1];
    const double thickness = slice_hi - slice_lo;
    if (thickness <= 0.0) continue;
    // Points active in this slice: those with last objective <= slice_lo.
    std::vector<Objectives> projected;
    Objectives sub_ref(ref.begin(), ref.end() - 1);
    for (std::size_t j = 0; j <= i; ++j) {
      projected.emplace_back(points[j].begin(), points[j].end() - 1);
    }
    volume += thickness * hv_recursive(std::move(projected), sub_ref);
  }
  return volume;
}

double distance(const Objectives& a, const Objectives& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

double hypervolume(const std::vector<Objectives>& front, const Objectives& reference) {
  // Keep only points strictly dominating the reference, and only the
  // non-dominated subset (dominated points contribute nothing).
  std::vector<Objectives> valid;
  for (const auto& p : front) {
    bool inside = p.size() == reference.size();
    for (std::size_t i = 0; inside && i < p.size(); ++i) {
      if (p[i] >= reference[i]) inside = false;
    }
    if (inside) valid.push_back(p);
  }
  if (valid.empty()) return 0.0;
  std::vector<Objectives> nd;
  for (std::size_t i : non_dominated_indices(valid)) nd.push_back(valid[i]);
  // Deduplicate (duplicates would double-count slices of zero thickness —
  // harmless, but wasteful).
  std::sort(nd.begin(), nd.end());
  nd.erase(std::unique(nd.begin(), nd.end()), nd.end());
  return hv_recursive(std::move(nd), reference);
}

double igd(const std::vector<Objectives>& front,
           const std::vector<Objectives>& reference_front) {
  if (reference_front.empty()) return 0.0;
  if (front.empty()) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (const auto& ref_point : reference_front) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : front) best = std::min(best, distance(ref_point, p));
    total += best;
  }
  return total / static_cast<double>(reference_front.size());
}

std::vector<Objectives> normalize_objectives(const std::vector<Objectives>& points) {
  std::vector<Objectives> out = points;
  if (points.empty()) return out;
  const std::size_t m = points[0].size();
  for (std::size_t obj = 0; obj < m; ++obj) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& p : points) {
      lo = std::min(lo, p[obj]);
      hi = std::max(hi, p[obj]);
    }
    for (auto& p : out) {
      p[obj] = (hi > lo) ? (p[obj] - lo) / (hi - lo) : 0.0;
    }
  }
  return out;
}

}  // namespace dovado::opt
