#include "src/opt/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "src/opt/nds.hpp"
#include "src/opt/operators.hpp"
#include "src/opt/portfolio.hpp"
#include "src/util/strings.hpp"
#include "src/util/sync.hpp"

namespace dovado::opt {

namespace {

/// Objectives carrying a failure penalty (or worse) say nothing about the
/// landscape; the incremental fronts the searchers climb from ignore them.
bool objectives_valid(const Objectives& objectives) {
  for (double v : objectives) {
    if (!std::isfinite(v) || std::abs(v) >= 1e17) return false;
  }
  return !objectives.empty();
}

}  // namespace

std::vector<MemberStats> Optimizer::member_stats() const {
  MemberStats stats;
  stats.name = info().name;
  stats.asks = told();
  stats.tells = told();
  return {stats};
}

// ---- ArchiveOptimizer ----------------------------------------------------

ArchiveOptimizer::ArchiveOptimizer(OptimizerInfo info, const OptimizerContext& ctx)
    : info_(std::move(info)), problem_(*ctx.problem), rng_(ctx.ga.seed) {
  // Warm-start genomes are handed out first, repaired and deduplicated the
  // same way SteadyStateNsga2 seeds its initial population.
  std::set<Genome> unique;
  for (Genome g : ctx.ga.initial_genomes) {
    g.resize(problem_.n_vars(), 0);
    problem_.repair(g);
    if (!unique.insert(g).second) continue;
    seeds_.push_back(std::move(g));
  }
}

Genome ArchiveOptimizer::ask() {
  while (seed_next_ < seeds_.size()) {
    Genome g = seeds_[seed_next_++];
    // Already asked or reserved (e.g. a replayed inflight point): skip.
    if (!seen_.insert(g).second) continue;
    return g;
  }
  Genome g = propose();
  seen_.insert(g);
  return g;
}

void ArchiveOptimizer::tell(const Genome& genome, const Objectives& objectives,
                            double /*cost_seconds*/) {
  ++told_;
  seen_.insert(genome);  // an evaluated genome must never be proposed again
  Individual ind;
  ind.genome = genome;
  ind.objectives = objectives;
  ind.evaluated = true;
  archive_.push_back(std::move(ind));
}

std::vector<Individual> ArchiveOptimizer::front() const {
  return pareto_subset(archive_);
}

Genome ArchiveOptimizer::random_distinct(int stale_limit) {
  const std::int64_t volume = problem_.volume();
  int stale = 0;
  while (true) {
    Genome g = random_genome(problem_, rng_);
    if (seen_.count(g) == 0) return g;
    if (++stale > stale_limit || static_cast<std::int64_t>(seen_.size()) >= volume) {
      return g;  // space effectively exhausted: accept the duplicate
    }
  }
}

// ---- RandomSearchOptimizer -----------------------------------------------

RandomSearchOptimizer::RandomSearchOptimizer(const OptimizerContext& ctx)
    : ArchiveOptimizer({/*name=*/"random", /*elitist=*/false, /*uses_seeds=*/true,
                        /*uses_surrogate=*/false, /*composite=*/false},
                       ctx) {}

Genome RandomSearchOptimizer::propose() { return random_distinct(); }

// ---- LocalSearchOptimizer ------------------------------------------------

LocalSearchOptimizer::LocalSearchOptimizer(const OptimizerContext& ctx)
    : ArchiveOptimizer({/*name=*/"local", /*elitist=*/false, /*uses_seeds=*/true,
                        /*uses_surrogate=*/false, /*composite=*/false},
                       ctx) {
  retries_ = std::max(1, ctx.ga.duplicate_retries);
}

void LocalSearchOptimizer::tell(const Genome& genome, const Objectives& objectives,
                                double cost_seconds) {
  ArchiveOptimizer::tell(genome, objectives, cost_seconds);
  if (!objectives_valid(objectives)) return;
  Individual ind;
  ind.genome = genome;
  ind.objectives = objectives;
  ind.evaluated = true;
  insert_nondominated(climb_front_, std::move(ind));
}

Genome LocalSearchOptimizer::propose() {
  if (climb_front_.empty() || problem_.n_vars() == 0) return random_distinct();
  for (int attempt = 0; attempt < retries_; ++attempt) {
    const Individual& base = climb_front_[next_member_ % climb_front_.size()];
    ++next_member_;
    Genome g = base.genome;
    g.resize(problem_.n_vars(), 0);
    const std::size_t var = rng_.index(g.size());
    // Mostly unit steps; an occasional longer jump escapes flat plateaus.
    std::int64_t step = 1;
    if (rng_.index(4) == 0) step += static_cast<std::int64_t>(rng_.index(3));
    if (rng_.index(2) == 0) step = -step;
    g[var] += step;
    problem_.repair(g);
    if (seen_.count(g) == 0) return g;
  }
  // The neighbourhood of the front is exhausted: restart from a random
  // point (which also keeps exploration alive on deceptive landscapes).
  return random_distinct();
}

// ---- SurrogateSamplerOptimizer -------------------------------------------

SurrogateSamplerOptimizer::SurrogateSamplerOptimizer(const OptimizerContext& ctx)
    : ArchiveOptimizer({/*name=*/"surrogate", /*elitist=*/false, /*uses_seeds=*/true,
                        /*uses_surrogate=*/true, /*composite=*/false},
                       ctx),
      surrogate_(ctx.surrogate) {}

void SurrogateSamplerOptimizer::tell(const Genome& genome, const Objectives& objectives,
                                     double cost_seconds) {
  ArchiveOptimizer::tell(genome, objectives, cost_seconds);
  if (!objectives_valid(objectives)) return;
  if (obj_min_.empty()) {
    obj_min_ = objectives;
    obj_max_ = objectives;
  } else {
    for (std::size_t i = 0; i < objectives.size() && i < obj_min_.size(); ++i) {
      obj_min_[i] = std::min(obj_min_[i], objectives[i]);
      obj_max_[i] = std::max(obj_max_[i], objectives[i]);
    }
  }
  Individual ind;
  ind.genome = genome;
  ind.objectives = objectives;
  ind.evaluated = true;
  insert_nondominated(rank_front_, std::move(ind));
}

Genome SurrogateSamplerOptimizer::propose() {
  if (!surrogate_) return random_distinct();

  // Rank a batch of random candidates by how the surrogate places them
  // against the current front: fewest dominating front members first, then
  // the smaller normalized objective sum. All-unknown batches fall back to
  // the first candidate (pure random sampling).
  Genome best;
  bool have_first = false;
  bool have_scored = false;
  std::size_t best_dominated = std::numeric_limits<std::size_t>::max();
  double best_sum = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < candidates_; ++k) {
    Genome g = random_distinct(50);
    if (!have_first) {
      best = g;
      have_first = true;
    }
    const std::optional<Objectives> est = surrogate_(g);
    if (!est || !objectives_valid(*est)) continue;
    std::size_t dominated = 0;
    for (const auto& member : rank_front_) {
      if (dominates(member.objectives, *est)) ++dominated;
    }
    double sum = 0.0;
    for (std::size_t i = 0; i < est->size(); ++i) {
      if (i < obj_min_.size() && obj_max_[i] > obj_min_[i]) {
        sum += ((*est)[i] - obj_min_[i]) / (obj_max_[i] - obj_min_[i]);
      } else {
        sum += (*est)[i];
      }
    }
    if (!have_scored || dominated < best_dominated ||
        (dominated == best_dominated && sum < best_sum)) {
      have_scored = true;
      best_dominated = dominated;
      best_sum = sum;
      best = std::move(g);
    }
  }
  return best;
}

// ---- ExhaustiveOptimizer -------------------------------------------------

ExhaustiveOptimizer::ExhaustiveOptimizer(const OptimizerContext& ctx)
    : ArchiveOptimizer({/*name=*/"exhaustive", /*elitist=*/false, /*uses_seeds=*/false,
                        /*uses_surrogate=*/false, /*composite=*/false},
                       ctx),
      odometer_(problem_.n_vars(), 0) {}

Genome ExhaustiveOptimizer::propose() {
  const std::size_t n = problem_.n_vars();
  while (!exhausted_) {
    Genome g = odometer_;
    // Odometer increment over the mixed-radix index space.
    bool done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (++odometer_[i] < problem_.cardinality(i)) {
        done = false;
        break;
      }
      odometer_[i] = 0;
    }
    if (done) exhausted_ = true;
    // Seeds and reserved genomes were already handed out; skip them here.
    if (seen_.count(g) == 0) return g;
  }
  return random_distinct(0);
}

// ---- OptimizerRegistry ---------------------------------------------------

namespace {

std::map<std::string, OptimizerRegistry::Factory>& registry() {
  static std::map<std::string, OptimizerRegistry::Factory> instance;
  return instance;
}

util::Mutex& registry_mutex() {
  static util::Mutex m{"OptimizerRegistry"};
  return m;
}

/// Register the shipped optimizers exactly once; callers must hold the
/// registry mutex.
void ensure_builtins_locked() {
  static bool done = false;
  if (done) return;
  done = true;
  registry()["nsga2"] = [](const OptimizerContext& ctx) {
    return std::unique_ptr<Optimizer>(
        std::make_unique<SteadyStateNsga2>(ctx.ga, *ctx.problem));
  };
  registry()["random"] = [](const OptimizerContext& ctx) {
    return std::unique_ptr<Optimizer>(std::make_unique<RandomSearchOptimizer>(ctx));
  };
  registry()["local"] = [](const OptimizerContext& ctx) {
    return std::unique_ptr<Optimizer>(std::make_unique<LocalSearchOptimizer>(ctx));
  };
  registry()["surrogate"] = [](const OptimizerContext& ctx) {
    return std::unique_ptr<Optimizer>(std::make_unique<SurrogateSamplerOptimizer>(ctx));
  };
  registry()["exhaustive"] = [](const OptimizerContext& ctx) {
    return std::unique_ptr<Optimizer>(std::make_unique<ExhaustiveOptimizer>(ctx));
  };
  registry()["portfolio"] = [](const OptimizerContext& ctx) {
    return std::unique_ptr<Optimizer>(make_portfolio(ctx));
  };
}

[[noreturn]] void throw_unknown(const std::string& name,
                                const std::vector<std::string>& known) {
  std::string message = "unknown optimizer '" + name + "'";
  const std::string suggestion = util::closest_match(name, known);
  if (!suggestion.empty()) message += " (did you mean '" + suggestion + "'?)";
  message += "; known optimizers: " + util::join(known, ", ");
  throw std::runtime_error(message);
}

}  // namespace

void OptimizerRegistry::register_optimizer(const std::string& name, Factory factory) {
  util::MutexLock lock(registry_mutex());
  ensure_builtins_locked();
  registry()[name] = std::move(factory);
}

std::unique_ptr<Optimizer> OptimizerRegistry::create(const std::string& name,
                                                     const OptimizerContext& ctx) {
  Factory factory;
  std::vector<std::string> known;
  {
    util::MutexLock lock(registry_mutex());
    ensure_builtins_locked();
    auto it = registry().find(name);
    if (it != registry().end()) {
      factory = it->second;
    } else {
      for (const auto& [key, value] : registry()) {
        (void)value;
        known.push_back(key);
      }
    }
  }
  if (factory) {
    if (ctx.problem == nullptr) {
      throw std::runtime_error("optimizer '" + name + "': context has no problem");
    }
    return factory(ctx);
  }
  throw_unknown(name, known);
}

void OptimizerRegistry::ensure_known(const std::string& name) {
  std::vector<std::string> known = names();
  if (std::find(known.begin(), known.end(), name) != known.end()) return;
  throw_unknown(name, known);
}

std::vector<std::string> OptimizerRegistry::names() {
  util::MutexLock lock(registry_mutex());
  ensure_builtins_locked();
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& [key, value] : registry()) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

}  // namespace dovado::opt
