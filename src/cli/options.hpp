// Command-line interface of the dovado tool.
//
// Mirrors the released Python package's UX: the user names the target
// board/part, the top module, the search-space parameters (which one,
// desired range of exploration) and Dovado runs automatically (paper
// Sec. IV). Parsing is a pure function from argv to an Options struct so it
// is unit-testable without process spawning.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/param_domain.hpp"

namespace dovado::cli {

enum class Command {
  kHelp,
  kParse,
  kEvaluate,
  kExplore,
  kSensitivity,
  kRoofline,
  kLint,
  kDb,
  kServe,
  kClient,
  kTop,
};

/// One tenant of `dovado serve`, assembled from --tenant (name, fair-share
/// weight, queue depth) plus the optional --request-rate and --quota limits
/// naming the same tenant. Zero rates mean unlimited.
struct ServeTenantSpec {
  std::string name;
  double weight = 1.0;
  std::size_t queue_cap = 64;
  double request_rate = 0.0;
  double request_burst = 0.0;
  double tool_seconds_rate = 0.0;
  double tool_seconds_burst = 0.0;
};

/// One --kernel spec for the roofline command.
struct KernelSpec {
  std::string name;
  double ops = 0.0;
  double bytes = 0.0;
  double achieved_gops = 0.0;
};

struct Options {
  Command command = Command::kHelp;

  // Shared project options.
  std::vector<std::string> sources;  ///< --source (repeatable)
  std::string top;                   ///< --top
  std::string part;                  ///< --part
  double period_ns = 1.0;            ///< --period
  std::string synth_directive = "Default";  ///< --synth-directive
  std::string place_directive = "Default";  ///< --place-directive
  std::string route_directive = "Default";  ///< --route-directive
  bool run_implementation = true;    ///< --no-impl clears it
  bool incremental = false;          ///< --incremental
  std::string backend = "vivado-sim";  ///< --backend NAME

  // evaluate: explicit design point(s).
  core::DesignPoint assignments;     ///< --set NAME=VALUE (repeatable)

  // lint: static analysis (also gates explore as the pre-flight check).
  std::string lint_format = "text";  ///< --lint-format text|json
  std::string lint_rules;            ///< --lint-rules +x,-y (see analysis/rules.hpp)
  bool preflight = true;             ///< --no-preflight clears it (explore)

  // explore: search space + objectives + GA settings.
  std::vector<core::ParamSpec> params;       ///< --param SPEC (repeatable)
  std::vector<std::string> raw_param_specs;  ///< --param strings as written
                                             ///< (descending ranges are only
                                             ///< visible pre-normalization)
  std::vector<std::pair<std::string, bool>> objectives;  ///< (metric, maximize)
  std::size_t population = 24;       ///< --pop
  std::size_t generations = 15;      ///< --gens
  std::uint64_t seed = 1;            ///< --seed
  bool approximate = false;          ///< --approximate
  std::size_t pretrain = 100;        ///< --pretrain
  double deadline_hours = 0.0;       ///< --deadline-hours (0 = none)
  std::size_t workers = 0;           ///< --workers
  double screen_ratio = 1.0;         ///< --screen-ratio (1.0 = no screening)
  bool steady_state = false;         ///< --steady-state
  std::size_t max_inflight = 0;      ///< --max-inflight (0 = one per lane)
  std::string optimizer = "nsga2";   ///< --optimizer NAME (steady-state searcher)
  /// --portfolio-members a,b,c: member searchers of --optimizer portfolio
  /// (empty = the default set).
  std::vector<std::string> portfolio_members;

  // Output options.
  std::string csv_path;   ///< --csv FILE
  std::string json_path;  ///< --json FILE

  // Session persistence (explore).
  std::string resume_path;   ///< --resume FILE: warm-start from a session
  std::string session_path;  ///< --save-session FILE: write one afterwards

  // Robustness (explore/evaluate).
  std::string fault_plan;        ///< --fault-plan SPEC (or DOVADO_FAULT_PLAN env)
  int max_retries = 3;           ///< --max-retries N
  double attempt_timeout = 0.0;  ///< --attempt-timeout SECONDS (simulated; 0 = off)
  std::string journal_path;      ///< --journal FILE: crash-safe evaluation log

  // Backend health / circuit breaker (explore).
  bool breaker = true;                ///< --no-breaker clears it
  std::size_t breaker_window = 12;    ///< --breaker-window N
  std::size_t breaker_threshold = 6;  ///< --breaker-threshold N
  std::size_t probe_budget = 3;       ///< --probe-budget N

  // Cross-campaign evaluation store (explore/db).
  std::string store_path;    ///< --store FILE (or DOVADO_STORE env)
  bool use_store = true;     ///< --no-store clears it (also ignores the env var)
  std::string campaign_id;   ///< --campaign ID recorded on appended evaluations
  bool store_warm_start = true;  ///< --no-warm-start clears it

  // db: store maintenance subcommand ("stats", "query", "compact", "export").
  std::string db_action;
  std::string db_tier;     ///< --tier hifi|screen filter for query/export
  std::string db_backend;  ///< --backend reused as a filter for query/export

  // serve / client / top.
  std::string socket_path;              ///< --socket PATH
  std::vector<ServeTenantSpec> serve_tenants;  ///< serve: --tenant/--quota/--request-rate
  std::string tenant = "default";       ///< client: --tenant NAME
  double deadline_tool_seconds = 0.0;   ///< client/serve: --deadline SECONDS
  std::size_t max_connections = 64;     ///< serve: --max-connections N

  // sensitivity.
  std::size_t samples_per_param = 7;  ///< --samples

  // roofline.
  double clock_mhz = 100.0;          ///< --clock
  std::vector<KernelSpec> kernels;   ///< --kernel name:ops:bytes[:gops]
};

/// Result of parsing: options or a usage error message.
struct ParseOutcome {
  bool ok = false;
  std::string error;
  /// Non-fatal diagnostics (e.g. --max-inflight above the lane count);
  /// printed to stderr by the entry point.
  std::vector<std::string> warnings;
  Options options;
};

/// Parse argv (excluding the program name).
[[nodiscard]] ParseOutcome parse_args(const std::vector<std::string>& args);

/// Parse one --param spec:
///   "NAME=lo:hi"        arithmetic range (optional ":step")
///   "NAME=pow2:a:b"     {2^a .. 2^b}
///   "NAME=vals:1,2,3"   explicit list
///   "NAME=bool"         {0,1}
[[nodiscard]] std::optional<core::ParamSpec> parse_param_spec(const std::string& spec,
                                                              std::string& error);

/// Parse one --objective spec: "metric:min" or "metric:max".
[[nodiscard]] std::optional<std::pair<std::string, bool>> parse_objective_spec(
    const std::string& spec, std::string& error);

/// Parse one --kernel spec: "name:ops:bytes[:gops]".
[[nodiscard]] std::optional<KernelSpec> parse_kernel_spec(const std::string& spec,
                                                          std::string& error);

/// The usage/help text.
[[nodiscard]] std::string usage();

}  // namespace dovado::cli
