// Command drivers behind the dovado CLI. Each takes parsed options and an
// output stream and returns a process exit code, so the whole tool is
// testable without spawning processes.
#pragma once

#include <iosfwd>

#include "src/cli/options.hpp"

namespace dovado::cli {

/// Dispatch to the right command driver.
[[nodiscard]] int run(const Options& options, std::ostream& out, std::ostream& err);

[[nodiscard]] int run_parse(const Options& options, std::ostream& out, std::ostream& err);
[[nodiscard]] int run_evaluate(const Options& options, std::ostream& out,
                               std::ostream& err);
[[nodiscard]] int run_explore(const Options& options, std::ostream& out,
                              std::ostream& err);
[[nodiscard]] int run_sensitivity(const Options& options, std::ostream& out,
                                  std::ostream& err);
[[nodiscard]] int run_roofline(const Options& options, std::ostream& out,
                               std::ostream& err);
/// Static analysis. Exit code: 0 clean, 1 warnings only, 2 errors.
[[nodiscard]] int run_lint(const Options& options, std::ostream& out, std::ostream& err);

/// Evaluation-store maintenance: db stats|query|compact|export.
[[nodiscard]] int run_db(const Options& options, std::ostream& out, std::ostream& err);

}  // namespace dovado::cli
