// Command drivers behind the dovado CLI. Each takes parsed options and an
// output stream and returns a process exit code, so the whole tool is
// testable without spawning processes.
#pragma once

#include <iosfwd>

#include "src/cli/options.hpp"

namespace dovado::cli {

/// Dispatch to the right command driver.
[[nodiscard]] int run(const Options& options, std::ostream& out, std::ostream& err);

[[nodiscard]] int run_parse(const Options& options, std::ostream& out, std::ostream& err);
[[nodiscard]] int run_evaluate(const Options& options, std::ostream& out,
                               std::ostream& err);
[[nodiscard]] int run_explore(const Options& options, std::ostream& out,
                              std::ostream& err);
[[nodiscard]] int run_sensitivity(const Options& options, std::ostream& out,
                                  std::ostream& err);
[[nodiscard]] int run_roofline(const Options& options, std::ostream& out,
                               std::ostream& err);
/// Static analysis. Exit code: 0 clean, 1 warnings only, 2 errors.
[[nodiscard]] int run_lint(const Options& options, std::ostream& out, std::ostream& err);

/// Evaluation-store maintenance: db stats|query|compact|export.
[[nodiscard]] int run_db(const Options& options, std::ostream& out, std::ostream& err);

/// The multi-tenant evaluation daemon (blocks until SIGTERM/SIGINT drains it).
[[nodiscard]] int run_serve(const Options& options, std::ostream& out,
                            std::ostream& err);

/// One-shot client: ping or a single evaluation against a running daemon.
/// Exit codes: 0 ok, 1 failed evaluation, 2 protocol/connection error,
/// 4 shed or draining (retry later).
[[nodiscard]] int run_client(const Options& options, std::ostream& out,
                             std::ostream& err);

/// Per-tenant scheduling statistics of a running daemon.
[[nodiscard]] int run_top(const Options& options, std::ostream& out,
                          std::ostream& err);

/// Exit code of `dovado explore` when a SIGINT/SIGTERM stopped the search
/// early: the partial front was printed and outputs were written, but the
/// budget was not exhausted.
inline constexpr int kExitInterrupted = 3;

}  // namespace dovado::cli
