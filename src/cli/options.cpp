#include "src/cli/options.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/opt/optimizer.hpp"
#include "src/util/strings.hpp"

namespace dovado::cli {

namespace {

bool parse_i64(const std::string& s, std::int64_t& out) {
  long long v = 0;
  if (!util::parse_int(s, v)) return false;
  out = v;
  return true;
}

/// Find (or create) the serve-tenant spec a --tenant/--quota/--request-rate
/// flag is talking about, so the three flags compose in any order.
ServeTenantSpec& tenant_spec_for(Options& opt, const std::string& name) {
  for (auto& spec : opt.serve_tenants) {
    if (spec.name == name) return spec;
  }
  opt.serve_tenants.push_back(ServeTenantSpec{});
  opt.serve_tenants.back().name = name;
  return opt.serve_tenants.back();
}

/// Parse "name:a[:b]" into (name, a, optional b); used by the serve tenant
/// flags. Returns false with `error` set on a malformed spec.
bool parse_tenant_numbers(const std::string& flag, const std::string& spec,
                          std::string& name, double& first, double& second,
                          bool& has_second, std::string& error) {
  const auto parts = util::split(spec, ':');
  if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
    error = flag + " expects NAME:NUMBER[:NUMBER]: " + spec;
    return false;
  }
  name = parts[0];
  if (!util::parse_double(parts[1], first)) {
    error = flag + ": invalid number in '" + spec + "'";
    return false;
  }
  has_second = parts.size() == 3;
  if (has_second && !util::parse_double(parts[2], second)) {
    error = flag + ": invalid number in '" + spec + "'";
    return false;
  }
  return true;
}

}  // namespace

std::optional<core::ParamSpec> parse_param_spec(const std::string& spec,
                                                std::string& error) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    error = "param spec must be NAME=<domain>: " + spec;
    return std::nullopt;
  }
  const std::string name = spec.substr(0, eq);
  const std::string domain = spec.substr(eq + 1);
  const auto parts = util::split(domain, ':');

  try {
    if (parts.size() == 1 && parts[0] == "bool") {
      return core::ParamSpec{name, core::ParamDomain::boolean()};
    }
    if (parts[0] == "pow2") {
      if (parts.size() != 3) {
        error = "pow2 domain must be NAME=pow2:minexp:maxexp: " + spec;
        return std::nullopt;
      }
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      if (!parse_i64(parts[1], lo) || !parse_i64(parts[2], hi)) {
        error = "invalid pow2 exponents: " + spec;
        return std::nullopt;
      }
      return core::ParamSpec{
          name, core::ParamDomain::power_of_two(static_cast<int>(lo), static_cast<int>(hi))};
    }
    if (parts[0] == "vals") {
      if (parts.size() != 2) {
        error = "value-list domain must be NAME=vals:v1,v2,...: " + spec;
        return std::nullopt;
      }
      std::vector<std::int64_t> values;
      for (const auto& item : util::split(parts[1], ',')) {
        std::int64_t v = 0;
        if (!parse_i64(item, v)) {
          error = "invalid value '" + item + "' in: " + spec;
          return std::nullopt;
        }
        values.push_back(v);
      }
      return core::ParamSpec{name, core::ParamDomain::values(std::move(values))};
    }
    // Arithmetic range lo:hi[:step].
    if (parts.size() < 2 || parts.size() > 3) {
      error = "range domain must be NAME=lo:hi[:step]: " + spec;
      return std::nullopt;
    }
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t step = 1;
    if (!parse_i64(parts[0], lo) || !parse_i64(parts[1], hi) ||
        (parts.size() == 3 && !parse_i64(parts[2], step))) {
      error = "invalid range bounds: " + spec;
      return std::nullopt;
    }
    return core::ParamSpec{name, core::ParamDomain::range(lo, hi, step)};
  } catch (const std::exception& e) {
    error = std::string(e.what()) + ": " + spec;
    return std::nullopt;
  }
}

std::optional<std::pair<std::string, bool>> parse_objective_spec(const std::string& spec,
                                                                 std::string& error) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    error = "objective must be metric:min or metric:max: " + spec;
    return std::nullopt;
  }
  const std::string metric = spec.substr(0, colon);
  const std::string dir = util::to_lower(spec.substr(colon + 1));
  if (dir != "min" && dir != "max") {
    error = "objective direction must be min or max: " + spec;
    return std::nullopt;
  }
  return std::make_pair(metric, dir == "max");
}

std::optional<KernelSpec> parse_kernel_spec(const std::string& spec, std::string& error) {
  const auto parts = util::split(spec, ':');
  if (parts.size() < 3 || parts.size() > 4) {
    error = "kernel must be name:ops:bytes[:gops]: " + spec;
    return std::nullopt;
  }
  KernelSpec kernel;
  kernel.name = parts[0];
  if (!util::parse_double(parts[1], kernel.ops) ||
      !util::parse_double(parts[2], kernel.bytes)) {
    error = "invalid kernel numbers: " + spec;
    return std::nullopt;
  }
  if (parts.size() == 4 && !util::parse_double(parts[3], kernel.achieved_gops)) {
    error = "invalid achieved gops: " + spec;
    return std::nullopt;
  }
  if (kernel.name.empty() || kernel.ops <= 0.0 || kernel.bytes <= 0.0) {
    error = "kernel needs a name and positive ops/bytes: " + spec;
    return std::nullopt;
  }
  return kernel;
}

std::string usage() {
  return R"(dovado - design automation and design space exploration for RTL designs

usage: dovado <command> [options]

commands:
  parse      print the parsed interface of the top module
  evaluate   evaluate one design point (parse -> box -> flow -> metrics)
  explore    run the multi-objective NSGA-II design space exploration
  sensitivity  one-at-a-time parameter sensitivity sweep around a base point
  roofline   render a roofline chart for a device
  lint       static pre-flight analysis of RTL, generated TCL and the
             design space (exit 0 = clean, 1 = warnings, 2 = errors)
  db         inspect or maintain a cross-campaign evaluation store:
             db stats|query|compact|export --store FILE
  serve      long-running multi-tenant evaluation daemon on a Unix socket
             (shared broker/cache/store, per-tenant admission control,
             weighted fair-share scheduling, graceful drain on SIGTERM)
  client     submit one evaluation (or a ping) to a running daemon
  top        print a running daemon's per-tenant scheduling statistics
  help       show this text

project options (parse/evaluate/explore):
  --source FILE           RTL source (repeatable; .vhd/.v/.sv)
  --top NAME              module under exploration
  --part PART             target device (e.g. xc7k70tfbv676-1)
  --period NS             target clock period, default 1.0 (1 GHz)
  --synth-directive D     synthesis directive (Default, AreaOptimized_high, ...)
  --place-directive D     placement directive
  --route-directive D     routing directive
  --no-impl               synthesis-only flow
  --incremental           enable the incremental synthesis/implementation flow
  --backend NAME          evaluation backend: vivado-sim (default, the
                          simulated tool) or analytic (fast low-fidelity
                          cost-model estimator)

evaluate options:
  --set NAME=VALUE        parameter assignment (repeatable)

explore options:
  --param NAME=lo:hi[:s]  arithmetic-range parameter (repeatable)
  --param NAME=pow2:a:b   power-of-two parameter 2^a..2^b
  --param NAME=vals:...   explicit value list
  --param NAME=bool       boolean parameter {0,1}
  --objective M:min|max   optimization metric (repeatable; lut, ff, bram,
                          dsp, uram, fmax_mhz, ...)
  --pop N                 population size (default 24)
  --gens N                generations (default 15)
  --seed N                RNG seed (default 1)
  --approximate           enable the Nadaraya-Watson fitness approximation
  --pretrain M            synthetic dataset size (default 100)
  --deadline-hours H      soft deadline on simulated tool time
  --workers N             parallel tool sessions (default 0 = inline)
  --screen-ratio R        multi-fidelity screening: pre-rank each offspring
                          batch on the analytic backend and send only the
                          top fraction R to the full flow (default 1.0 =
                          screening off)
  --steady-state          asynchronous steady-state engine: offspring are
                          submitted one at a time as evaluator lanes free
                          up (no generational barrier); survival runs per
                          completion
  --max-inflight N        steady-state only: evaluations in flight at once
                          (default 0 = one per evaluator lane)
  --optimizer NAME        steady-state searcher: nsga2 (default), random,
                          local, surrogate, exhaustive, or portfolio (a
                          UCB bandit routing each ask to whichever member
                          is earning the most hypervolume per tool second)
  --portfolio-members L   comma-separated members of --optimizer portfolio,
                          e.g. nsga2,random,local (default: nsga2, random,
                          local, surrogate)
  --resume FILE           warm-start from a saved session (tool results are
                          not re-paid for); a missing file starts fresh, a
                          corrupt file is a hard error
  --save-session FILE     save the explored points for later --resume

robustness options (explore):
  --max-retries N         tool attempts after a transient failure (default 3;
                          exhausted points are quarantined)
  --attempt-timeout S     per-attempt budget in simulated tool seconds; hung
                          runs are killed and classified as timeouts (0 = off)
  --journal FILE          append every paid-for evaluation (fsync'd JSONL);
                          with --resume an existing journal is replayed so a
                          crashed run repays for nothing
  --fault-plan SPEC       inject tool faults for robustness drills, e.g.
                          seed=7,crash=0.2,hang=0.05,corrupt=0.1,abort=0.02,
                          outage_start=20,outage_len=30 (backend outage) or
                          flap_up=10,flap_down=15 (flapping backend)
                          (also read from DOVADO_FAULT_PLAN)

evaluation store options (explore):
  --store FILE            durable cross-campaign evaluation store (also read
                          from DOVADO_STORE): exact prior answers are served
                          for free, every paid-for evaluation is appended,
                          and the search warm-starts from the stored front
  --no-store              run without a store (overrides DOVADO_STORE)
  --campaign ID           label recorded on this run's appended evaluations
  --no-warm-start         keep the store for hits/appends but do not seed
                          the initial population from it

db options (db stats|query|compact|export --store FILE):
  --store FILE            the store file to operate on (or DOVADO_STORE)
  --tier hifi|screen      query/export: only records of one fidelity tier
  --backend NAME          query/export: only records of one backend
  --json FILE             export: write records as JSON (default: stdout)
  --csv FILE              export: write records as CSV

availability options (explore):
  --no-breaker            disable the per-backend circuit breaker
  --breaker-window N      rolling window of final outcomes per backend
                          (default 12)
  --breaker-threshold N   failures within the window that trip the breaker
                          open; while open, evaluations fast-fail and are
                          hedged on the analytic backend (default 6)
  --probe-budget N        recovery probes per half-open episode; a quorum of
                          successes closes the breaker again (default 3)

lint options (lint/explore):
  --lint-format F         lint report format: text (default) or json
  --lint-rules SPEC       enable/disable rules, e.g. -net-undriven,+all
                          (unknown names get a did-you-mean suggestion)
  --no-preflight          explore only: skip the mandatory pre-flight lint
                          gate (a lint error normally aborts before the
                          first tool run)

output options:
  --csv FILE              write explored points as CSV
  --json FILE             write the full result as JSON

serve options (plus the project/robustness/store/availability options):
  --socket PATH           Unix-domain socket to listen on (required)
  --tenant N:W[:Q]        register tenant N with fair-share weight W and
                          queue depth Q (repeatable; default weight 1,
                          queue 64; unknown tenants get the defaults)
  --request-rate N:R[:B]  admit at most R requests/second from tenant N
                          (token bucket of depth B; default B = max(1, R));
                          over-limit requests are shed with retry_after_ms
  --quota N:R[:B]         tool-second quota for tenant N: R tool-seconds of
                          budget accrue per second up to burst B (post-paid;
                          an exhausted tenant sheds until the refill covers
                          its debt)
  --max-connections N     concurrent client connections (default 64)
  --deadline S            default per-request tool-second deadline when the
                          request names none (0 = unbounded)
  --workers N             evaluator threads of the shared broker
  --max-inflight N        evaluations in flight at once (default: one per
                          virtual lane)

client options:
  --socket PATH           the daemon's socket (required)
  --tenant NAME           tenant to bill the request to (default "default")
  --set NAME=VALUE        design-point assignment (repeatable; with no --set
                          the client just pings the daemon)
  --deadline S            per-request tool-second deadline (0 = unbounded)

top options:
  --socket PATH           the daemon's socket (required)

sensitivity options:
  --param NAME=...        parameters to sweep (same domain syntax as explore)
  --set NAME=VALUE        base-point override (default: domain centers)
  --samples N             sweep points per parameter (default 7)

roofline options:
  --part PART             device
  --clock MHZ             clock for the machine model (default 100)
  --kernel n:ops:bytes[:gops]   kernel to place (repeatable)
)";
}

ParseOutcome parse_args(const std::vector<std::string>& args) {
  ParseOutcome outcome;
  Options& opt = outcome.options;
  if (args.empty()) {
    outcome.error = "missing command";
    return outcome;
  }

  const std::string& command = args[0];
  if (command == "help" || command == "--help" || command == "-h") {
    opt.command = Command::kHelp;
    outcome.ok = true;
    return outcome;
  }
  if (command == "parse") opt.command = Command::kParse;
  else if (command == "evaluate") opt.command = Command::kEvaluate;
  else if (command == "explore") opt.command = Command::kExplore;
  else if (command == "sensitivity") opt.command = Command::kSensitivity;
  else if (command == "roofline") opt.command = Command::kRoofline;
  else if (command == "lint") opt.command = Command::kLint;
  else if (command == "db") opt.command = Command::kDb;
  else if (command == "serve") opt.command = Command::kServe;
  else if (command == "client") opt.command = Command::kClient;
  else if (command == "top") opt.command = Command::kTop;
  else {
    outcome.error = "unknown command '" + command + "'";
    return outcome;
  }

  auto need_value = [&](std::size_t i, const std::string& flag) -> bool {
    if (i + 1 >= args.size()) {
      outcome.error = flag + " requires a value";
      return false;
    }
    return true;
  };

  // db takes a positional action before its flags: dovado db stats --store F
  std::size_t first_flag = 1;
  if (opt.command == Command::kDb) {
    if (args.size() < 2 || args[1].rfind("--", 0) == 0) {
      outcome.error = "db requires an action: stats, query, compact or export";
      return outcome;
    }
    opt.db_action = args[1];
    if (opt.db_action != "stats" && opt.db_action != "query" &&
        opt.db_action != "compact" && opt.db_action != "export") {
      outcome.error = "unknown db action '" + opt.db_action +
                      "' (expected stats, query, compact or export)";
      return outcome;
    }
    first_flag = 2;
  }

  for (std::size_t i = first_flag; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string error;
    if (a == "--source") {
      if (!need_value(i, a)) return outcome;
      opt.sources.push_back(args[++i]);
    } else if (a == "--top") {
      if (!need_value(i, a)) return outcome;
      opt.top = args[++i];
    } else if (a == "--part") {
      if (!need_value(i, a)) return outcome;
      opt.part = args[++i];
    } else if (a == "--period") {
      if (!need_value(i, a)) return outcome;
      if (!util::parse_double(args[++i], opt.period_ns) || opt.period_ns <= 0.0) {
        outcome.error = "invalid --period";
        return outcome;
      }
    } else if (a == "--synth-directive") {
      if (!need_value(i, a)) return outcome;
      opt.synth_directive = args[++i];
    } else if (a == "--place-directive") {
      if (!need_value(i, a)) return outcome;
      opt.place_directive = args[++i];
    } else if (a == "--route-directive") {
      if (!need_value(i, a)) return outcome;
      opt.route_directive = args[++i];
    } else if (a == "--no-impl") {
      opt.run_implementation = false;
    } else if (a == "--incremental") {
      opt.incremental = true;
    } else if (a == "--backend") {
      if (!need_value(i, a)) return outcome;
      opt.backend = args[++i];
      // For db the default backend must not act as a filter; only an
      // explicit --backend narrows query/export.
      if (opt.command == Command::kDb) opt.db_backend = opt.backend;
    } else if (a == "--screen-ratio") {
      if (!need_value(i, a)) return outcome;
      if (!util::parse_double(args[++i], opt.screen_ratio) || opt.screen_ratio <= 0.0 ||
          opt.screen_ratio > 1.0) {
        outcome.error = "invalid --screen-ratio (must be in (0, 1])";
        return outcome;
      }
    } else if (a == "--set") {
      if (!need_value(i, a)) return outcome;
      const std::string& assignment = args[++i];
      const auto eq = assignment.find('=');
      std::int64_t value = 0;
      if (eq == std::string::npos || eq == 0 ||
          !parse_i64(assignment.substr(eq + 1), value)) {
        outcome.error = "--set expects NAME=INTEGER: " + assignment;
        return outcome;
      }
      opt.assignments[assignment.substr(0, eq)] = value;
    } else if (a == "--param") {
      if (!need_value(i, a)) return outcome;
      opt.raw_param_specs.push_back(args[i + 1]);
      auto spec = parse_param_spec(args[++i], error);
      if (!spec) {
        outcome.error = error;
        return outcome;
      }
      opt.params.push_back(std::move(*spec));
    } else if (a == "--objective") {
      if (!need_value(i, a)) return outcome;
      auto obj = parse_objective_spec(args[++i], error);
      if (!obj) {
        outcome.error = error;
        return outcome;
      }
      opt.objectives.push_back(std::move(*obj));
    } else if (a == "--pop") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error = "invalid --pop";
        return outcome;
      }
      opt.population = static_cast<std::size_t>(v);
    } else if (a == "--gens") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v < 0) {
        outcome.error = "invalid --gens";
        return outcome;
      }
      opt.generations = static_cast<std::size_t>(v);
    } else if (a == "--seed") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v)) {
        outcome.error = "invalid --seed";
        return outcome;
      }
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--approximate") {
      opt.approximate = true;
    } else if (a == "--pretrain") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v < 0) {
        outcome.error = "invalid --pretrain";
        return outcome;
      }
      opt.pretrain = static_cast<std::size_t>(v);
    } else if (a == "--deadline-hours") {
      if (!need_value(i, a)) return outcome;
      if (!util::parse_double(args[++i], opt.deadline_hours) || opt.deadline_hours < 0.0) {
        outcome.error = "invalid --deadline-hours";
        return outcome;
      }
    } else if (a == "--workers") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v < 0) {
        outcome.error = "invalid --workers";
        return outcome;
      }
      opt.workers = static_cast<std::size_t>(v);
    } else if (a == "--steady-state") {
      opt.steady_state = true;
    } else if (a == "--optimizer") {
      if (!need_value(i, a)) return outcome;
      opt.optimizer = args[++i];
    } else if (a == "--portfolio-members") {
      if (!need_value(i, a)) return outcome;
      opt.portfolio_members = util::split(args[++i], ',');
      if (opt.portfolio_members.empty()) {
        outcome.error = "--portfolio-members expects a comma-separated list of "
                        "optimizer names";
        return outcome;
      }
    } else if (a == "--max-inflight") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      // 0 is not "default" here: the flag's whole point is to bound
      // concurrency, and a zero bound would deadlock the submit loop. Omit
      // the flag entirely for the one-per-lane default.
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error =
            "invalid --max-inflight: must be a positive integer (omit the "
            "flag to default to one evaluation per virtual lane)";
        return outcome;
      }
      opt.max_inflight = static_cast<std::size_t>(v);
    } else if (a == "--socket") {
      if (!need_value(i, a)) return outcome;
      opt.socket_path = args[++i];
    } else if (a == "--tenant") {
      if (!need_value(i, a)) return outcome;
      const std::string& spec = args[++i];
      if (opt.command == Command::kServe) {
        std::string name;
        double weight = 1.0;
        double queue = 0.0;
        bool has_queue = false;
        if (!parse_tenant_numbers("--tenant", spec, name, weight, queue,
                                  has_queue, error)) {
          outcome.error = error;
          return outcome;
        }
        if (weight <= 0.0) {
          outcome.error = "--tenant weight must be positive: " + spec;
          return outcome;
        }
        if (has_queue && queue < 1.0) {
          outcome.error = "--tenant queue depth must be >= 1: " + spec;
          return outcome;
        }
        ServeTenantSpec& tenant = tenant_spec_for(opt, name);
        tenant.weight = weight;
        if (has_queue) tenant.queue_cap = static_cast<std::size_t>(queue);
      } else {
        if (spec.empty()) {
          outcome.error = "--tenant expects a name";
          return outcome;
        }
        opt.tenant = spec;
      }
    } else if (a == "--request-rate") {
      if (!need_value(i, a)) return outcome;
      std::string name;
      double rate = 0.0;
      double burst = 0.0;
      bool has_burst = false;
      if (!parse_tenant_numbers("--request-rate", args[++i], name, rate, burst,
                                has_burst, error)) {
        outcome.error = error;
        return outcome;
      }
      if (rate < 0.0 || (has_burst && burst <= 0.0)) {
        outcome.error = "--request-rate needs rate >= 0 and burst > 0: " + args[i];
        return outcome;
      }
      ServeTenantSpec& tenant = tenant_spec_for(opt, name);
      tenant.request_rate = rate;
      if (has_burst) tenant.request_burst = burst;
    } else if (a == "--quota") {
      if (!need_value(i, a)) return outcome;
      std::string name;
      double rate = 0.0;
      double burst = 0.0;
      bool has_burst = false;
      if (!parse_tenant_numbers("--quota", args[++i], name, rate, burst,
                                has_burst, error)) {
        outcome.error = error;
        return outcome;
      }
      if (rate < 0.0 || (has_burst && burst <= 0.0)) {
        outcome.error = "--quota needs rate >= 0 and burst > 0: " + args[i];
        return outcome;
      }
      ServeTenantSpec& tenant = tenant_spec_for(opt, name);
      tenant.tool_seconds_rate = rate;
      if (has_burst) tenant.tool_seconds_burst = burst;
    } else if (a == "--max-connections") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error = "invalid --max-connections (must be a positive integer)";
        return outcome;
      }
      opt.max_connections = static_cast<std::size_t>(v);
    } else if (a == "--deadline") {
      if (!need_value(i, a)) return outcome;
      if (!util::parse_double(args[++i], opt.deadline_tool_seconds) ||
          opt.deadline_tool_seconds < 0.0) {
        outcome.error = "invalid --deadline (tool seconds, >= 0)";
        return outcome;
      }
    } else if (a == "--samples") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error = "invalid --samples";
        return outcome;
      }
      opt.samples_per_param = static_cast<std::size_t>(v);
    } else if (a == "--resume") {
      if (!need_value(i, a)) return outcome;
      opt.resume_path = args[++i];
    } else if (a == "--fault-plan") {
      if (!need_value(i, a)) return outcome;
      opt.fault_plan = args[++i];
    } else if (a == "--max-retries") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v < 0) {
        outcome.error = "invalid --max-retries";
        return outcome;
      }
      opt.max_retries = static_cast<int>(v);
    } else if (a == "--attempt-timeout") {
      if (!need_value(i, a)) return outcome;
      if (!util::parse_double(args[++i], opt.attempt_timeout) || opt.attempt_timeout < 0.0) {
        outcome.error = "invalid --attempt-timeout";
        return outcome;
      }
    } else if (a == "--journal") {
      if (!need_value(i, a)) return outcome;
      opt.journal_path = args[++i];
    } else if (a == "--store") {
      if (!need_value(i, a)) return outcome;
      opt.store_path = args[++i];
    } else if (a == "--no-store") {
      opt.use_store = false;
    } else if (a == "--campaign") {
      if (!need_value(i, a)) return outcome;
      opt.campaign_id = args[++i];
    } else if (a == "--no-warm-start") {
      opt.store_warm_start = false;
    } else if (a == "--tier") {
      if (!need_value(i, a)) return outcome;
      opt.db_tier = args[++i];
      if (opt.db_tier != "hifi" && opt.db_tier != "screen") {
        outcome.error = "--tier must be hifi or screen";
        return outcome;
      }
    } else if (a == "--lint-format") {
      if (!need_value(i, a)) return outcome;
      opt.lint_format = args[++i];
      if (opt.lint_format != "text" && opt.lint_format != "json") {
        outcome.error = "--lint-format must be text or json";
        return outcome;
      }
    } else if (a == "--lint-rules") {
      if (!need_value(i, a)) return outcome;
      opt.lint_rules = args[++i];
    } else if (a == "--no-preflight") {
      opt.preflight = false;
    } else if (a == "--no-breaker") {
      opt.breaker = false;
    } else if (a == "--breaker-window") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error = "invalid --breaker-window (must be a positive integer)";
        return outcome;
      }
      opt.breaker_window = static_cast<std::size_t>(v);
    } else if (a == "--breaker-threshold") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error = "invalid --breaker-threshold (must be a positive integer)";
        return outcome;
      }
      opt.breaker_threshold = static_cast<std::size_t>(v);
    } else if (a == "--probe-budget") {
      if (!need_value(i, a)) return outcome;
      std::int64_t v = 0;
      if (!parse_i64(args[++i], v) || v <= 0) {
        outcome.error = "invalid --probe-budget (must be a positive integer)";
        return outcome;
      }
      opt.probe_budget = static_cast<std::size_t>(v);
    } else if (a == "--save-session") {
      if (!need_value(i, a)) return outcome;
      opt.session_path = args[++i];
    } else if (a == "--csv") {
      if (!need_value(i, a)) return outcome;
      opt.csv_path = args[++i];
    } else if (a == "--json") {
      if (!need_value(i, a)) return outcome;
      opt.json_path = args[++i];
    } else if (a == "--clock") {
      if (!need_value(i, a)) return outcome;
      if (!util::parse_double(args[++i], opt.clock_mhz) || opt.clock_mhz <= 0.0) {
        outcome.error = "invalid --clock";
        return outcome;
      }
    } else if (a == "--kernel") {
      if (!need_value(i, a)) return outcome;
      auto kernel = parse_kernel_spec(args[++i], error);
      if (!kernel) {
        outcome.error = error;
        return outcome;
      }
      opt.kernels.push_back(std::move(*kernel));
    } else {
      // Did-you-mean: suggest the closest known flag for typos like
      // --screen-ration or --breaker-treshold.
      static const std::vector<std::string> kKnownFlags = {
          "--source", "--top", "--part", "--period", "--synth-directive",
          "--place-directive", "--route-directive", "--no-impl", "--incremental",
          "--backend", "--screen-ratio", "--set", "--param", "--objective", "--pop",
          "--gens", "--seed", "--approximate", "--pretrain", "--deadline-hours",
          "--workers", "--steady-state", "--max-inflight", "--optimizer",
          "--portfolio-members", "--samples",
          "--resume", "--fault-plan", "--max-retries",
          "--attempt-timeout", "--journal", "--no-breaker", "--breaker-window",
          "--breaker-threshold", "--probe-budget", "--save-session", "--csv",
          "--json", "--clock", "--kernel", "--lint-format", "--lint-rules",
          "--no-preflight", "--store", "--no-store", "--campaign",
          "--no-warm-start", "--tier", "--socket", "--tenant", "--quota",
          "--request-rate", "--max-connections", "--deadline"};
      outcome.error = "unknown option '" + a + "'";
      const std::string suggestion = util::closest_match(a, kKnownFlags);
      if (!suggestion.empty()) outcome.error += " (did you mean '" + suggestion + "'?)";
      return outcome;
    }
  }

  // Per-command requirement checks.
  if (opt.command == Command::kServe) {
    if (opt.socket_path.empty()) {
      outcome.error = "serve requires --socket PATH (the Unix socket to listen on)";
      return outcome;
    }
  }
  if (opt.command == Command::kClient || opt.command == Command::kTop) {
    if (opt.socket_path.empty()) {
      outcome.error = "this command requires --socket PATH (the daemon's socket)";
      return outcome;
    }
  }
  if (opt.command == Command::kParse || opt.command == Command::kEvaluate ||
      opt.command == Command::kExplore || opt.command == Command::kSensitivity ||
      opt.command == Command::kLint || opt.command == Command::kServe) {
    if (opt.sources.empty()) {
      outcome.error = "at least one --source is required";
      return outcome;
    }
    if (opt.top.empty()) {
      outcome.error = "--top is required";
      return outcome;
    }
  }
  if (opt.command == Command::kEvaluate || opt.command == Command::kExplore ||
      opt.command == Command::kSensitivity || opt.command == Command::kRoofline ||
      opt.command == Command::kServe) {
    if (opt.part.empty()) {
      outcome.error = "--part is required";
      return outcome;
    }
  }
  if (opt.max_inflight != 0) {
    if (opt.command == Command::kExplore && !opt.steady_state) {
      outcome.error =
          "--max-inflight bounds the steady-state submit loop; it requires "
          "--steady-state (the generational engine evaluates in batches)";
      return outcome;
    }
    // One virtual lane per worker (one lane total when inline): a bound
    // above that only deepens the queue without adding concurrency.
    const std::size_t lanes = std::max<std::size_t>(1, opt.workers);
    if (opt.max_inflight > lanes) {
      outcome.warnings.push_back(util::format(
          "--max-inflight %zu exceeds the %zu virtual lane(s) (one per "
          "worker); the extra in-flight slots only queue behind busy lanes",
          opt.max_inflight, lanes));
    }
  }
  if (opt.command == Command::kExplore || opt.command == Command::kSensitivity) {
    if (opt.params.empty()) {
      outcome.error = "at least one --param is required";
      return outcome;
    }
  }
  if (opt.command == Command::kExplore && opt.objectives.empty()) {
    outcome.error = "explore requires at least one --objective";
    return outcome;
  }
  // Optimizer selection is validated at parse time (mirroring the backend
  // registry's did-you-mean at engine construction): a typo'd searcher name
  // must not survive to the first tool run.
  {
    const std::vector<std::string> known_optimizers = opt::OptimizerRegistry::names();
    auto check_optimizer = [&](const std::string& name, const char* flag) {
      if (std::find(known_optimizers.begin(), known_optimizers.end(), name) !=
          known_optimizers.end()) {
        return true;
      }
      outcome.error = std::string(flag) + ": unknown optimizer '" + name + "'";
      const std::string suggestion = util::closest_match(name, known_optimizers);
      if (!suggestion.empty()) outcome.error += " (did you mean '" + suggestion + "'?)";
      outcome.error += "; known optimizers: " + util::join(known_optimizers, ", ");
      return false;
    };
    if (!check_optimizer(opt.optimizer, "--optimizer")) return outcome;
    for (const auto& member : opt.portfolio_members) {
      if (!check_optimizer(member, "--portfolio-members")) return outcome;
      if (member == "portfolio") {
        outcome.error = "--portfolio-members cannot nest another portfolio";
        return outcome;
      }
    }
    if (!opt.portfolio_members.empty() && opt.optimizer != "portfolio") {
      outcome.error = "--portfolio-members requires --optimizer portfolio (got '" +
                      opt.optimizer + "')";
      return outcome;
    }
    if (opt.command == Command::kExplore && opt.optimizer != "nsga2" &&
        !opt.steady_state) {
      outcome.error = "--optimizer " + opt.optimizer +
                      " requires --steady-state (the generational engine is "
                      "NSGA-II-specific)";
      return outcome;
    }
  }
  if (opt.backend == "analytic" && opt.screen_ratio < 1.0) {
    outcome.error =
        "--screen-ratio screens on the analytic backend, but --backend analytic "
        "already evaluates there (screening against itself saves nothing); drop "
        "--screen-ratio or use --backend vivado-sim";
    return outcome;
  }
  if (opt.command == Command::kDb) {
    if (opt.store_path.empty()) {
      const char* env = std::getenv("DOVADO_STORE");
      if (env != nullptr && *env != '\0') opt.store_path = env;
    }
    if (opt.store_path.empty()) {
      outcome.error = "db requires --store FILE (or the DOVADO_STORE env var)";
      return outcome;
    }
  } else if (opt.command == Command::kExplore && opt.use_store &&
             opt.store_path.empty()) {
    // Like DOVADO_FAULT_PLAN: an env var supplies the site-wide default
    // store; --no-store opts a single run out of it.
    const char* env = std::getenv("DOVADO_STORE");
    if (env != nullptr && *env != '\0') opt.store_path = env;
  }
  if (!opt.use_store) opt.store_path.clear();
  if (opt.breaker_threshold > opt.breaker_window) {
    outcome.error = "--breaker-threshold (" + std::to_string(opt.breaker_threshold) +
                    ") cannot exceed --breaker-window (" +
                    std::to_string(opt.breaker_window) +
                    "): the breaker could never trip";
    return outcome;
  }
  outcome.ok = true;
  return outcome;
}

}  // namespace dovado::cli
