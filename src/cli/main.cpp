// Entry point of the dovado command-line tool.
#include <iostream>
#include <string>
#include <vector>

#include "src/cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const dovado::cli::ParseOutcome outcome = dovado::cli::parse_args(args);
  if (!outcome.ok) {
    std::cerr << "dovado: " << outcome.error << "\n\n" << dovado::cli::usage();
    return 2;
  }
  for (const std::string& warning : outcome.warnings) {
    std::cerr << "dovado: warning: " << warning << "\n";
  }
  return dovado::cli::run(outcome.options, std::cout, std::cerr);
}
