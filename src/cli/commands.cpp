#include "src/cli/commands.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <thread>

#include "src/analysis/analyzer.hpp"
#include "src/analysis/render.hpp"
#include "src/core/dse.hpp"
#include "src/core/sensitivity.hpp"
#include "src/edatool/faults.hpp"
#include "src/core/session.hpp"
#include "src/core/writers.hpp"
#include "src/hdl/expr.hpp"
#include "src/hdl/frontend.hpp"
#include "src/fpga/board.hpp"
#include "src/perf/roofline.hpp"
#include "src/serve/client.hpp"
#include "src/serve/server.hpp"
#include "src/store/store.hpp"
#include "src/util/json.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

namespace dovado::cli {

namespace {

/// Build the project configuration shared by evaluate/explore.
core::ProjectConfig project_from(const Options& options) {
  core::ProjectConfig project;
  for (const auto& path : options.sources) {
    tcl::SourceFile source;
    source.path = path;
    source.language = hdl::language_from_path(path).value_or(hdl::HdlLanguage::kVhdl);
    project.sources.push_back(std::move(source));
  }
  project.top_module = options.top;
  project.part = options.part;
  project.target_period_ns = options.period_ns;
  project.synth_directive = options.synth_directive;
  project.place_directive = options.place_directive;
  project.route_directive = options.route_directive;
  project.run_implementation = options.run_implementation;
  project.incremental_synth = options.incremental;
  project.incremental_impl = options.incremental;
  project.backend = options.backend;
  return project;
}

bool write_file(const std::string& path, const std::string& content, std::ostream& err) {
  std::ofstream out(path);
  if (!out) {
    err << "cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

/// Resolve the fault plan: --fault-plan wins over the DOVADO_FAULT_PLAN
/// environment variable. Returns false (with a message) on a bad spec.
bool apply_fault_plan(const Options& options, core::DseConfig& config, std::ostream& err) {
  std::string spec = options.fault_plan;
  if (spec.empty()) {
    const char* env = std::getenv("DOVADO_FAULT_PLAN");
    if (env != nullptr) spec = env;
  }
  if (spec.empty()) return true;
  std::string error;
  const auto plan = edatool::FaultPlan::parse(spec, error);
  if (!plan) {
    err << "invalid fault plan '" << spec << "': " << error << "\n";
    return false;
  }
  config.fault_plan = *plan;
  return true;
}

/// Last signal delivered while a ScopedSignalHandlers is installed
/// (0 = none). Lock-free atomic, safe to set from the handler.
std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

/// Route SIGINT/SIGTERM into g_signal for the lifetime of this object
/// (restoring the previous handlers on destruction). No SA_RESTART: the
/// wait loops must wake from blocking calls when a signal lands.
class ScopedSignalHandlers {
 public:
  ScopedSignalHandlers() {
    g_signal.store(0, std::memory_order_relaxed);
    struct sigaction action = {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &old_int_);
    sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedSignalHandlers() {
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedSignalHandlers(const ScopedSignalHandlers&) = delete;
  ScopedSignalHandlers& operator=(const ScopedSignalHandlers&) = delete;

  [[nodiscard]] static int delivered() {
    return g_signal.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static const char* name(int sig) {
    return sig == SIGINT ? "SIGINT" : sig == SIGTERM ? "SIGTERM" : "signal";
  }

 private:
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
};

/// Open the cross-campaign store for a daemon, degrading to read-only when
/// another writer holds the lock (mirrors the engine's policy).
std::shared_ptr<store::EvalStore> open_store_or_throw(const std::string& path) {
  auto opened = store::EvalStore::open_writer(path);
  if (!opened.store && opened.lock_busy) {
    util::Log::warn(opened.error);
    opened = store::EvalStore::open_reader(path);
  }
  if (!opened.store) throw std::runtime_error(opened.error);
  return std::move(opened.store);
}

}  // namespace

int run_parse(const Options& options, std::ostream& out, std::ostream& err) {
  bool found = false;
  for (const auto& path : options.sources) {
    const hdl::ParseResult parsed = hdl::parse_file(path);
    for (const auto& diag : parsed.diagnostics) {
      err << path << ":" << diag.loc.line << ": " << diag.message << "\n";
    }
    if (!parsed.ok) continue;
    const hdl::Module* module = parsed.file.find_module(options.top);
    if (module == nullptr) continue;
    found = true;

    out << "module " << module->name << " (" << language_name(module->language) << ")\n";
    if (!module->libraries.empty()) {
      out << "  libraries: " << util::join(module->libraries, ", ") << "\n";
    }
    out << "  parameters:\n";
    for (const auto& p : module->parameters) {
      out << "    " << (p.is_local ? "[local] " : "") << p.name;
      if (!p.type_name.empty()) out << " : " << p.type_name;
      if (!p.default_expr.empty()) out << " := " << p.default_expr;
      out << "\n";
    }
    out << "  ports:\n";
    const hdl::ExprEnv env = hdl::build_param_env(*module, {});
    for (const auto& port : module->ports) {
      out << "    " << port.name << " : " << port_dir_name(port.dir) << " "
          << port.type_name;
      if (port.is_vector) {
        const auto width = hdl::port_width(port, module->language, env);
        if (width) out << "[" << *width << "]";
        else out << "[" << port.left_expr << (port.downto ? " downto " : " to ")
                 << port.right_expr << "]";
      }
      out << "\n";
    }
    const hdl::Port* clk = hdl::find_clock_port(*module);
    out << "  clock: " << (clk != nullptr ? clk->name : "(none detected)") << "\n";
  }
  if (!found) {
    err << "top module '" << options.top << "' not found in the given sources\n";
    return 1;
  }
  return 0;
}

int run_evaluate(const Options& options, std::ostream& out, std::ostream& err) {
  try {
    core::PointEvaluator evaluator(project_from(options));
    const core::EvalResult result = evaluator.evaluate(options.assignments);
    if (!result.ok) {
      err << "evaluation failed: " << result.error << "\n";
      return 1;
    }
    core::ExploredPoint point;
    point.params = options.assignments;
    point.metrics = result.metrics;
    out << core::format_table({point});
    out << "simulated tool time: " << util::format("%.0f s", result.tool_seconds) << "\n";
    if (!options.json_path.empty()) {
      core::DseResult single;
      single.pareto.push_back(point);
      single.explored.push_back(point);
      if (!write_file(options.json_path, core::to_json(single), err)) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int run_explore(const Options& options, std::ostream& out, std::ostream& err) {
  try {
    core::DseConfig config;
    config.space.params = options.params;
    for (const auto& [metric, maximize] : options.objectives) {
      config.objectives.push_back({metric, maximize});
    }
    config.ga.population_size = options.population;
    config.ga.max_generations = options.generations;
    config.ga.seed = options.seed;
    config.use_approximation = options.approximate;
    config.pretrain_samples = options.pretrain;
    config.workers = options.workers;
    config.screen_keep_ratio = options.screen_ratio;
    config.steady_state = options.steady_state;
    config.max_inflight = options.max_inflight;
    config.optimizer = options.optimizer;
    config.portfolio_members = options.portfolio_members;
    if (options.deadline_hours > 0.0) {
      config.deadline_tool_seconds = options.deadline_hours * 3600.0;
    }
    config.supervise.max_retries = options.max_retries;
    config.supervise.attempt_timeout_tool_seconds = options.attempt_timeout;
    config.supervise.seed = options.seed;
    config.breaker.enabled = options.breaker;
    config.breaker.window = options.breaker_window;
    config.breaker.failure_threshold = options.breaker_threshold;
    config.breaker.probe_budget = options.probe_budget;
    config.breaker.seed = options.seed;
    config.journal_path = options.journal_path;
    config.resume_from_journal = !options.resume_path.empty();
    config.store_path = options.store_path;
    config.campaign_id = options.campaign_id;
    config.store_warm_start = options.store_warm_start;
    config.preflight = options.preflight;
    if (!apply_fault_plan(options, config, err)) return 1;
    if (!options.resume_path.empty()) {
      core::SessionLoad session = core::load_session_ex(options.resume_path);
      switch (session.status) {
        case core::SessionLoadStatus::kLoaded:
          config.warm_start = std::move(session.explored);
          out << "resuming from " << options.resume_path << " ("
              << config.warm_start.size() << " known points)\n";
          break;
        case core::SessionLoadStatus::kMissing:
          // First run of a to-be-resumed campaign: nothing to warm-start
          // from yet (the journal, if any, may still have evaluations).
          out << "session " << options.resume_path
              << " not found; starting fresh\n";
          break;
        case core::SessionLoadStatus::kCorrupt:
          err << "session " << options.resume_path
              << " exists but cannot be parsed; refusing to discard it\n";
          return 1;
      }
    }

    // Graceful shutdown: SIGINT/SIGTERM stops submitting new evaluations,
    // drains the in-flight ones (journal and store flushed as usual), and
    // the partial front below is printed before exiting with a distinct
    // code. A second signal still kills the process the hard way.
    ScopedSignalHandlers signals;
    config.ga.should_stop = [] { return ScopedSignalHandlers::delivered() != 0; };

    core::DseEngine engine(project_from(options), config);
    const core::DseResult result = engine.run();

    out << "explored " << result.explored.size() << " design points ("
        << result.stats.tool_runs << " tool runs, " << result.stats.estimates
        << " estimates, " << result.stats.cache_hits << " cache hits, "
        << result.stats.single_flight_joins << " single-flight joins, "
        << util::format("%.0f", result.stats.simulated_tool_seconds)
        << " simulated tool seconds";
    if (result.stats.deadline_hit) out << ", deadline hit";
    out << ")\n";
    if (!result.stats.backend_runs.empty()) {
      out << "backend runs:";
      for (const auto& [name, runs] : result.stats.backend_runs) {
        out << " " << name << "=" << runs;
      }
      if (result.stats.screened_out > 0) {
        out << " (" << result.stats.screened_out << " screened out, "
            << util::format("%.0f", result.stats.screen_tool_seconds)
            << " screening tool seconds)";
      }
      out << "\n";
    }
    if (options.steady_state) {
      out << "steady state: " << result.stats.steady_completions << " completions, "
          << result.stats.inflight_replayed << " inflight replayed, "
          << util::format("%.1f%%", result.stats.tool_seconds_utilization * 100.0)
          << " lane utilization over " << result.stats.virtual_lanes
          << " lanes\n";
      if (!result.stats.optimizer_name.empty()) {
        out << "optimizer: " << result.stats.optimizer_name << "\n";
        for (const auto& member : result.stats.optimizer_members) {
          out << "  " << member.name << ": " << member.asks << " asks, "
              << member.tells << " tells, "
              << util::format("%.4f", member.hv_gain) << " hv gain, "
              << util::format("%.0f", member.cost_seconds) << " tool seconds, "
              << util::format("%.2f", member.weight) << " weight\n";
        }
      }
    }
    out << "parallel dispatch: " << result.stats.batches << " batches, "
        << result.stats.lease_waits << " lease waits, "
        << result.stats.deadline_skips << " deadline skips, peak batch "
        << util::format("%.0f", result.stats.max_batch_tool_seconds)
        << " tool seconds\n";
    out << "robustness: " << result.stats.retries << " retries, "
        << result.stats.transient_failures << " transient / "
        << result.stats.deterministic_failures << " deterministic / "
        << result.stats.timeouts << " timeout failures, "
        << result.stats.quarantined << " quarantined, "
        << result.stats.approx_fallbacks << " approx fallbacks, "
        << result.stats.journal_replays << " journal replays";
    if (result.stats.journal_skipped_records > 0) {
      out << ", " << result.stats.journal_skipped_records
          << " journal records skipped";
    }
    if (result.stats.faults_injected > 0) {
      out << ", " << result.stats.faults_injected << " faults injected";
    }
    out << "\n";
    if (!options.store_path.empty()) {
      out << "store: " << result.stats.store_hits << " hits, "
          << result.stats.store_appends << " appends, "
          << result.stats.store_seeded_points << " seeded points";
      if (result.stats.store_quarantined_records > 0) {
        out << ", " << result.stats.store_quarantined_records
            << " quarantined records";
      }
      out << "\n";
    }
    if (result.stats.breaker_trips > 0 || result.stats.breaker_fast_fails > 0 ||
        result.stats.degraded_evals > 0) {
      out << "availability: " << result.stats.breaker_trips << " breaker trips / "
          << result.stats.breaker_recoveries << " recoveries, "
          << result.stats.breaker_fast_fails << " fast fails, "
          << result.stats.probe_runs << " probes, "
          << result.stats.degraded_evals << " degraded evals, "
          << result.stats.reverified_points << " re-verified\n";
    }
    out << "\n";
    out << "non-dominated set (" << result.pareto.size() << " points):\n";
    out << core::format_table(result.pareto);

    if (!options.csv_path.empty()) {
      std::ofstream csv(options.csv_path);
      if (!csv) {
        err << "cannot write " << options.csv_path << "\n";
        return 1;
      }
      core::write_csv(csv, result.explored);
      out << "explored points written to " << options.csv_path << "\n";
    }
    if (!options.json_path.empty()) {
      if (!write_file(options.json_path, core::to_json(result), err)) return 1;
      out << "full result written to " << options.json_path << "\n";
    }
    if (!options.session_path.empty()) {
      if (!core::save_session(options.session_path, result.explored)) {
        err << "cannot write session " << options.session_path << "\n";
        return 1;
      }
      out << "session saved to " << options.session_path << "\n";
    }
    const int sig = ScopedSignalHandlers::delivered();
    if (sig != 0) {
      out << "interrupted by " << ScopedSignalHandlers::name(sig)
          << ": the search stopped early; the results above are the partial "
             "front (journal/store/session flushed)\n";
      return kExitInterrupted;
    }
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int run_sensitivity(const Options& options, std::ostream& out, std::ostream& err) {
  try {
    core::DesignSpace space;
    space.params = options.params;
    core::DesignPoint base = core::center_point(space);
    for (const auto& [name, value] : options.assignments) base[name] = value;

    core::SensitivityOptions sens;
    sens.samples_per_param = options.samples_per_param;
    sens.workers = options.workers;
    const core::SensitivityReport report =
        core::analyze_sensitivity(project_from(options), space, base, sens);

    out << "base point:";
    for (const auto& [name, value] : report.base) out << " " << name << "=" << value;
    out << "\n\n";
    out << report.format_table({"lut", "ff", "bram", "fmax_mhz", "power_w"});
    out << "\nmost influential parameter per metric:\n";
    for (const char* metric : {"lut", "fmax_mhz", "power_w"}) {
      const auto ranked = report.ranking(metric);
      if (!ranked.empty()) {
        out << "  " << metric << ": " << ranked.front().first << " ("
            << util::format("%.1f%%", 100.0 * ranked.front().second) << ")\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int run_roofline(const Options& options, std::ostream& out, std::ostream& err) {
  const auto device = fpga::resolve_device(options.part);
  if (!device) {
    err << "unknown part '" << options.part << "'\n";
    return 1;
  }
  const perf::RooflineMachine machine = perf::machine_from_device(*device, options.clock_mhz);
  std::vector<perf::RooflinePoint> points;
  for (const auto& spec : options.kernels) {
    perf::RooflineKernel kernel;
    kernel.name = spec.name;
    kernel.ops = spec.ops;
    kernel.bytes = spec.bytes;
    kernel.achieved_gops = spec.achieved_gops;
    points.push_back(perf::place_kernel(machine, kernel));
  }
  out << perf::render_ascii(machine, points);
  if (!options.csv_path.empty()) {
    if (!write_file(options.csv_path, perf::to_csv(machine, points), err)) return 1;
    out << "roofline data written to " << options.csv_path << "\n";
  }
  return 0;
}

int run_lint(const Options& options, std::ostream& out, std::ostream& err) {
  analysis::RuleSet rules;
  const std::string spec_error = rules.apply_spec(options.lint_rules);
  if (!spec_error.empty()) {
    err << spec_error << "\n";
    return 2;
  }

  analysis::LintReport report;
  const core::ProjectConfig project = project_from(options);
  analysis::lint_project(project, report);

  // Design-space lint only when the user gave a space to judge.
  if (!options.params.empty() || !options.objectives.empty()) {
    core::DseConfig config;
    config.space.params = options.params;
    for (const auto& [metric, maximize] : options.objectives) {
      config.objectives.push_back({metric, maximize});
    }
    config.backend = options.backend;
    config.screen_keep_ratio = options.screen_ratio;
    analysis::lint_dse_config(project, config, options.raw_param_specs, report);
  }

  rules.filter(report);
  out << (options.lint_format == "json" ? analysis::render_json(report)
                                        : analysis::render_text(report));
  return report.exit_code();
}

int run_db(const Options& options, std::ostream& out, std::ostream& err) {
  using store::EvalStore;
  using store::StoreRecord;

  // Record filter shared by query/export: --tier and --backend narrow the
  // live set; no flags means everything.
  auto matches = [&](const StoreRecord& rec) {
    if (!options.db_tier.empty() && rec.tier != options.db_tier) return false;
    if (!options.db_backend.empty() && rec.backend != options.db_backend) return false;
    return true;
  };

  if (options.db_action == "compact") {
    auto opened = EvalStore::open_writer(options.store_path);
    if (!opened.store) {
      err << opened.error << "\n";
      return 1;
    }
    const store::StoreStats before = opened.store->stats();
    std::string error;
    if (!opened.store->compact(error)) {
      err << error << "\n";
      return 1;
    }
    const store::StoreStats after = opened.store->stats();
    out << "compacted " << options.store_path << ": " << before.records
        << " records (" << before.file_bytes << " bytes) -> " << after.records
        << " live records (" << after.file_bytes << " bytes)\n";
    if (before.quarantined > 0 || before.torn_tail) {
      out << "dropped " << before.quarantined << " quarantined region(s)"
          << (before.torn_tail ? " and a torn tail" : "") << "\n";
    }
    return 0;
  }

  // stats/query/export are read-only: a snapshot works even while a live
  // campaign holds the writer lock.
  auto opened = EvalStore::open_reader(options.store_path);
  if (!opened.store) {
    err << opened.error << "\n";
    return 1;
  }
  const EvalStore& db = *opened.store;
  const store::StoreStats stats = db.stats();

  if (options.db_action == "stats") {
    out << options.store_path << ": " << stats.records << " records, "
        << stats.live << " live (latest per design/backend/tier), "
        << stats.file_bytes << " bytes\n";
    if (stats.quarantined > 0 || stats.torn_tail) {
      out << "integrity: " << stats.quarantined << " quarantined corrupt region(s)"
          << (stats.torn_tail ? ", torn tail dropped" : "")
          << " (run 'dovado db compact' to rewrite clean)\n";
    }
    std::map<std::string, std::size_t> by_bucket;
    std::size_t failures = 0;
    double tool_seconds = 0.0;
    for (const auto& rec : db.live_records()) {
      ++by_bucket[rec.backend + "/" + rec.tier];
      if (!rec.ok) ++failures;
      tool_seconds += rec.tool_seconds;
    }
    for (const auto& [bucket, count] : by_bucket) {
      out << "  " << bucket << ": " << count << " live\n";
    }
    out << "banked tool time: " << util::format("%.0f", tool_seconds)
        << " simulated seconds (" << failures << " recorded failures)\n";
    return 0;
  }

  std::vector<StoreRecord> selected;
  for (const auto& rec : db.live_records()) {
    if (matches(rec)) selected.push_back(rec);
  }

  if (options.db_action == "query") {
    std::vector<core::ExploredPoint> points;
    for (const auto& rec : selected) {
      core::ExploredPoint p;
      p.params = rec.params;
      p.metrics.values = rec.metrics;
      p.failed = !rec.ok;
      p.approximate = rec.approximate;
      points.push_back(std::move(p));
    }
    out << selected.size() << " live record(s)";
    if (!options.db_tier.empty()) out << ", tier " << options.db_tier;
    if (!options.db_backend.empty()) out << ", backend " << options.db_backend;
    out << ":\n";
    out << core::format_table(points);
    return 0;
  }

  // export: the full record set as JSON (machine-readable) or CSV.
  util::JsonArray records;
  for (const auto& rec : selected) {
    util::JsonObject obj;
    util::JsonObject params;
    for (const auto& [name, value] : rec.params) {
      params[name] = util::Json(static_cast<std::int64_t>(value));
    }
    obj["params"] = util::Json(std::move(params));
    obj["backend"] = util::Json(rec.backend);
    obj["tier"] = util::Json(rec.tier);
    if (!rec.campaign.empty()) obj["campaign"] = util::Json(rec.campaign);
    util::JsonObject metrics;
    for (const auto& [name, value] : rec.metrics) metrics[name] = util::Json(value);
    obj["metrics"] = util::Json(std::move(metrics));
    obj["ok"] = util::Json(rec.ok);
    if (rec.failure != "none") obj["failure"] = util::Json(rec.failure);
    if (rec.approximate) obj["approximate"] = util::Json(true);
    if (rec.quarantined) obj["quarantined"] = util::Json(true);
    obj["tool_seconds"] = util::Json(rec.tool_seconds);
    obj["timestamp"] = util::Json(static_cast<std::int64_t>(rec.timestamp));
    records.push_back(util::Json(std::move(obj)));
  }
  util::JsonObject root;
  root["store"] = util::Json(options.store_path);
  root["records"] = util::Json(std::move(records));
  const std::string json = util::Json(std::move(root)).dump(2) + "\n";

  if (!options.csv_path.empty()) {
    std::vector<core::ExploredPoint> points;
    for (const auto& rec : selected) {
      core::ExploredPoint p;
      p.params = rec.params;
      p.metrics.values = rec.metrics;
      p.failed = !rec.ok;
      points.push_back(std::move(p));
    }
    std::ofstream csv(options.csv_path);
    if (!csv) {
      err << "cannot write " << options.csv_path << "\n";
      return 1;
    }
    core::write_csv(csv, points);
    out << selected.size() << " record(s) written to " << options.csv_path << "\n";
    return 0;
  }
  if (!options.json_path.empty()) {
    if (!write_file(options.json_path, json, err)) return 1;
    out << selected.size() << " record(s) written to " << options.json_path << "\n";
    return 0;
  }
  out << json;
  return 0;
}

int run_serve(const Options& options, std::ostream& out, std::ostream& err) {
  try {
    serve::ServeConfig config;
    config.socket_path = options.socket_path;
    config.project = project_from(options);
    config.broker.workers = options.workers;
    config.broker.supervise.max_retries = options.max_retries;
    config.broker.supervise.attempt_timeout_tool_seconds = options.attempt_timeout;
    config.broker.supervise.seed = options.seed;
    {
      std::string spec = options.fault_plan;
      if (spec.empty()) {
        const char* env = std::getenv("DOVADO_FAULT_PLAN");
        if (env != nullptr) spec = env;
      }
      if (!spec.empty()) {
        std::string error;
        const auto plan = edatool::FaultPlan::parse(spec, error);
        if (!plan) {
          err << "invalid fault plan '" << spec << "': " << error << "\n";
          return 1;
        }
        config.broker.fault_plan = *plan;
      }
    }
    config.broker.journal_path = options.journal_path;
    // A daemon restart must replay its own journal: every answer acked
    // before the restart is served from cache afterwards.
    config.broker.resume_from_journal = !options.journal_path.empty();
    if (!options.store_path.empty()) {
      config.broker.store = open_store_or_throw(options.store_path);
    }
    config.broker.campaign_id =
        options.campaign_id.empty() ? "serve" : options.campaign_id;
    config.breaker.enabled = options.breaker;
    config.breaker.window = options.breaker_window;
    config.breaker.failure_threshold = options.breaker_threshold;
    config.breaker.probe_budget = options.probe_budget;
    config.breaker.seed = options.seed;
    config.max_inflight = options.max_inflight;
    config.max_connections = options.max_connections;
    config.default_deadline_tool_seconds = options.deadline_tool_seconds;
    for (const ServeTenantSpec& spec : options.serve_tenants) {
      serve::ServeTenantConfig tenant;
      tenant.name = spec.name;
      tenant.policy.weight = spec.weight;
      tenant.policy.queue_cap = spec.queue_cap;
      tenant.policy.request_rate = spec.request_rate;
      tenant.policy.request_burst = spec.request_burst;
      tenant.policy.tool_seconds_rate = spec.tool_seconds_rate;
      tenant.policy.tool_seconds_burst = spec.tool_seconds_burst;
      config.tenants.push_back(std::move(tenant));
    }

    serve::Server server(std::move(config));
    std::string error;
    if (!server.start(error)) {
      err << "dovado serve: " << error << "\n";
      return 1;
    }
    out << "dovado serve: listening on " << options.socket_path << " ("
        << options.serve_tenants.size()
        << " pinned tenant(s); SIGTERM drains gracefully)\n";
    out.flush();

    ScopedSignalHandlers signals;
    while (ScopedSignalHandlers::delivered() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int sig = ScopedSignalHandlers::delivered();
    out << "dovado serve: received " << ScopedSignalHandlers::name(sig)
        << "; draining (in-flight evaluations finish, queued work is shed)\n";
    out.flush();
    server.drain();
    server.wait();

    const serve::ServerStats stats = server.stats();
    out << "dovado serve: drained; " << stats.requests << " requests, "
        << stats.shed << " shed, " << stats.campaigns_finished
        << " campaigns finished\n";
    for (const serve::ServerTenantStats& tenant : stats.tenants) {
      out << "  " << tenant.name << ": weight "
          << util::format("%.0f", tenant.queue.weight) << ", "
          << tenant.completed << " ok / " << tenant.failed << " failed, shed "
          << tenant.admission.shed_request_rate << " rate / "
          << tenant.admission.shed_tool_quota << " quota / "
          << tenant.queue.shed_queue_full << " queue, "
          << util::format("%.1f", tenant.admission.tool_seconds_charged)
          << " tool seconds\n";
    }
    return 0;
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 1;
  }
}

int run_client(const Options& options, std::ostream& out, std::ostream& err) {
  serve::Client client;
  std::string error;
  if (!client.connect(options.socket_path, error)) {
    err << "dovado client: " << error << "\n";
    return 2;
  }
  if (options.assignments.empty()) {
    if (!client.ping(error)) {
      err << "dovado client: " << error << "\n";
      return 2;
    }
    out << "pong\n";
    return 0;
  }
  serve::Response response;
  if (!client.eval(options.tenant, options.assignments,
                   options.deadline_tool_seconds, response, error)) {
    err << "dovado client: " << error << "\n";
    return 2;
  }
  switch (response.status) {
    case serve::ResponseStatus::kOk: {
      for (const auto& [name, value] : response.metrics) {
        out << name << " = " << util::format("%g", value) << "\n";
      }
      out << "tool seconds: " << util::format("%.1f", response.tool_seconds);
      if (response.cache_hit) out << " (cache hit)";
      if (response.store_hit) out << " (store hit)";
      out << "\n";
      return 0;
    }
    case serve::ResponseStatus::kFailed:
      err << "evaluation failed: " << response.error << "\n";
      return 1;
    case serve::ResponseStatus::kShed:
      err << "shed (" << response.reason << "); retry after "
          << response.retry_after_ms << " ms\n";
      return 4;
    case serve::ResponseStatus::kDraining:
      err << "daemon is draining; resubmit after it restarts\n";
      return 4;
    case serve::ResponseStatus::kError:
      err << "request rejected: " << response.error << "\n";
      return 2;
  }
  return 2;
}

int run_top(const Options& options, std::ostream& out, std::ostream& err) {
  serve::Client client;
  std::string error;
  if (!client.connect(options.socket_path, error)) {
    err << "dovado top: " << error << "\n";
    return 2;
  }
  std::string stats_json;
  if (!client.stats(stats_json, error)) {
    err << "dovado top: " << error << "\n";
    return 2;
  }
  util::Json parsed;
  if (util::Json::parse(stats_json, parsed)) {
    out << parsed.dump(2) << "\n";
  } else {
    out << stats_json << "\n";
  }
  return 0;
}

int run(const Options& options, std::ostream& out, std::ostream& err) {
  switch (options.command) {
    case Command::kHelp:
      out << usage();
      return 0;
    case Command::kParse:
      return run_parse(options, out, err);
    case Command::kEvaluate:
      return run_evaluate(options, out, err);
    case Command::kExplore:
      return run_explore(options, out, err);
    case Command::kSensitivity:
      return run_sensitivity(options, out, err);
    case Command::kRoofline:
      return run_roofline(options, out, err);
    case Command::kLint:
      return run_lint(options, out, err);
    case Command::kDb:
      return run_db(options, out, err);
    case Command::kServe:
      return run_serve(options, out, err);
    case Command::kClient:
      return run_client(options, out, err);
    case Command::kTop:
      return run_top(options, out, err);
  }
  return 1;
}

}  // namespace dovado::cli
