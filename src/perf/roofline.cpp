#include "src/perf/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/csv.hpp"
#include "src/util/strings.hpp"

namespace dovado::perf {

RooflineMachine machine_from_device(const fpga::Device& device, double clock_mhz) {
  RooflineMachine machine;
  machine.label = util::format("%s @ %.0f MHz", device.display_name.c_str(), clock_mhz);
  const double cycles_per_s = clock_mhz * 1e6;
  const double dsp_ops = static_cast<double>(device.resources.dsp) * 2.0;
  const double fabric_ops = static_cast<double>(device.resources.lut) / 64.0;
  machine.peak_gops = (dsp_ops + fabric_ops) * cycles_per_s / 1e9;
  const double bram_bytes = static_cast<double>(device.resources.bram36) * 8.0;
  const double uram_bytes = static_cast<double>(device.resources.uram) * 16.0;
  machine.peak_gbytes_s = (bram_bytes + uram_bytes) * cycles_per_s / 1e9;
  return machine;
}

double attainable_gops(const RooflineMachine& machine, double intensity) {
  if (intensity <= 0.0) return 0.0;
  return std::min(machine.peak_gops, intensity * machine.peak_gbytes_s);
}

RooflinePoint place_kernel(const RooflineMachine& machine, const RooflineKernel& kernel) {
  RooflinePoint point;
  point.name = kernel.name;
  point.intensity = kernel.bytes > 0.0 ? kernel.ops / kernel.bytes : 0.0;
  point.attainable_gops = attainable_gops(machine, point.intensity);
  point.achieved_gops = kernel.achieved_gops;
  point.memory_bound = point.intensity < machine.ridge_intensity();
  return point;
}

namespace {

/// Log-scale mapping helpers for the ASCII chart.
struct LogAxis {
  double lo;
  double hi;
  int cells;

  [[nodiscard]] int cell(double v) const {
    const double clamped = std::clamp(v, lo, hi);
    const double t = (std::log10(clamped) - std::log10(lo)) /
                     (std::log10(hi) - std::log10(lo));
    return std::clamp(static_cast<int>(std::lround(t * (cells - 1))), 0, cells - 1);
  }
};

}  // namespace

std::string render_ascii(const RooflineMachine& machine,
                         const std::vector<RooflinePoint>& points, int width,
                         int height) {
  width = std::max(width, 24);
  height = std::max(height, 8);

  // Intensity axis spans two decades around the ridge and covers all points.
  const double ridge = std::max(machine.ridge_intensity(), 1e-3);
  double x_lo = ridge / 16.0;
  double x_hi = ridge * 16.0;
  double y_hi = machine.peak_gops * 2.0;
  double y_lo = attainable_gops(machine, x_lo) / 8.0;
  for (const auto& p : points) {
    if (p.intensity > 0.0) {
      x_lo = std::min(x_lo, p.intensity / 2.0);
      x_hi = std::max(x_hi, p.intensity * 2.0);
    }
    if (p.achieved_gops > 0.0) y_lo = std::min(y_lo, p.achieved_gops / 2.0);
  }
  y_lo = std::max(y_lo, 1e-6);

  const LogAxis xaxis{x_lo, x_hi, width};
  const LogAxis yaxis{y_lo, y_hi, height};

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto plot = [&](double x, double y, char mark) {
    const int col = xaxis.cell(x);
    const int row = height - 1 - yaxis.cell(y);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
  };

  // The roof itself.
  for (int c = 0; c < width; ++c) {
    const double t = static_cast<double>(c) / (width - 1);
    const double x = std::pow(10.0, std::log10(x_lo) + t * (std::log10(x_hi) - std::log10(x_lo)));
    plot(x, attainable_gops(machine, x), '-');
  }
  // Kernels: roof position 'o', achieved performance '*'.
  for (const auto& p : points) {
    if (p.intensity <= 0.0) continue;
    plot(p.intensity, p.attainable_gops, 'o');
    if (p.achieved_gops > 0.0) plot(p.intensity, p.achieved_gops, '*');
  }

  std::ostringstream out;
  out << "Roofline: " << machine.label << "  (peak " << util::format("%.1f", machine.peak_gops)
      << " Gops/s, " << util::format("%.1f", machine.peak_gbytes_s) << " GB/s, ridge "
      << util::format("%.2f", machine.ridge_intensity()) << " ops/byte)\n";
  out << "Gops/s (log)\n";
  for (const auto& row : grid) out << "  |" << row << "\n";
  out << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  out << "   " << util::format("%-10.3g", x_lo)
      << std::string(static_cast<std::size_t>(std::max(0, width - 20)), ' ')
      << util::format("%10.3g", x_hi) << "  ops/byte (log)\n";
  for (const auto& p : points) {
    out << "  " << (p.memory_bound ? "[mem]" : "[cmp]") << " " << p.name << ": "
        << util::format("%.3g ops/byte, roof %.2f Gops/s", p.intensity, p.attainable_gops);
    if (p.achieved_gops > 0.0) {
      out << util::format(", achieved %.2f (%.0f%% of roof)", p.achieved_gops,
                          100.0 * p.efficiency());
    }
    out << "\n";
  }
  return out.str();
}

std::string to_csv(const RooflineMachine& machine,
                   const std::vector<RooflinePoint>& points) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.row({"kind", "name", "intensity_ops_per_byte", "gops"});
  // Sample the roof at 32 log-spaced intensities for plotting.
  const double ridge = std::max(machine.ridge_intensity(), 1e-3);
  const double lo = ridge / 32.0;
  const double hi = ridge * 32.0;
  for (int i = 0; i < 32; ++i) {
    const double t = static_cast<double>(i) / 31.0;
    const double x = std::pow(10.0, std::log10(lo) + t * (std::log10(hi) - std::log10(lo)));
    writer.row({"roof", machine.label, util::format("%.6g", x),
                util::format("%.6g", attainable_gops(machine, x))});
  }
  for (const auto& p : points) {
    writer.row({"kernel", p.name, util::format("%.6g", p.intensity),
                util::format("%.6g", p.achieved_gops > 0.0 ? p.achieved_gops
                                                           : p.attainable_gops)});
  }
  return out.str();
}

}  // namespace dovado::perf
