// Roofline visual performance model for FPGA designs.
//
// The paper lists adding "a visual performance model (e.g., Roofline [19])"
// as future work for Dovado; this module implements it on top of the device
// catalog. A machine model (compute ceiling + memory-bandwidth ceiling) is
// derived from a device and a clock, kernels are placed on the roofline by
// their operational intensity, and the chart renders as ASCII (log-log) or
// CSV for external plotting.
#pragma once

#include <string>
#include <vector>

#include "src/fpga/device.hpp"

namespace dovado::perf {

/// Compute/memory ceilings of a device at a given clock.
struct RooflineMachine {
  std::string label;
  double peak_gops = 0.0;      ///< compute ceiling, giga-ops/s
  double peak_gbytes_s = 0.0;  ///< on-chip memory bandwidth ceiling, GB/s

  /// Operational intensity (ops/byte) where the two ceilings meet.
  [[nodiscard]] double ridge_intensity() const {
    return peak_gbytes_s > 0.0 ? peak_gops / peak_gbytes_s : 0.0;
  }
};

/// Derive the machine model from a device at `clock_mhz`:
///   - compute ceiling: each DSP contributes one MAC (2 ops) per cycle and
///     the LUT fabric one extra op per 64 LUTs per cycle,
///   - bandwidth ceiling: every BRAM36 moves up to 8 bytes per cycle
///     (dual 36-bit ports), URAM 16 bytes.
[[nodiscard]] RooflineMachine machine_from_device(const fpga::Device& device,
                                                  double clock_mhz);

/// A kernel (or design point) characterized by its work per invocation.
struct RooflineKernel {
  std::string name;
  double ops = 0.0;    ///< operations per invocation
  double bytes = 0.0;  ///< bytes moved per invocation
  double achieved_gops = 0.0;  ///< measured performance; 0 = unknown
};

/// A kernel placed on the roofline.
struct RooflinePoint {
  std::string name;
  double intensity = 0.0;        ///< ops/byte
  double attainable_gops = 0.0;  ///< roof at this intensity
  double achieved_gops = 0.0;    ///< 0 when unmeasured
  bool memory_bound = false;     ///< left of the ridge point

  /// Fraction of the roof actually achieved (0 when unmeasured).
  [[nodiscard]] double efficiency() const {
    return attainable_gops > 0.0 ? achieved_gops / attainable_gops : 0.0;
  }
};

/// Roof height at a given operational intensity:
/// min(peak_gops, intensity * peak_gbytes_s).
[[nodiscard]] double attainable_gops(const RooflineMachine& machine, double intensity);

/// Place a kernel on the roofline.
[[nodiscard]] RooflinePoint place_kernel(const RooflineMachine& machine,
                                         const RooflineKernel& kernel);

/// Render a log-log ASCII roofline chart with the kernels marked.
[[nodiscard]] std::string render_ascii(const RooflineMachine& machine,
                                       const std::vector<RooflinePoint>& points,
                                       int width = 72, int height = 20);

/// CSV of the roof line plus the kernel points (for external plotting).
[[nodiscard]] std::string to_csv(const RooflineMachine& machine,
                                 const std::vector<RooflinePoint>& points);

}  // namespace dovado::perf
