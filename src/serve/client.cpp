#include "src/serve/client.hpp"

#include <utility>

#include "src/util/strings.hpp"

namespace dovado::serve {

bool Client::connect(const std::string& socket_path, std::string& error) {
  sock_ = util::connect_unix(socket_path, error);
  return sock_.valid();
}

bool Client::request(Request request, Response& response, std::string& error,
                     int timeout_ms) {
  if (!sock_.valid()) {
    error = "client is not connected";
    return false;
  }
  if (request.id.empty()) {
    request.id = util::format("q%llu",
                              static_cast<unsigned long long>(next_id_++));
  }
  if (!sock_.write_line(serialize_request(request), timeout_ms)) {
    error = "failed to send request (daemon gone?)";
    return false;
  }
  std::string line;
  for (;;) {
    bool timed_out = false;
    if (!sock_.read_line(line, timeout_ms, &timed_out)) {
      error = timed_out ? "timed out waiting for the daemon's response"
                        : "connection closed before the response arrived";
      return false;
    }
    if (!parse_response(line, response, error)) return false;
    // Error replies to malformed frames carry no id; everything else must
    // echo ours. Stale ids (from an abandoned earlier request) are skipped.
    if (response.id == request.id || response.id.empty()) return true;
  }
}

bool Client::ping(std::string& error, int timeout_ms) {
  Request request;
  request.op = RequestOp::kPing;
  Response response;
  if (!this->request(std::move(request), response, error, timeout_ms)) return false;
  if (response.status != ResponseStatus::kOk) {
    error = "ping answered with status " + response_status_name(response.status);
    return false;
  }
  return true;
}

bool Client::eval(const std::string& tenant, const core::DesignPoint& point,
                  double deadline_tool_seconds, Response& response,
                  std::string& error, int timeout_ms) {
  Request request;
  request.op = RequestOp::kEval;
  request.tenant = tenant;
  request.point = point;
  request.deadline_tool_seconds = deadline_tool_seconds;
  return this->request(std::move(request), response, error, timeout_ms);
}

bool Client::stats(std::string& stats_json, std::string& error, int timeout_ms) {
  Request request;
  request.op = RequestOp::kStats;
  Response response;
  if (!this->request(std::move(request), response, error, timeout_ms)) return false;
  if (response.status != ResponseStatus::kOk) {
    error = "stats answered with status " + response_status_name(response.status);
    return false;
  }
  stats_json = std::move(response.stats_json);
  return true;
}

}  // namespace dovado::serve
