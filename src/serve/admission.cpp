#include "src/serve/admission.hpp"

#include <algorithm>
#include <cmath>

namespace dovado::serve {

namespace {
constexpr double kUnreachableSeconds = 3600.0;  ///< rate 0 => "come back in an hour"

std::int64_t to_retry_ms(double seconds) {
  // Round up and floor at 1ms so a shed reply never says "retry now".
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(seconds * 1000.0)));
}
}  // namespace

void TokenBucket::refill(double now) {
  if (now > last_) {
    level_ = std::min(burst_, level_ + rate_ * (now - last_));
  }
  last_ = std::max(last_, now);
}

bool TokenBucket::try_take(double amount, double now) {
  refill(now);
  if (level_ < amount) return false;
  level_ -= amount;
  return true;
}

void TokenBucket::charge(double amount, double now) {
  refill(now);
  level_ -= amount;
}

double TokenBucket::seconds_until(double target, double now) const {
  TokenBucket copy = *this;
  copy.refill(now);
  if (copy.level_ >= target) return 0.0;
  if (rate_ <= 0.0) return kUnreachableSeconds;
  return (target - copy.level_) / rate_;
}

double TokenBucket::level(double now) const {
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.level_;
}

void AdmissionController::set_policy(const std::string& tenant,
                                     const TenantPolicy& policy, double now) {
  TenantState state;
  state.policy = policy;
  const double request_burst = policy.request_burst > 0.0
                                   ? policy.request_burst
                                   : std::max(1.0, policy.request_rate);
  state.requests = TokenBucket(policy.request_rate, request_burst, now);
  const double quota_burst = policy.tool_seconds_burst > 0.0
                                 ? policy.tool_seconds_burst
                                 : std::max(1.0, 10.0 * policy.tool_seconds_rate);
  state.tool_seconds = TokenBucket(policy.tool_seconds_rate, quota_burst, now);
  tenants_[tenant] = std::move(state);
}

const TenantPolicy& AdmissionController::policy(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? default_policy_ : it->second.policy;
}

AdmissionController::TenantState& AdmissionController::state_for(
    const std::string& tenant, double now) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  set_policy(tenant, default_policy_, now);
  return tenants_[tenant];
}

AdmissionDecision AdmissionController::admit(const std::string& tenant, double now) {
  TenantState& state = state_for(tenant, now);
  AdmissionDecision decision;
  // Quota first: a quota-exhausted tenant should not burn request tokens on
  // requests that cannot run anyway. Post-paid, so "has quota" means the
  // bucket is above zero, not that it covers the (unknown) cost.
  if (state.policy.tool_seconds_rate > 0.0 &&
      state.tool_seconds.level(now) <= 0.0) {
    ++state.stats.shed_tool_quota;
    decision.reason = "tool_quota";
    // Ask the tenant back once a meaningful slice of quota (one refill
    // second's worth, at least) is available again, not the instant the
    // level crosses zero by epsilon.
    const double target = std::min(state.policy.tool_seconds_rate,
                                   state.tool_seconds.rate() > 0.0
                                       ? state.policy.tool_seconds_rate
                                       : 1.0);
    decision.retry_after_ms =
        to_retry_ms(state.tool_seconds.seconds_until(std::max(target, 1e-9), now));
    return decision;
  }
  if (state.policy.request_rate > 0.0 && !state.requests.try_take(1.0, now)) {
    ++state.stats.shed_request_rate;
    decision.reason = "request_rate";
    decision.retry_after_ms = to_retry_ms(state.requests.seconds_until(1.0, now));
    return decision;
  }
  ++state.stats.admitted;
  decision.admitted = true;
  return decision;
}

void AdmissionController::charge_tool_seconds(const std::string& tenant,
                                              double seconds, double now) {
  TenantState& state = state_for(tenant, now);
  if (state.policy.tool_seconds_rate > 0.0) {
    state.tool_seconds.charge(seconds, now);
  }
  state.stats.tool_seconds_charged += seconds;
}

std::map<std::string, TenantAdmissionStats> AdmissionController::stats() const {
  std::map<std::string, TenantAdmissionStats> out;
  for (const auto& [name, state] : tenants_) out[name] = state.stats;
  return out;
}

}  // namespace dovado::serve
