#include "src/serve/protocol.hpp"

#include <cmath>

#include "src/util/json.hpp"

namespace dovado::serve {
namespace {

using util::Json;
using util::JsonArray;
using util::JsonObject;

const Json* find(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

bool get_string(const JsonObject& obj, const std::string& key, std::string& out) {
  const Json* v = find(obj, key);
  if (v == nullptr || !v->is_string()) return false;
  out = v->as_string();
  return true;
}

bool get_number(const JsonObject& obj, const std::string& key, double& out) {
  const Json* v = find(obj, key);
  if (v == nullptr || !v->is_number()) return false;
  out = v->as_number();
  return true;
}

std::int64_t to_int(double d) { return static_cast<std::int64_t>(std::llround(d)); }

Json point_to_json(const core::DesignPoint& point) {
  JsonObject obj;
  for (const auto& [name, value] : point) obj[name] = Json(value);
  return Json(std::move(obj));
}

bool point_from_json(const Json& json, core::DesignPoint& out, std::string& error) {
  if (!json.is_object()) {
    error = "'point' must be an object of parameter -> integer value";
    return false;
  }
  out.clear();
  for (const auto& [name, value] : json.as_object()) {
    if (!value.is_number()) {
      error = "parameter '" + name + "' must be a number";
      return false;
    }
    out[name] = to_int(value.as_number());
  }
  return true;
}

Json domain_to_json(const core::ParamSpec& spec) {
  JsonObject obj;
  obj["name"] = Json(spec.name);
  if (spec.domain.kind() == core::ParamDomain::Kind::kRange) {
    obj["kind"] = Json("range");
    obj["lo"] = Json(spec.domain.range_lo());
    obj["hi"] = Json(spec.domain.range_hi());
    obj["step"] = Json(spec.domain.range_step());
  } else {
    // Value lists and power-of-two domains both travel as their explicit
    // value list (the powers are the values).
    obj["kind"] = Json("values");
    JsonArray values;
    for (std::int64_t i = 0; i < spec.domain.size(); ++i) {
      values.emplace_back(spec.domain.value_at(i));
    }
    obj["values"] = Json(std::move(values));
  }
  return Json(std::move(obj));
}

bool domain_from_json(const Json& json, core::ParamSpec& out, std::string& error) {
  if (!json.is_object()) {
    error = "each 'space' entry must be an object";
    return false;
  }
  const JsonObject& obj = json.as_object();
  if (!get_string(obj, "name", out.name) || out.name.empty()) {
    error = "space entry is missing a 'name'";
    return false;
  }
  std::string kind;
  (void)get_string(obj, "kind", kind);
  if (kind == "range" || kind.empty()) {
    double lo = 0.0;
    double hi = 0.0;
    double step = 1.0;
    if (!get_number(obj, "lo", lo) || !get_number(obj, "hi", hi)) {
      error = "range parameter '" + out.name + "' needs numeric 'lo' and 'hi'";
      return false;
    }
    (void)get_number(obj, "step", step);
    if (to_int(step) <= 0 || to_int(hi) < to_int(lo)) {
      error = "range parameter '" + out.name + "' has an empty or invalid range";
      return false;
    }
    out.domain = core::ParamDomain::range(to_int(lo), to_int(hi), to_int(step));
    return true;
  }
  if (kind == "values") {
    const Json* values = find(obj, "values");
    if (values == nullptr || !values->is_array() || values->as_array().empty()) {
      error = "values parameter '" + out.name + "' needs a non-empty 'values' array";
      return false;
    }
    std::vector<std::int64_t> list;
    for (const Json& v : values->as_array()) {
      if (!v.is_number()) {
        error = "values of parameter '" + out.name + "' must be numbers";
        return false;
      }
      list.push_back(to_int(v.as_number()));
    }
    out.domain = core::ParamDomain::values(std::move(list));
    return true;
  }
  error = "unknown domain kind '" + kind + "' for parameter '" + out.name +
          "' (expected 'range' or 'values')";
  return false;
}

Json metrics_to_json(const std::map<std::string, double>& metrics) {
  JsonObject obj;
  for (const auto& [name, value] : metrics) obj[name] = Json(value);
  return Json(std::move(obj));
}

bool metrics_from_json(const Json& json, std::map<std::string, double>& out) {
  if (!json.is_object()) return false;
  out.clear();
  for (const auto& [name, value] : json.as_object()) {
    if (!value.is_number()) return false;
    out[name] = value.as_number();
  }
  return true;
}

}  // namespace

std::string request_op_name(RequestOp op) {
  switch (op) {
    case RequestOp::kEval: return "eval";
    case RequestOp::kCampaign: return "campaign";
    case RequestOp::kStats: return "stats";
    case RequestOp::kPing: return "ping";
  }
  return "ping";
}

std::string response_status_name(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kFailed: return "failed";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kDraining: return "draining";
    case ResponseStatus::kError: return "error";
  }
  return "error";
}

std::string serialize_request(const Request& request) {
  JsonObject obj;
  obj["op"] = Json(request_op_name(request.op));
  if (!request.tenant.empty()) obj["tenant"] = Json(request.tenant);
  if (!request.id.empty()) obj["id"] = Json(request.id);
  if (request.op == RequestOp::kEval) {
    obj["point"] = point_to_json(request.point);
    if (request.deadline_tool_seconds > 0.0) {
      obj["deadline_tool_seconds"] = Json(request.deadline_tool_seconds);
    }
  } else if (request.op == RequestOp::kCampaign) {
    JsonArray space;
    for (const auto& spec : request.campaign.space.params) {
      space.push_back(domain_to_json(spec));
    }
    obj["space"] = Json(std::move(space));
    JsonArray objectives;
    for (const auto& objective : request.campaign.objectives) {
      JsonObject o;
      o["metric"] = Json(objective.metric);
      if (objective.maximize) o["maximize"] = Json(true);
      objectives.push_back(Json(std::move(o)));
    }
    obj["objectives"] = Json(std::move(objectives));
    obj["budget"] = Json(request.campaign.budget);
    obj["optimizer"] = Json(request.campaign.optimizer);
    obj["population"] = Json(request.campaign.population);
    obj["seed"] = Json(static_cast<double>(request.campaign.seed));
  }
  return Json(std::move(obj)).dump();
}

bool parse_request(const std::string& line, Request& out, std::string& error) {
  Json json;
  if (!Json::parse(line, json) || !json.is_object()) {
    error = "malformed request frame (not a JSON object)";
    return false;
  }
  const JsonObject& obj = json.as_object();
  std::string op;
  if (!get_string(obj, "op", op)) {
    error = "request is missing 'op'";
    return false;
  }
  out = Request{};
  (void)get_string(obj, "tenant", out.tenant);
  (void)get_string(obj, "id", out.id);
  if (op == "ping") {
    out.op = RequestOp::kPing;
    return true;
  }
  if (op == "stats") {
    out.op = RequestOp::kStats;
    return true;
  }
  if (op == "eval") {
    out.op = RequestOp::kEval;
    const Json* point = find(obj, "point");
    if (point == nullptr) {
      error = "eval request is missing 'point'";
      return false;
    }
    if (!point_from_json(*point, out.point, error)) return false;
    if (out.point.empty()) {
      error = "eval request has an empty 'point'";
      return false;
    }
    (void)get_number(obj, "deadline_tool_seconds", out.deadline_tool_seconds);
    if (out.deadline_tool_seconds < 0.0) {
      error = "'deadline_tool_seconds' must be >= 0";
      return false;
    }
    return true;
  }
  if (op == "campaign") {
    out.op = RequestOp::kCampaign;
    const Json* space = find(obj, "space");
    if (space == nullptr || !space->is_array() || space->as_array().empty()) {
      error = "campaign request needs a non-empty 'space' array";
      return false;
    }
    for (const Json& entry : space->as_array()) {
      // ParamDomain has no default constructor; start from a placeholder
      // domain that domain_from_json() always overwrites.
      core::ParamSpec spec{std::string(), core::ParamDomain::boolean()};
      if (!domain_from_json(entry, spec, error)) return false;
      out.campaign.space.params.push_back(std::move(spec));
    }
    const Json* objectives = find(obj, "objectives");
    if (objectives == nullptr || !objectives->is_array() ||
        objectives->as_array().empty()) {
      error = "campaign request needs a non-empty 'objectives' array";
      return false;
    }
    for (const Json& entry : objectives->as_array()) {
      if (!entry.is_object()) {
        error = "each objective must be an object with a 'metric'";
        return false;
      }
      core::Objective objective;
      if (!get_string(entry.as_object(), "metric", objective.metric) ||
          objective.metric.empty()) {
        error = "each objective needs a non-empty 'metric'";
        return false;
      }
      const Json* maximize = find(entry.as_object(), "maximize");
      objective.maximize = maximize != nullptr && maximize->is_bool() &&
                           maximize->as_bool();
      out.campaign.objectives.push_back(std::move(objective));
    }
    double budget = 0.0;
    if (!get_number(obj, "budget", budget) || to_int(budget) <= 0) {
      error = "campaign request needs a positive 'budget'";
      return false;
    }
    out.campaign.budget = static_cast<std::size_t>(to_int(budget));
    (void)get_string(obj, "optimizer", out.campaign.optimizer);
    double population = static_cast<double>(out.campaign.population);
    (void)get_number(obj, "population", population);
    if (to_int(population) <= 0) {
      error = "'population' must be positive";
      return false;
    }
    out.campaign.population = static_cast<std::size_t>(to_int(population));
    double seed = static_cast<double>(out.campaign.seed);
    (void)get_number(obj, "seed", seed);
    out.campaign.seed = static_cast<std::uint64_t>(to_int(seed));
    return true;
  }
  error = "unknown op '" + op + "' (expected eval, campaign, stats, or ping)";
  return false;
}

std::string serialize_response(const Response& response) {
  JsonObject obj;
  obj["status"] = Json(response_status_name(response.status));
  if (!response.id.empty()) obj["id"] = Json(response.id);
  switch (response.status) {
    case ResponseStatus::kOk:
      if (!response.metrics.empty()) obj["metrics"] = metrics_to_json(response.metrics);
      if (response.tool_seconds > 0.0) obj["tool_seconds"] = Json(response.tool_seconds);
      if (response.cache_hit) obj["cache_hit"] = Json(true);
      if (response.store_hit) obj["store_hit"] = Json(true);
      if (response.attempts > 0) obj["attempts"] = Json(response.attempts);
      if (!response.front.empty() || response.evaluations > 0) {
        JsonArray front;
        for (const auto& entry : response.front) {
          JsonObject e;
          e["point"] = point_to_json(entry.point);
          e["objectives"] = metrics_to_json(entry.objectives);
          front.push_back(Json(std::move(e)));
        }
        obj["front"] = Json(std::move(front));
        obj["evaluations"] = Json(response.evaluations);
      }
      if (!response.stats_json.empty()) {
        Json stats;
        if (Json::parse(response.stats_json, stats)) obj["stats"] = std::move(stats);
      }
      break;
    case ResponseStatus::kFailed:
      obj["error"] = Json(response.error);
      if (response.tool_seconds > 0.0) obj["tool_seconds"] = Json(response.tool_seconds);
      if (response.attempts > 0) obj["attempts"] = Json(response.attempts);
      break;
    case ResponseStatus::kShed:
      obj["retry_after_ms"] = Json(static_cast<double>(response.retry_after_ms));
      obj["reason"] = Json(response.reason);
      break;
    case ResponseStatus::kDraining:
      break;
    case ResponseStatus::kError:
      obj["message"] = Json(response.error);
      break;
  }
  return Json(std::move(obj)).dump();
}

bool parse_response(const std::string& line, Response& out, std::string& error) {
  Json json;
  if (!Json::parse(line, json) || !json.is_object()) {
    error = "malformed response frame (not a JSON object)";
    return false;
  }
  const JsonObject& obj = json.as_object();
  std::string status;
  if (!get_string(obj, "status", status)) {
    error = "response is missing 'status'";
    return false;
  }
  out = Response{};
  (void)get_string(obj, "id", out.id);
  if (status == "ok") {
    out.status = ResponseStatus::kOk;
  } else if (status == "failed") {
    out.status = ResponseStatus::kFailed;
  } else if (status == "shed") {
    out.status = ResponseStatus::kShed;
  } else if (status == "draining") {
    out.status = ResponseStatus::kDraining;
  } else if (status == "error") {
    out.status = ResponseStatus::kError;
  } else {
    error = "unknown response status '" + status + "'";
    return false;
  }
  if (const Json* metrics = find(obj, "metrics")) {
    if (!metrics_from_json(*metrics, out.metrics)) {
      error = "'metrics' must be an object of metric -> number";
      return false;
    }
  }
  (void)get_number(obj, "tool_seconds", out.tool_seconds);
  if (const Json* v = find(obj, "cache_hit")) out.cache_hit = v->is_bool() && v->as_bool();
  if (const Json* v = find(obj, "store_hit")) out.store_hit = v->is_bool() && v->as_bool();
  double attempts = 0.0;
  if (get_number(obj, "attempts", attempts)) out.attempts = static_cast<int>(attempts);
  (void)get_string(obj, "error", out.error);
  if (out.status == ResponseStatus::kError) (void)get_string(obj, "message", out.error);
  double retry_after = 0.0;
  if (get_number(obj, "retry_after_ms", retry_after)) {
    out.retry_after_ms = to_int(retry_after);
  }
  (void)get_string(obj, "reason", out.reason);
  if (const Json* front = find(obj, "front"); front != nullptr && front->is_array()) {
    for (const Json& entry : front->as_array()) {
      if (!entry.is_object()) continue;
      FrontEntry fe;
      if (const Json* point = find(entry.as_object(), "point")) {
        std::string point_error;
        if (!point_from_json(*point, fe.point, point_error)) continue;
      }
      if (const Json* objectives = find(entry.as_object(), "objectives")) {
        (void)metrics_from_json(*objectives, fe.objectives);
      }
      out.front.push_back(std::move(fe));
    }
    double evaluations = 0.0;
    if (get_number(obj, "evaluations", evaluations)) {
      out.evaluations = static_cast<std::size_t>(to_int(evaluations));
    }
  }
  if (const Json* stats = find(obj, "stats")) out.stats_json = stats->dump();
  return true;
}

}  // namespace dovado::serve
