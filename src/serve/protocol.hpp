// Wire protocol of the `dovado serve` daemon.
//
// Newline-delimited JSON over a local stream socket: every frame is one
// JSON object, one request per frame, exactly one response per request
// (carrying the request's `id` back). A connection is a sequential
// request/response channel — the client sends a frame, then reads frames
// until the response with its id arrives (the server never pushes
// unsolicited frames, so in practice the next frame *is* the response).
//
// Requests:
//   {"op":"eval","tenant":"alice","id":"r1","point":{"DEPTH":16},
//    "deadline_tool_seconds":120}            (deadline optional)
//   {"op":"campaign","tenant":"alice","id":"c1",
//    "space":[{"name":"DEPTH","kind":"range","lo":8,"hi":200,"step":1},
//             {"name":"WIDTH","kind":"values","values":[8,16,32]}],
//    "objectives":[{"metric":"lut"},{"metric":"fmax_mhz","maximize":true}],
//    "budget":40,"optimizer":"nsga2","population":16,"seed":11}
//   {"op":"stats","id":"s1"}   {"op":"ping","id":"p1"}
//
// Responses, by status:
//   ok        eval answer (metrics, tool_seconds, flags), campaign front,
//             stats payload, or pong
//   failed    the evaluation ran and failed (error, failure class)
//   shed      load-shedding: NOT enqueued; retry_after_ms says when to come
//             back, reason says which limit fired (request_rate, tool_quota,
//             queue_full, backend_unavailable, deadline)
//   draining  the daemon is shutting down and admits nothing new
//   error     malformed or invalid request (message)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/core/param_domain.hpp"

namespace dovado::serve {

enum class RequestOp { kEval, kCampaign, kStats, kPing };

/// A campaign submission: a self-contained search-space + objectives +
/// budget description (the serve-side equivalent of a DseConfig subset).
struct CampaignSpec {
  core::DesignSpace space;
  std::vector<core::Objective> objectives;
  std::size_t budget = 0;  ///< tool evaluations to spend (asks told back)
  std::string optimizer = "nsga2";
  std::size_t population = 16;
  std::uint64_t seed = 1;
};

struct Request {
  RequestOp op = RequestOp::kPing;
  std::string tenant;
  std::string id;
  core::DesignPoint point;               ///< kEval
  double deadline_tool_seconds = 0.0;    ///< kEval; 0 = server default
  CampaignSpec campaign;                 ///< kCampaign
};

enum class ResponseStatus { kOk, kFailed, kShed, kDraining, kError };

/// One member of a campaign's final non-dominated front. Objective values
/// are in the *metric's* direction (maximized metrics are not negated).
struct FrontEntry {
  core::DesignPoint point;
  std::map<std::string, double> objectives;
};

struct Response {
  ResponseStatus status = ResponseStatus::kError;
  std::string id;

  // kOk (eval) / kFailed
  std::map<std::string, double> metrics;
  double tool_seconds = 0.0;
  bool cache_hit = false;
  bool store_hit = false;
  int attempts = 0;
  std::string error;  ///< kFailed / kError detail

  // kShed
  std::int64_t retry_after_ms = 0;
  std::string reason;

  // kOk (campaign)
  std::vector<FrontEntry> front;
  std::size_t evaluations = 0;

  // kOk (stats): opaque JSON payload rendered by `dovado top`
  std::string stats_json;
};

[[nodiscard]] std::string request_op_name(RequestOp op);
[[nodiscard]] std::string response_status_name(ResponseStatus status);

/// Serialize to one wire frame (no trailing newline; the socket layer adds
/// the frame terminator).
[[nodiscard]] std::string serialize_request(const Request& request);
[[nodiscard]] std::string serialize_response(const Response& response);

/// Parse one wire frame. Returns false with `error` filled on malformed
/// JSON, unknown ops/statuses, or structurally invalid fields; `out` is
/// left in an unspecified state on failure.
[[nodiscard]] bool parse_request(const std::string& line, Request& out,
                                 std::string& error);
[[nodiscard]] bool parse_response(const std::string& line, Response& out,
                                  std::string& error);

}  // namespace dovado::serve
