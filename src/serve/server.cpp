#include "src/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/opt/optimizer.hpp"
#include "src/util/json.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

namespace dovado::serve {

namespace {

/// Mirrors the engine's failure sentinel (core/dse.cpp): a failed
/// evaluation is told back as "worst possible" on every objective so the
/// searcher routes around it instead of stalling.
constexpr double kFailurePenalty = 1e18;

/// Shed reply for a breaker fast-fail: the breaker's cooldown is measured
/// in *rejected attempts*, not wall time, so a fixed short retry hint keeps
/// probes flowing without hammering the daemon.
constexpr std::int64_t kBackendRetryMs = 500;

double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The opt::Problem a campaign searches over. Pure ask/tell: the dispatch
/// loop evaluates genomes through the shared broker and tells the results
/// back, so the synchronous evaluate() path must never run.
class SpaceProblem final : public opt::Problem {
 public:
  SpaceProblem(const core::DesignSpace& space, std::size_t n_objectives)
      : space_(space), n_objectives_(n_objectives) {}

  [[nodiscard]] std::size_t n_vars() const override { return space_.params.size(); }
  [[nodiscard]] std::size_t n_objectives() const override { return n_objectives_; }
  [[nodiscard]] std::int64_t cardinality(std::size_t var) const override {
    return static_cast<std::int64_t>(space_.params[var].domain.size());
  }
  [[nodiscard]] opt::Objectives evaluate(const opt::Genome&) override {
    return opt::Objectives(n_objectives_, kFailurePenalty);
  }

 private:
  const core::DesignSpace& space_;  ///< owned by the enclosing CampaignState
  std::size_t n_objectives_;
};

}  // namespace

bool Server::Connection::send(const Response& response) {
  util::MutexLock lock(write_mu);
  if (!open.load()) return false;
  if (!sock.write_line(serialize_response(response), 5000)) {
    open.store(false);
    return false;
  }
  return true;
}

Server::Server(ServeConfig config)
    : config_(std::move(config)),
      clock_(config_.clock ? config_.clock : steady_now_seconds),
      admission_(config_.default_policy) {
  broker_ = std::make_unique<core::EvaluationBroker>(config_.project, config_.broker);
  if (config_.breaker.enabled) {
    health_ = std::make_shared<core::BackendHealthManager>(config_.breaker);
    health_->set_event_sink([this](const core::HealthEvent& event) {
      broker_->append_health_event(event);
    });
    broker_->set_health_manager(health_);
  }
  if (config_.broker.resume_from_journal && !config_.broker.journal_path.empty()) {
    // Seed the cache from a previous daemon's journal so a restart serves
    // already-paid-for answers at zero tool cost.
    (void)broker_->replay_journal();
  }
  max_inflight_ = config_.max_inflight != 0 ? config_.max_inflight
                                            : broker_->virtual_lane_count();
  max_inflight_ = std::max<std::size_t>(1, max_inflight_);
  scheduler_.set_defaults(config_.default_policy.weight,
                          config_.default_policy.queue_cap);
  const double t0 = now();
  for (const auto& tenant : config_.tenants) {
    admission_.set_policy(tenant.name, tenant.policy, t0);
    scheduler_.set_tenant(tenant.name, tenant.policy.weight,
                          tenant.policy.queue_cap);
  }
}

Server::~Server() {
  if (started_.load()) {
    drain();
    wait();
  }
}

bool Server::start(std::string& error) {
  if (started_.load()) {
    error = "server already started";
    return false;
  }
  if (config_.socket_path.empty()) {
    error = "no socket path configured";
    return false;
  }
  if (!listener_.listen(config_.socket_path, error)) return false;
  started_.store(true);
  dispatch_thread_ = std::thread(&Server::dispatch_loop, this);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  return true;
}

void Server::drain() {
  {
    util::MutexLock lock(mu_);
    drain_requested_ = true;
  }
  cv_.notify_all();
}

void Server::wait() {
  if (!started_.load()) return;
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<ConnWorker> workers;
  {
    util::MutexLock lock(conns_mu_);
    workers.swap(conn_workers_);
  }
  for (auto& worker : workers) {
    if (worker.thread.joinable()) worker.thread.join();
  }
}

bool Server::draining() const {
  util::MutexLock lock(mu_);
  return drain_requested_ || draining_;
}

// ---------------------------------------------------------------------------
// Socket threads
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  while (!stopping_.load()) {
    util::LineSocket sock = listener_.accept(100);
    if (!sock.valid()) {
      // Timeout or transient accept error; re-check stopping_ and retry.
      reap_connections();
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(sock);
    util::MutexLock lock(conns_mu_);
    std::size_t open = 0;
    for (const auto& worker : conn_workers_) {
      if (worker.conn->open.load()) ++open;
    }
    if (open >= config_.max_connections) {
      Response refusal;
      refusal.status = ResponseStatus::kShed;
      refusal.reason = "connection_limit";
      refusal.retry_after_ms = 1000;
      (void)conn->send(refusal);
      continue;  // conn closes when the shared_ptr dies
    }
    conn_workers_.push_back(
        ConnWorker{std::thread(&Server::connection_loop, this, conn), conn});
  }
  listener_.close();
}

void Server::reap_connections() {
  util::MutexLock lock(conns_mu_);
  for (auto it = conn_workers_.begin(); it != conn_workers_.end();) {
    if (!it->conn->open.load() && it->thread.joinable()) {
      it->thread.join();
      it = conn_workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::connection_loop(ConnPtr conn) {
  std::string line;
  while (!stopping_.load()) {
    bool timed_out = false;
    if (!conn->sock.read_line(line, 100, &timed_out)) {
      if (timed_out) continue;
      break;  // peer closed or socket error
    }
    if (line.empty()) continue;
    Request request;
    std::string parse_error;
    if (!parse_request(line, request, parse_error)) {
      Response malformed;
      malformed.status = ResponseStatus::kError;
      malformed.error = parse_error;
      if (!conn->send(malformed)) break;
      continue;
    }
    bool respond = false;
    Response response = handle_request(request, conn, respond);
    if (respond && !conn->send(response)) break;
  }
  // Mark closed and shut the socket down, but leave the fd to the
  // Connection's destructor: queued jobs may still hold the ConnPtr, and
  // closing here would let the kernel reuse the fd number under a
  // concurrent dispatcher write. The shutdown wakes a peer that raced a
  // frame against drain and is blocked waiting for a response nobody will
  // ever write — it sees EOF now instead of hanging until Server::wait()
  // destroys the connection.
  conn->open.store(false);
  conn->sock.shutdown();
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

Response Server::handle_request(const Request& request, const ConnPtr& conn,
                                bool& respond) {
  respond = true;
  Response response;
  response.id = request.id;
  switch (request.op) {
    case RequestOp::kPing: {
      util::MutexLock lock(mu_);
      ++requests_;
      response.status = ResponseStatus::kOk;
      return response;
    }
    case RequestOp::kStats: {
      {
        util::MutexLock lock(mu_);
        ++requests_;
      }
      response.status = ResponseStatus::kOk;
      response.stats_json = stats_json();
      return response;
    }
    case RequestOp::kEval:
    case RequestOp::kCampaign:
      break;
  }
  util::MutexLock lock(mu_);
  ++requests_;
  response = admit_and_enqueue_locked(request, conn, respond);
  if (!respond) cv_.notify_all();
  return response;
}

Response Server::admit_and_enqueue_locked(const Request& request,
                                          const ConnPtr& conn, bool& respond) {
  respond = true;
  Response response;
  response.id = request.id;
  if (request.tenant.empty()) {
    response.status = ResponseStatus::kError;
    response.error = "request is missing a tenant";
    return response;
  }
  if (drain_requested_ || draining_) {
    response.status = ResponseStatus::kDraining;
    response.reason = "draining";
    return response;
  }
  const AdmissionDecision decision = admission_.admit(request.tenant, now());
  if (!decision.admitted) {
    ++shed_;
    response.status = ResponseStatus::kShed;
    response.reason = decision.reason;
    response.retry_after_ms = decision.retry_after_ms;
    return response;
  }

  if (request.op == RequestOp::kEval) {
    Job job;
    job.tenant = request.tenant;
    job.id = request.id;
    job.point = request.point;
    job.deadline_tool_seconds = request.deadline_tool_seconds > 0.0
                                    ? request.deadline_tool_seconds
                                    : config_.default_deadline_tool_seconds;
    job.conn = conn;
    if (!scheduler_.push(request.tenant, std::move(job))) {
      ++shed_;
      response.status = ResponseStatus::kShed;
      response.reason = "queue_full";
      // Rough service-time hint: the backlog ahead of this request at the
      // tenant's expected per-job cost. Clamped so clients neither spin nor
      // give up on a briefly saturated daemon.
      const auto queue_stats = scheduler_.stats();
      const auto it = queue_stats.find(request.tenant);
      double eta = 1.0;
      if (it != queue_stats.end()) {
        eta = static_cast<double>(it->second.queued) *
              std::max(1e-3, it->second.expected_cost) /
              std::max<std::size_t>(1, max_inflight_);
      }
      response.retry_after_ms = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(eta * 1000.0), 50, 10000);
      return response;
    }
    respond = false;
    return response;
  }

  // Campaign submission.
  const CampaignSpec& spec = request.campaign;
  if (spec.space.params.empty()) {
    response.status = ResponseStatus::kError;
    response.error = "campaign has an empty design space";
    return response;
  }
  if (spec.objectives.empty()) {
    response.status = ResponseStatus::kError;
    response.error = "campaign names no objectives";
    return response;
  }
  if (spec.budget == 0) {
    response.status = ResponseStatus::kError;
    response.error = "campaign budget must be positive";
    return response;
  }
  std::vector<std::string> known = broker_->metric_names();
  for (const auto& derived : config_.broker.derived_metrics) {
    known.push_back(derived.name);
  }
  for (const auto& objective : spec.objectives) {
    if (std::find(known.begin(), known.end(), objective.metric) == known.end()) {
      response.status = ResponseStatus::kError;
      response.error = util::format("unknown objective metric '%s'",
                                    objective.metric.c_str());
      const std::string hint = util::closest_match(objective.metric, known);
      if (!hint.empty()) {
        response.error += util::format(" (did you mean '%s'?)", hint.c_str());
      }
      return response;
    }
  }

  auto campaign = std::make_shared<CampaignState>();
  campaign->tenant = request.tenant;
  campaign->id = request.id;
  campaign->spec = spec;
  campaign->conn = conn;
  campaign->problem = std::make_unique<SpaceProblem>(campaign->spec.space,
                                                     spec.objectives.size());
  opt::OptimizerContext ctx;
  ctx.problem = campaign->problem.get();
  ctx.ga.population_size = std::max<std::size_t>(2, spec.population);
  ctx.ga.seed = spec.seed;
  try {
    campaign->optimizer = opt::OptimizerRegistry::create(spec.optimizer, ctx);
  } catch (const std::exception& e) {
    response.status = ResponseStatus::kError;
    response.error = e.what();
    return response;
  }
  campaigns_.push_back(campaign);
  refill_campaign_locked(campaign);
  respond = false;
  return response;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Server::dispatch_loop() {
  util::MutexLock lock(mu_);
  for (;;) {
    while (!(drain_requested_ || !completions_.empty() ||
             (!draining_ && inflight_ < max_inflight_ && !scheduler_.empty()))) {
      cv_.wait(mu_);
    }
    if (drain_requested_ && !draining_) {
      draining_ = true;
      util::Log::info(util::format(
          "serve: draining -- admissions stopped, %zu queued shed, "
          "%zu evaluations finishing",
          scheduler_.queued(), inflight_));
      shed_queue_locked();
    }
    while (!completions_.empty()) {
      Completion completion = std::move(completions_.front());
      completions_.pop_front();
      finalize_locked(std::move(completion));
    }
    if (draining_) {
      if (inflight_ == 0 && completions_.empty()) break;
      continue;
    }
    pump_locked();
  }
  dispatch_done_ = true;
  lock.unlock();
  if (config_.broker.store) {
    std::string flush_error;
    if (!config_.broker.store->flush(&flush_error)) {
      util::Log::warn("serve: store flush during drain failed: " + flush_error);
    }
  }
  stopping_.store(true);
  cv_.notify_all();
}

void Server::pump_locked() {
  // A campaign whose asks could not be queued earlier (queue momentarily
  // full) retries here, so its asks compete in this scheduling round.
  for (const auto& campaign : campaigns_) {
    if (!campaign->finished && campaign->inflight == 0) {
      refill_campaign_locked(campaign);
    }
  }
  if (draining_) return;
  std::vector<Job> batch;
  while (inflight_ < max_inflight_) {
    auto next = scheduler_.pop();
    if (!next) break;
    ++inflight_;
    batch.push_back(std::move(next->second));
  }
  if (batch.empty()) return;
  // Submit outside the lock: with workers == 0 the broker evaluates
  // *inline* on this thread, and the evaluation must not hold up readers.
  // The inline case calls run_job directly — going through async() would
  // run it on this thread anyway, after paying for a future and two
  // std::function wrappers per job.
  const bool inline_eval = config_.broker.workers == 0;
  mu_.unlock();
  for (Job& job : batch) {
    if (inline_eval) {
      run_job(std::move(job));
    } else {
      broker_->async([this, job = std::move(job)]() mutable { run_job(std::move(job)); });
    }
  }
  mu_.lock();
}

void Server::run_job(Job job) {
  core::EvalResult result =
      broker_->tool_evaluate(job.point, false, job.deadline_tool_seconds);
  util::MutexLock inner(mu_);
  completions_.push_back(Completion{std::move(job), std::move(result)});
  cv_.notify_all();
}

void Server::finalize_locked(Completion completion) {
  Job& job = completion.job;
  core::EvalResult& result = completion.result;
  --inflight_;
  const double charged = result.tool_seconds;
  admission_.charge_tool_seconds(job.tenant, charged, now());
  scheduler_.charge(job.tenant, charged);

  if (job.campaign) {
    const std::shared_ptr<CampaignState> campaign = job.campaign;
    if (campaign->inflight > 0) --campaign->inflight;
    campaign->tool_seconds += charged;
    if (campaign->finished) return;
    opt::Objectives objectives;
    if (result.ok) {
      objectives.reserve(campaign->spec.objectives.size());
      for (const auto& objective : campaign->spec.objectives) {
        const double value = result.metrics.get(objective.metric);
        objectives.push_back(objective.maximize ? -value : value);
      }
    } else {
      // Failures (including breaker fast-fails and deadline cuts) are told
      // as the worst value on every objective; the searcher routes around
      // the point instead of re-asking it.
      objectives.assign(campaign->spec.objectives.size(), kFailurePenalty);
    }
    const bool free_answer =
        result.cache_hit || result.joined || result.store_hit || result.fast_failed;
    campaign->optimizer->tell(job.genome, objectives,
                              free_answer ? 0.0 : result.tool_seconds);
    ++campaign->completed;
    if (campaign->completed >= campaign->spec.budget ||
        (draining_ && campaign->inflight == 0)) {
      finish_campaign_locked(campaign);
    } else if (!draining_) {
      refill_campaign_locked(campaign);
    }
    return;
  }

  // Single eval: translate the broker result into a wire response.
  Response response;
  response.id = job.id;
  if (result.fast_failed) {
    ++shed_;
    response.status = ResponseStatus::kShed;
    response.reason = "backend_unavailable";
    response.retry_after_ms = kBackendRetryMs;
  } else if (result.ok) {
    ++completed_by_tenant_[job.tenant];
    response.status = ResponseStatus::kOk;
    response.metrics = std::move(result.metrics.values);
    response.tool_seconds = result.tool_seconds;
    response.cache_hit = result.cache_hit || result.joined;
    response.store_hit = result.store_hit;
    response.attempts = result.attempts;
  } else {
    ++failed_by_tenant_[job.tenant];
    response.status = ResponseStatus::kFailed;
    response.error = result.error;
    response.tool_seconds = result.tool_seconds;
    response.attempts = result.attempts;
    if (result.deadline_truncated) response.reason = "deadline";
  }
  deliver_locked(job.conn, job.id, std::move(response));
}

void Server::refill_campaign_locked(const std::shared_ptr<CampaignState>& campaign) {
  if (campaign->finished || draining_) return;
  const std::size_t window =
      std::max<std::size_t>(1, std::min(campaign->spec.population, max_inflight_));
  while (campaign->asked < campaign->spec.budget && campaign->inflight < window) {
    opt::Genome genome = campaign->optimizer->ask();
    campaign->problem->repair(genome);
    Job job;
    job.tenant = campaign->tenant;
    job.id = campaign->id;
    job.point = campaign->spec.space.decode(genome);
    job.deadline_tool_seconds = config_.default_deadline_tool_seconds;
    job.conn = campaign->conn;
    job.campaign = campaign;
    job.genome = std::move(genome);
    if (!scheduler_.push(campaign->tenant, std::move(job))) {
      // Queue full right now; pump_locked() retries once it drains. The
      // un-queued ask stays in the optimizer's seen-set, which only means
      // the next ask proposes a different genome.
      break;
    }
    ++campaign->asked;
    ++campaign->inflight;
  }
}

void Server::finish_campaign_locked(
    const std::shared_ptr<CampaignState>& campaign) {
  if (campaign->finished) return;
  campaign->finished = true;
  ++campaigns_finished_;
  ++completed_by_tenant_[campaign->tenant];
  campaigns_.erase(std::remove(campaigns_.begin(), campaigns_.end(), campaign),
                   campaigns_.end());
  Response response = make_campaign_response(*campaign);
  deliver_locked(campaign->conn, campaign->id, std::move(response));
}

Response Server::make_campaign_response(const CampaignState& campaign) const {
  Response response;
  response.status = ResponseStatus::kOk;
  response.id = campaign.id;
  response.evaluations = campaign.completed;
  response.tool_seconds = campaign.tool_seconds;
  for (const opt::Individual& member : campaign.optimizer->front()) {
    FrontEntry entry;
    entry.point = campaign.spec.space.decode(member.genome);
    bool all_failed = true;
    for (std::size_t k = 0; k < campaign.spec.objectives.size() &&
                            k < member.objectives.size();
         ++k) {
      const core::Objective& objective = campaign.spec.objectives[k];
      const double raw = member.objectives[k];
      if (raw < kFailurePenalty) all_failed = false;
      entry.objectives[objective.metric] = objective.maximize ? -raw : raw;
    }
    if (all_failed) continue;  // an all-penalty member carries no information
    response.front.push_back(std::move(entry));
  }
  return response;
}

void Server::shed_queue_locked() {
  std::vector<std::pair<std::string, Job>> drained = scheduler_.drain_all();
  std::vector<std::shared_ptr<CampaignState>> touched;
  std::vector<std::pair<ConnPtr, Response>> replies;
  for (auto& [tenant, job] : drained) {
    // Whatever the scheduler handed out was matched by an inflight
    // expectation; reconcile it at zero cost so stats stay balanced.
    scheduler_.charge(tenant, 0.0);
    if (job.campaign) {
      if (job.campaign->inflight > 0) --job.campaign->inflight;
      touched.push_back(job.campaign);
      continue;
    }
    Response response;
    response.id = job.id;
    response.status = ResponseStatus::kDraining;
    response.reason = "draining";
    if (job.conn) {
      replies.emplace_back(job.conn, std::move(response));
    } else {
      local_results_[job.id] = std::move(response);
    }
  }
  // Campaigns whose whole pipeline was queued finish right now with the
  // partial front; ones with running evaluations finish in finalize.
  for (const auto& campaign : touched) {
    if (!campaign->finished && campaign->inflight == 0) {
      finish_campaign_locked(campaign);
    }
  }
  if (replies.empty()) return;
  mu_.unlock();
  for (auto& [conn, response] : replies) (void)conn->send(response);
  mu_.lock();
}

void Server::deliver_locked(const ConnPtr& conn, const std::string& id,
                            Response response) {
  if (!conn) {
    local_results_[id] = std::move(response);
    cv_.notify_all();
    return;
  }
  mu_.unlock();
  (void)conn->send(response);
  mu_.lock();
}

// ---------------------------------------------------------------------------
// In-process mode
// ---------------------------------------------------------------------------

Response Server::execute(const Request& request) {
  bool respond = false;
  Response response = handle_request(request, nullptr, respond);
  if (respond) return response;

  util::MutexLock lock(mu_);
  for (;;) {
    const auto it = local_results_.find(request.id);
    if (it != local_results_.end()) {
      Response done = std::move(it->second);
      local_results_.erase(it);
      return done;
    }
    if (completions_.empty() && scheduler_.empty() && inflight_ == 0 &&
        campaigns_.empty()) {
      Response lost;
      lost.status = ResponseStatus::kError;
      lost.id = request.id;
      lost.error = "request produced no result";
      return lost;
    }
    pump_locked();
    if (completions_.empty() && inflight_ > 0) {
      while (completions_.empty()) cv_.wait(mu_);
    }
    while (!completions_.empty()) {
      Completion completion = std::move(completions_.front());
      completions_.pop_front();
      finalize_locked(std::move(completion));
    }
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServerStats Server::stats() const {
  ServerStats out;
  {
    util::MutexLock lock(mu_);
    const auto admission = admission_.stats();
    const auto queues = scheduler_.stats();
    std::vector<std::string> names;
    for (const auto& [name, ignored] : admission) names.push_back(name);
    for (const auto& [name, ignored] : queues) {
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    std::sort(names.begin(), names.end());
    for (const auto& name : names) {
      ServerTenantStats tenant;
      tenant.name = name;
      const auto admission_it = admission.find(name);
      if (admission_it != admission.end()) tenant.admission = admission_it->second;
      const auto queue_it = queues.find(name);
      if (queue_it != queues.end()) tenant.queue = queue_it->second;
      const auto completed_it = completed_by_tenant_.find(name);
      if (completed_it != completed_by_tenant_.end()) {
        tenant.completed = completed_it->second;
      }
      const auto failed_it = failed_by_tenant_.find(name);
      if (failed_it != failed_by_tenant_.end()) tenant.failed = failed_it->second;
      out.tenants.push_back(std::move(tenant));
    }
    out.inflight = inflight_;
    out.queued = scheduler_.queued();
    out.requests = requests_;
    out.shed = shed_;
    out.campaigns_active = campaigns_.size();
    out.campaigns_finished = campaigns_finished_;
    out.draining = drain_requested_ || draining_;
  }
  out.broker = broker_->stats();
  {
    util::MutexLock lock(conns_mu_);
    for (const auto& worker : conn_workers_) {
      if (worker.conn->open.load()) ++out.connections;
    }
  }
  return out;
}

std::string Server::stats_json() const {
  const ServerStats snapshot = stats();
  util::JsonObject root;
  root["inflight"] = snapshot.inflight;
  root["queued"] = snapshot.queued;
  root["connections"] = snapshot.connections;
  root["requests"] = snapshot.requests;
  root["shed"] = snapshot.shed;
  root["campaigns_active"] = snapshot.campaigns_active;
  root["campaigns_finished"] = snapshot.campaigns_finished;
  root["draining"] = snapshot.draining;

  util::JsonObject broker;
  broker["fresh_runs"] = snapshot.broker.fresh_runs;
  broker["tool_seconds"] = snapshot.broker.tool_seconds;
  broker["store_hits"] = snapshot.broker.store_hits;
  broker["store_appends"] = snapshot.broker.store_appends;
  broker["virtual_lanes"] = snapshot.broker.virtual_lanes;
  broker["busy_tool_seconds"] = snapshot.broker.busy_tool_seconds;
  root["broker"] = std::move(broker);

  util::JsonArray tenants;
  for (const auto& tenant : snapshot.tenants) {
    util::JsonObject entry;
    entry["name"] = tenant.name;
    entry["weight"] = tenant.queue.weight;
    entry["queued"] = tenant.queue.queued;
    entry["dispatched"] = tenant.queue.dispatched;
    entry["completed"] = tenant.completed;
    entry["failed"] = tenant.failed;
    entry["admitted"] = tenant.admission.admitted;
    entry["shed_request_rate"] = tenant.admission.shed_request_rate;
    entry["shed_tool_quota"] = tenant.admission.shed_tool_quota;
    entry["shed_queue_full"] = tenant.queue.shed_queue_full;
    entry["tool_seconds"] = tenant.admission.tool_seconds_charged;
    entry["expected_cost"] = tenant.queue.expected_cost;
    entry["deficit"] = tenant.queue.deficit;
    tenants.push_back(std::move(entry));
  }
  root["tenants"] = std::move(tenants);
  return util::Json(std::move(root)).dump();
}

}  // namespace dovado::serve
