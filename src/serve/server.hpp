// The `dovado serve` daemon: a multi-tenant evaluation service over one
// shared EvaluationBroker.
//
// Many clients connect over a Unix-domain socket (newline-delimited JSON,
// see protocol.hpp) and submit single-point evaluations or whole campaign
// searches. Every request passes, in order:
//
//   1. admission  — per-tenant request-rate token bucket + post-paid
//                   tool-second quota (admission.hpp). Over-limit requests
//                   are answered `shed` + retry_after_ms by the reader
//                   thread itself; they never allocate queue space.
//   2. scheduling — weighted deficit round-robin over bounded per-tenant
//                   queues (scheduler.hpp). A full queue sheds too:
//                   backpressure is an explicit reply, never an unbounded
//                   buffer.
//   3. dispatch   — a single control thread (mirroring the steady-state
//                   engine's submit/complete loop) keeps up to max_inflight
//                   evaluations on the shared broker, which carries the
//                   cache, single-flight, supervisor retries, breakers,
//                   journal and cross-campaign store for *all* tenants.
//
// Durability contract: a response with status ok/failed is only written
// after the broker has journaled (fsync) and store-appended the fresh
// answer, so an acked evaluation survives any crash after the ack.
// Graceful drain (SIGTERM path): stop admitting, shed the queued backlog
// with `draining` replies, let in-flight evaluations finish (journaled as
// usual), flush the store, then exit — zero acked evaluations lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/broker.hpp"
#include "src/core/health/breaker.hpp"
#include "src/opt/optimizer.hpp"
#include "src/serve/admission.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/scheduler.hpp"
#include "src/util/socket.hpp"
#include "src/util/sync.hpp"

namespace dovado::serve {

/// A named tenant with a pinned policy (unknown tenants get the default).
struct ServeTenantConfig {
  std::string name;
  TenantPolicy policy;
};

struct ServeConfig {
  std::string socket_path;
  core::ProjectConfig project;
  /// Broker knobs: workers, fault plan, supervisor, journal, store, tiers.
  core::BrokerConfig broker;
  /// Circuit breakers on the shared backend (enabled by default).
  core::BreakerConfig breaker;
  TenantPolicy default_policy;
  std::vector<ServeTenantConfig> tenants;
  /// Evaluations in flight on the broker at once; 0 = one per virtual lane.
  std::size_t max_inflight = 0;
  std::size_t max_connections = 64;
  /// Per-request tool-second deadline applied when a request names none;
  /// 0 = unbounded. Propagated into the supervisor's retry loop.
  double default_deadline_tool_seconds = 0.0;
  /// Injected clock in seconds (monotonic origin); null = steady_clock.
  /// Admission buckets refill on this clock, so tests drive virtual time.
  std::function<double()> clock;
};

struct ServerTenantStats {
  std::string name;
  TenantAdmissionStats admission;
  TenantQueueStats queue;
  std::size_t completed = 0;  ///< ok responses sent
  std::size_t failed = 0;     ///< failed responses sent
};

struct ServerStats {
  std::vector<ServerTenantStats> tenants;
  core::BrokerStats broker;
  std::size_t inflight = 0;
  std::size_t queued = 0;
  std::size_t connections = 0;
  std::size_t requests = 0;            ///< frames parsed into requests
  std::size_t shed = 0;                ///< shed replies sent (all reasons)
  std::size_t campaigns_active = 0;
  std::size_t campaigns_finished = 0;
  bool draining = false;
};

class Server {
 public:
  /// Builds the shared broker (throws like EvaluationBroker on bad
  /// project/backend/journal) and the admission/scheduling state. No
  /// threads or sockets yet — start() does that; execute() works without
  /// ever calling start() (in-process mode for tests and the bench).
  explicit Server(ServeConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and spawn the accept + dispatch threads.
  [[nodiscard]] bool start(std::string& error);

  /// Begin graceful drain (idempotent): stop admitting, shed the queued
  /// backlog, finish in-flight work, flush the store, stop the threads.
  /// Returns immediately; wait() blocks until the drain completes. NOT
  /// async-signal-safe — call from a normal thread, not a signal handler.
  void drain();

  /// Block until a started server has fully drained and stopped.
  void wait();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] ServerStats stats() const;
  /// The stats snapshot as a JSON document (the `stats` op payload).
  [[nodiscard]] std::string stats_json() const;

  /// Synchronous in-process request path: admission -> scheduler ->
  /// broker, all on the caller's thread (the broker still fans evaluations
  /// out when configured with workers). Only valid when start() was never
  /// called — it drives the same code the dispatch thread runs, so the two
  /// must not race.
  [[nodiscard]] Response execute(const Request& request);

  [[nodiscard]] core::EvaluationBroker& broker() { return *broker_; }

 private:
  struct Connection {
    util::LineSocket sock;
    /// Leaf lock: serializes whole response frames onto the socket. Never
    /// held together with mu_ — every delivery path releases mu_ first.
    util::Mutex write_mu{"serve.Connection.write"};
    std::atomic<bool> open{true};

    /// Serialize + frame + send; false (and marks closed) when the peer
    /// is gone.
    bool send(const Response& response);
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct CampaignState;

  /// One schedulable unit: either a client's single eval or one ask of a
  /// server-side campaign loop.
  struct Job {
    std::string tenant;
    std::string id;                       ///< request id (campaign: its id)
    core::DesignPoint point;
    double deadline_tool_seconds = 0.0;
    ConnPtr conn;                         ///< null in execute() mode
    std::shared_ptr<CampaignState> campaign;  ///< null for single evals
    opt::Genome genome;                   ///< campaign asks only
  };

  struct Completion {
    Job job;
    core::EvalResult result;
  };

  struct CampaignState {
    std::string tenant;
    std::string id;
    CampaignSpec spec;
    ConnPtr conn;
    std::unique_ptr<opt::Problem> problem;
    std::unique_ptr<opt::Optimizer> optimizer;
    std::size_t asked = 0;      ///< genomes scheduled so far
    std::size_t completed = 0;  ///< tells so far
    std::size_t inflight = 0;   ///< queued + running asks
    double tool_seconds = 0.0;
    bool finished = false;
  };

  void accept_loop();
  void connection_loop(ConnPtr conn);
  void dispatch_loop();

  /// Handle one parsed request from a reader thread (or execute()).
  /// Immediate answers (ping/stats/shed/draining/error) are returned with
  /// `respond=true`; admitted work is queued and answered later by the
  /// dispatcher.
  Response handle_request(const Request& request, const ConnPtr& conn, bool& respond);

  /// Admission + enqueue for one eval/campaign request. Caller holds mu_.
  Response admit_and_enqueue_locked(const Request& request, const ConnPtr& conn,
                                    bool& respond) DOVADO_REQUIRES(mu_);

  /// Launch up to max_inflight queued jobs onto the broker. Caller holds
  /// mu_; may release and re-acquire it around broker submission.
  void pump_locked() DOVADO_REQUIRES(mu_);

  /// Evaluate one dispatched job and park the result in completions_.
  /// Runs with mu_ NOT held (worker thread, or the dispatcher inline when
  /// the broker has no workers).
  void run_job(Job job);

  /// Apply one finished evaluation: charges, campaign tell/refill, the
  /// client response. Caller holds mu_; releases it to write.
  void finalize_locked(Completion completion) DOVADO_REQUIRES(mu_);

  /// Push more asks of `campaign` into the scheduler (up to its window).
  /// Caller holds mu_.
  void refill_campaign_locked(const std::shared_ptr<CampaignState>& campaign)
      DOVADO_REQUIRES(mu_);

  /// Finish a campaign: build the front response. Caller holds mu_;
  /// releases it to write.
  void finish_campaign_locked(const std::shared_ptr<CampaignState>& campaign)
      DOVADO_REQUIRES(mu_);

  /// Shed every queued job with a draining/shed reply. Caller holds mu_.
  void shed_queue_locked() DOVADO_REQUIRES(mu_);

  Response make_campaign_response(const CampaignState& campaign) const;

  /// Hand a response to its connection (releasing mu_ around the socket
  /// write) or, in execute() mode, park it in local_results_.
  void deliver_locked(const ConnPtr& conn, const std::string& id,
                      Response response) DOVADO_REQUIRES(mu_);

  /// Join reader threads whose connection has closed (called from the
  /// accept loop so a long-lived daemon does not accumulate dead threads).
  void reap_connections();

  [[nodiscard]] double now() const { return clock_(); }

  ServeConfig config_;
  std::function<double()> clock_;
  std::unique_ptr<core::EvaluationBroker> broker_;
  std::shared_ptr<core::BackendHealthManager> health_;
  std::size_t max_inflight_ = 1;

  /// The server lock: admission, scheduling and campaign state. Ordered
  /// before every broker/store lock (dispatch holds mu_ while touching the
  /// scheduler, but releases it before broker submission) and never held
  /// across a socket write (deliver_locked drops it first).
  mutable util::Mutex mu_{"serve.Server"};
  util::CondVar cv_;
  AdmissionController admission_ DOVADO_GUARDED_BY(mu_);
  DrrScheduler<Job> scheduler_ DOVADO_GUARDED_BY(mu_);
  std::deque<Completion> completions_ DOVADO_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<CampaignState>> campaigns_
      DOVADO_GUARDED_BY(mu_);  ///< active only
  std::map<std::string, Response> local_results_
      DOVADO_GUARDED_BY(mu_);  ///< execute() responses by id
  std::size_t inflight_ DOVADO_GUARDED_BY(mu_) = 0;
  std::size_t requests_ DOVADO_GUARDED_BY(mu_) = 0;
  std::size_t shed_ DOVADO_GUARDED_BY(mu_) = 0;
  std::size_t campaigns_finished_ DOVADO_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::size_t> completed_by_tenant_ DOVADO_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> failed_by_tenant_ DOVADO_GUARDED_BY(mu_);
  bool drain_requested_ DOVADO_GUARDED_BY(mu_) = false;
  bool draining_ DOVADO_GUARDED_BY(mu_) = false;
  bool dispatch_done_ DOVADO_GUARDED_BY(mu_) = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  util::UnixListener listener_;
  std::thread accept_thread_;
  std::thread dispatch_thread_;

  struct ConnWorker {
    std::thread thread;
    ConnPtr conn;
  };
  /// Guards only the worker-thread roster; independent of mu_ (no code
  /// path holds both).
  mutable util::Mutex conns_mu_{"serve.Server.conns"};
  std::vector<ConnWorker> conn_workers_ DOVADO_GUARDED_BY(conns_mu_);
  std::size_t connections_ DOVADO_GUARDED_BY(conns_mu_) = 0;  ///< currently open
};

}  // namespace dovado::serve
