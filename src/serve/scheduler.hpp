// Weighted deficit round-robin over bounded per-tenant queues.
//
// Classic DRR (Shreedhar & Varghese) adapted to tool-second costs: each
// tenant owns a bounded FIFO of jobs; a round-robin cursor visits non-empty
// queues, crediting `quantum * weight` deficit per visit and dispatching
// jobs while the deficit covers the tenant's *expected* per-job cost (an
// EWMA of its actual charged tool-seconds). Costs are only known at
// completion, so dispatch deducts the expectation and charge() reconciles
// it against the actual cost — a tenant whose jobs ran long goes into debt
// and is skipped until its credit recovers, which is exactly "weighted by
// tool-seconds consumed".
//
// Starvation-freedom: every non-empty queue gains `quantum * weight > 0`
// deficit per full rotation, so any tenant dispatches within a bounded
// number of rotations (debt is clamped, see kDebtRounds).
//
// Not thread-safe; the server serializes access under its own mutex. Pure
// (no clocks, no I/O), so unit tests drive it deterministically.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dovado::serve {

struct TenantQueueStats {
  double weight = 1.0;
  std::size_t queued = 0;           ///< jobs waiting right now
  std::size_t dispatched = 0;       ///< jobs handed to the broker
  std::size_t shed_queue_full = 0;  ///< pushes rejected by the bounded queue
  double consumed_tool_seconds = 0.0;
  double expected_cost = 1.0;       ///< EWMA of per-job tool-seconds
  double deficit = 0.0;
};

template <typename Job>
class DrrScheduler {
 public:
  /// Register (or re-weight) a tenant. Unknown tenants pushed without
  /// registration get (default_weight, default_queue_cap).
  void set_tenant(const std::string& tenant, double weight, std::size_t queue_cap) {
    TenantState& state = state_for(tenant);
    state.stats.weight = std::max(1e-6, weight);
    state.queue_cap = std::max<std::size_t>(1, queue_cap);
  }

  void set_defaults(double weight, std::size_t queue_cap) {
    default_weight_ = std::max(1e-6, weight);
    default_queue_cap_ = std::max<std::size_t>(1, queue_cap);
  }

  /// Enqueue a job; false when the tenant's bounded queue is full (the
  /// caller sheds with retry_after_ms instead of buffering unboundedly).
  [[nodiscard]] bool push(const std::string& tenant, Job job) {
    TenantState& state = state_for(tenant);
    if (state.queue.size() >= state.queue_cap) {
      ++state.stats.shed_queue_full;
      return false;
    }
    state.queue.push_back(std::move(job));
    ++queued_;
    return true;
  }

  /// Pick the next job under the DRR policy; nullopt when all queues are
  /// empty. Returns (tenant, job).
  [[nodiscard]] std::optional<std::pair<std::string, Job>> pop() {
    if (queued_ == 0 || ring_.empty()) return std::nullopt;
    const double quantum = max_expected_cost();
    // Each full rotation credits every non-empty queue, so some tenant
    // becomes eligible within ceil(debt / (quantum * weight)) rotations;
    // the debt clamp in charge() bounds that by kDebtRounds.
    for (std::size_t guard = 0; guard < ring_.size() * (kDebtRounds + 2); ++guard) {
      TenantState& state = tenants_[ring_[cursor_]];
      if (state.queue.empty()) {
        // Standard DRR: an emptied queue forfeits its leftover deficit so
        // an idle tenant cannot hoard credit.
        state.stats.deficit = 0.0;
        state.credited = false;
        advance();
        continue;
      }
      if (!state.credited) {
        state.stats.deficit += quantum * state.stats.weight;
        state.credited = true;
      }
      if (state.stats.deficit >= state.stats.expected_cost) {
        state.stats.deficit -= state.stats.expected_cost;
        state.inflight_expected.push_back(state.stats.expected_cost);
        Job job = std::move(state.queue.front());
        state.queue.pop_front();
        --queued_;
        ++state.stats.dispatched;
        const std::string tenant = ring_[cursor_];
        if (state.queue.empty() || state.stats.deficit < state.stats.expected_cost) {
          state.credited = false;
          if (state.queue.empty()) state.stats.deficit = 0.0;
          advance();
        }
        return std::make_pair(tenant, std::move(job));
      }
      state.credited = false;
      advance();
    }
    // Unreachable with positive weights; fail safe by serving the deepest
    // queue rather than stalling the dispatcher.
    std::string deepest;
    for (const auto& name : ring_) {
      if (tenants_[name].queue.empty()) continue;
      if (deepest.empty() ||
          tenants_[name].queue.size() > tenants_[deepest].queue.size()) {
        deepest = name;
      }
    }
    if (deepest.empty()) return std::nullopt;
    TenantState& state = tenants_[deepest];
    state.inflight_expected.push_back(state.stats.expected_cost);
    Job job = std::move(state.queue.front());
    state.queue.pop_front();
    --queued_;
    ++state.stats.dispatched;
    return std::make_pair(deepest, std::move(job));
  }

  /// Reconcile a completed job's actual tool-seconds against the expected
  /// cost deducted at dispatch, and fold the actual into the EWMA.
  void charge(const std::string& tenant, double actual_seconds) {
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;
    TenantState& state = it->second;
    double expected = state.stats.expected_cost;
    if (!state.inflight_expected.empty()) {
      expected = state.inflight_expected.front();
      state.inflight_expected.pop_front();
    }
    const double actual = std::max(0.0, actual_seconds);
    state.stats.consumed_tool_seconds += actual;
    // Pay back (or claw back) the difference between what dispatch assumed
    // and what the job really cost; clamp the resulting debt so one wildly
    // mis-estimated job cannot stall a tenant for more than kDebtRounds
    // rotations.
    state.stats.deficit += expected - actual;
    const double floor =
        -static_cast<double>(kDebtRounds) * max_expected_cost() * state.stats.weight;
    state.stats.deficit = std::max(state.stats.deficit, floor);
    if (actual > 0.0) {
      state.stats.expected_cost = state.seen_cost
                                      ? 0.7 * state.stats.expected_cost + 0.3 * actual
                                      : actual;
      state.stats.expected_cost = std::max(state.stats.expected_cost, 1e-9);
      state.seen_cost = true;
    }
  }

  [[nodiscard]] std::size_t queued() const { return queued_; }
  [[nodiscard]] bool empty() const { return queued_ == 0; }

  [[nodiscard]] std::size_t queued_for(const std::string& tenant) const {
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.queue.size();
  }

  /// Remove and return every queued job (graceful drain sheds them with a
  /// "draining" reply instead of leaving clients hanging).
  [[nodiscard]] std::vector<std::pair<std::string, Job>> drain_all() {
    std::vector<std::pair<std::string, Job>> drained;
    for (const auto& name : ring_) {
      TenantState& state = tenants_[name];
      while (!state.queue.empty()) {
        drained.emplace_back(name, std::move(state.queue.front()));
        state.queue.pop_front();
        --queued_;
      }
      state.stats.deficit = 0.0;
      state.credited = false;
    }
    return drained;
  }

  [[nodiscard]] std::map<std::string, TenantQueueStats> stats() const {
    std::map<std::string, TenantQueueStats> out;
    for (const auto& [name, state] : tenants_) {
      TenantQueueStats s = state.stats;
      s.queued = state.queue.size();
      out[name] = s;
    }
    return out;
  }

 private:
  /// Debt clamp, in rotations' worth of quantum * weight.
  static constexpr std::size_t kDebtRounds = 8;

  struct TenantState {
    std::deque<Job> queue;
    std::size_t queue_cap = 64;
    bool credited = false;   ///< deficit granted for the current visit
    bool seen_cost = false;  ///< expected_cost initialized from a real charge
    std::deque<double> inflight_expected;  ///< expectation deducted per dispatch
    TenantQueueStats stats;
  };

  TenantState& state_for(const std::string& tenant) {
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second;
    TenantState& state = tenants_[tenant];
    state.queue_cap = default_queue_cap_;
    state.stats.weight = default_weight_;
    state.stats.expected_cost = 1.0;
    ring_.push_back(tenant);
    return state;
  }

  void advance() { cursor_ = (cursor_ + 1) % ring_.size(); }

  [[nodiscard]] double max_expected_cost() const {
    double quantum = 1e-9;
    for (const auto& [name, state] : tenants_) {
      quantum = std::max(quantum, state.stats.expected_cost);
    }
    return quantum;
  }

  std::map<std::string, TenantState> tenants_;
  std::vector<std::string> ring_;  ///< visit order (registration order)
  std::size_t cursor_ = 0;
  std::size_t queued_ = 0;
  double default_weight_ = 1.0;
  std::size_t default_queue_cap_ = 64;
};

}  // namespace dovado::serve
