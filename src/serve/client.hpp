// Thin synchronous client for the `dovado serve` daemon.
//
// One connection, one outstanding request at a time: request() frames the
// request, then reads frames until the response carrying the request's id
// arrives (responses to other ids — possible after reconnect races — are
// discarded). Used by `dovado client`, `dovado top`, the serve tests and
// the request-path bench; heavier clients can speak the wire protocol
// (protocol.hpp) directly.
#pragma once

#include <cstdint>
#include <string>

#include "src/serve/protocol.hpp"
#include "src/util/socket.hpp"

namespace dovado::serve {

class Client {
 public:
  Client() = default;

  /// Connect to a daemon's Unix-domain socket.
  [[nodiscard]] bool connect(const std::string& socket_path, std::string& error);

  [[nodiscard]] bool connected() const { return sock_.valid(); }
  void close() { sock_.close(); }

  /// Send one request and block for its response. A request without an id
  /// gets an auto-assigned one. `timeout_ms` bounds each socket wait
  /// (-1 = no timeout); campaigns should pass a generous value, their
  /// response only arrives when the budget is spent.
  [[nodiscard]] bool request(Request request, Response& response,
                             std::string& error, int timeout_ms = -1);

  /// Convenience wrappers over request().
  [[nodiscard]] bool ping(std::string& error, int timeout_ms = 5000);
  [[nodiscard]] bool eval(const std::string& tenant, const core::DesignPoint& point,
                          double deadline_tool_seconds, Response& response,
                          std::string& error, int timeout_ms = -1);
  [[nodiscard]] bool stats(std::string& stats_json, std::string& error,
                           int timeout_ms = 5000);

 private:
  util::LineSocket sock_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dovado::serve
