// Per-tenant admission control: request-rate token buckets plus post-paid
// tool-second quotas.
//
// Admission is the *first* gate a request passes (before the fair-share
// scheduler even sees it): a tenant above its request rate or out of
// tool-second quota is answered immediately with `shed` + retry_after_ms —
// never queued — so an abusive client cannot consume memory, only wire
// bytes. Time is injected (seconds, any monotonic origin) so every policy
// decision is deterministic under test.
//
// The tool-second quota is post-paid: an evaluation's cost is only known
// when it finishes, so admit() requires the bucket to be non-negative and
// charge() deducts the actual cost afterwards (the level may go negative —
// the tenant then sheds until the refill rate pays the debt off). This
// bounds any tenant's overdraft to one in-flight batch of evaluations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dovado::serve {

/// A standard token bucket over injected time. `rate` tokens/second refill
/// up to `burst`; the level may be driven negative by charge().
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate, double burst, double now)
      : rate_(rate), burst_(burst), level_(burst), last_(now) {}

  /// Take `amount` tokens if the (refilled) level covers it.
  [[nodiscard]] bool try_take(double amount, double now);

  /// Deduct `amount` unconditionally (post-paid charge; may go negative).
  void charge(double amount, double now);

  /// Seconds until the level reaches `target` at the refill rate
  /// (0 when already there; a large sentinel when rate is 0).
  [[nodiscard]] double seconds_until(double target, double now) const;

  [[nodiscard]] double level(double now) const;
  [[nodiscard]] double rate() const { return rate_; }

 private:
  void refill(double now);

  double rate_ = 0.0;
  double burst_ = 0.0;
  double level_ = 0.0;
  double last_ = 0.0;
};

/// Per-tenant limits. Zero rates mean "unlimited" for that dimension.
struct TenantPolicy {
  double weight = 1.0;             ///< fair-share weight (scheduler)
  double request_rate = 0.0;       ///< admissions/second; 0 = unlimited
  double request_burst = 0.0;      ///< bucket depth; 0 => max(1, request_rate)
  double tool_seconds_rate = 0.0;  ///< quota refill, tool-seconds/second
  double tool_seconds_burst = 0.0; ///< quota depth; 0 => 10 * rate (min 1)
  std::size_t queue_cap = 64;      ///< bounded per-tenant queue (scheduler)
};

struct AdmissionDecision {
  bool admitted = false;
  std::int64_t retry_after_ms = 0;  ///< meaningful when !admitted
  std::string reason;               ///< "request_rate" or "tool_quota"
};

struct TenantAdmissionStats {
  std::size_t admitted = 0;
  std::size_t shed_request_rate = 0;
  std::size_t shed_tool_quota = 0;
  double tool_seconds_charged = 0.0;
};

/// Not thread-safe: the server serializes calls under its own lock.
class AdmissionController {
 public:
  explicit AdmissionController(TenantPolicy default_policy)
      : default_policy_(default_policy) {}

  /// Pin a tenant to an explicit policy (otherwise the default applies on
  /// first contact).
  void set_policy(const std::string& tenant, const TenantPolicy& policy, double now);

  [[nodiscard]] const TenantPolicy& policy(const std::string& tenant) const;

  /// Decide admission for one request at time `now` (seconds).
  [[nodiscard]] AdmissionDecision admit(const std::string& tenant, double now);

  /// Post-paid quota charge for a finished evaluation.
  void charge_tool_seconds(const std::string& tenant, double seconds, double now);

  [[nodiscard]] std::map<std::string, TenantAdmissionStats> stats() const;

 private:
  struct TenantState {
    TenantPolicy policy;
    TokenBucket requests;
    TokenBucket tool_seconds;
    TenantAdmissionStats stats;
  };

  TenantState& state_for(const std::string& tenant, double now);

  TenantPolicy default_policy_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace dovado::serve
