// Structural netlist intermediate representation.
//
// The simulated toolchain needs something to synthesize. Elaboration maps
// (module, concrete parameters) to a Netlist: aggregate logic resources,
// candidate memories (the technology mapper later decides BRAM vs
// distributed RAM) and register-to-register timing path groups. The case
// studies' generators (generators.hpp) encode the published structure of
// each architecture so utilization and frequency respond to parameters the
// way the real designs do.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/hdl/expr.hpp"

namespace dovado::netlist {

/// A memory array inferred from the RTL. The mapper decides its physical
/// form (BRAM / distributed LUT RAM / flip-flops).
struct Memory {
  std::string name;
  std::int64_t depth = 0;  ///< entries
  std::int64_t width = 0;  ///< bits per entry
  bool dual_port = true;   ///< simple dual port (1W1R) unless stated
  bool prefer_registers = false;  ///< RTL style forces FF implementation
  bool prefer_block = false;      ///< RTL ram_style attribute forces BRAM

  [[nodiscard]] std::int64_t bits() const { return depth * width; }
};

/// A group of register-to-register timing paths with similar structure.
/// The timing engine turns these into delays using the device parameters.
struct PathGroup {
  std::string name;
  int logic_levels = 1;      ///< LUT levels between launch and capture FF
  bool from_bram = false;    ///< launched by a BRAM synchronous read
  bool through_dsp = false;  ///< passes through a DSP slice
  double avg_fanout = 4.0;   ///< average net fanout along the path
};

/// Aggregate structural netlist of one elaborated design.
struct Netlist {
  std::string top;
  std::int64_t luts = 0;  ///< combinational logic, in LUT6 equivalents
  std::int64_t ffs = 0;   ///< register bits (excluding memories)
  std::int64_t dsps = 0;
  std::vector<Memory> memories;
  std::vector<PathGroup> paths;

  /// Total memory bits across all arrays.
  [[nodiscard]] std::int64_t memory_bits() const {
    std::int64_t total = 0;
    for (const auto& m : memories) total += m.bits();
    return total;
  }

  /// Deepest combinational path group (levels), 1 if none recorded.
  [[nodiscard]] int max_logic_levels() const {
    int levels = 1;
    for (const auto& p : paths) levels = std::max(levels, p.logic_levels);
    return levels;
  }

  /// Merge another netlist into this one (hierarchical composition).
  void absorb(const Netlist& other);
};

/// Read-multiplexer cost of a D-deep, W-wide register-file read port, in
/// LUT6 equivalents (a LUT6 covers a 4:1 mux).
[[nodiscard]] std::int64_t mux_luts(std::int64_t depth, std::int64_t width);

/// Logic levels of a D:1 multiplexer tree built from 4:1 stages.
[[nodiscard]] int mux_levels(std::int64_t depth);

/// A netlist generator: elaborates a module for a concrete parameter
/// environment. Generators must be pure functions of the environment.
using Generator = std::function<Netlist(const hdl::ExprEnv&)>;

/// Registry mapping module names (case-insensitive) to generators. The four
/// case studies plus a few simple modules register themselves at startup;
/// hosts may register additional designs.
class GeneratorRegistry {
 public:
  /// Register a generator under a module name; replaces any existing one.
  static void register_generator(const std::string& module_name, Generator gen);

  /// Find the generator for a module; std::nullopt if unknown.
  [[nodiscard]] static std::optional<Generator> find(const std::string& module_name);

  /// Names of all registered modules (sorted).
  [[nodiscard]] static std::vector<std::string> registered();
};

/// Ensure the built-in generators (case studies + simple modules) are
/// registered. Called lazily by GeneratorRegistry::find; exposed for tests.
void register_builtin_generators();

}  // namespace dovado::netlist
