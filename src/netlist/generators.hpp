// Built-in netlist generators for the paper's four case studies and a few
// generic modules used in tests/examples.
//
// Each generator encodes the published structure of its architecture as a
// function of the module parameters, so that the simulated synthesis sees
// utilization/timing surfaces with the same shape the paper reports:
//   - cv32e40p_fifo: FF-based storage (linear FF growth with DEPTH), read
//     multiplexer LUTs, pointer logic (Sec. IV-A).
//   - cpl_queue_manager: BRAM-backed queue state (constant BRAM across the
//     explored range), op-table CAM in FF/LUTs, deeper pipelines trading
//     registers for frequency (Sec. IV-B, Fig. 4, Table I).
//   - neorv32_top: fixed core plus BRAM instruction/data memories; the BRAM
//     count jumps with the power-of-two memory sizes (Sec. IV-C, Fig. 5).
//   - tirex_top: per-cluster datapath replication, stack + memories, with a
//     control-dominated critical path (Sec. IV-D, Figs. 6-7, Table II).
#pragma once

#include "src/netlist/ir.hpp"

namespace dovado::netlist {

/// Individual generators (also reachable through GeneratorRegistry by the
/// RTL module name). Exposed directly for unit tests.
[[nodiscard]] Netlist generate_cv32e40p_fifo(const hdl::ExprEnv& env);
[[nodiscard]] Netlist generate_cpl_queue_manager(const hdl::ExprEnv& env);
[[nodiscard]] Netlist generate_neorv32_top(const hdl::ExprEnv& env);
[[nodiscard]] Netlist generate_tirex_top(const hdl::ExprEnv& env);

/// Generic helpers registered for tests/examples: "counter" (WIDTH),
/// "shift_reg" (DEPTH, WIDTH) and "pipelined_mac" (STAGES, WIDTH).
[[nodiscard]] Netlist generate_counter(const hdl::ExprEnv& env);
[[nodiscard]] Netlist generate_shift_reg(const hdl::ExprEnv& env);
[[nodiscard]] Netlist generate_pipelined_mac(const hdl::ExprEnv& env);

/// Extension workloads (rtl/systolic_mm.sv, rtl/axis_switch.v):
///   - systolic_mm (ROWS, COLS, DATA_W): DSP-dominated output-stationary
///     array, one DSP-mapped MAC per processing element;
///   - axis_switch (PORTS, DATA_W, FIFO_DEPTH): interconnect whose
///     arbitration/mux logic grows ~quadratically with the port count.
[[nodiscard]] Netlist generate_systolic_mm(const hdl::ExprEnv& env);
[[nodiscard]] Netlist generate_axis_switch(const hdl::ExprEnv& env);

/// Fetch an integer parameter with a fallback default.
[[nodiscard]] std::int64_t param_or(const hdl::ExprEnv& env, const char* name,
                                    std::int64_t fallback);

}  // namespace dovado::netlist
