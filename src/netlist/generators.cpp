#include "src/netlist/generators.hpp"

#include <algorithm>
#include <mutex>

namespace dovado::netlist {

std::int64_t param_or(const hdl::ExprEnv& env, const char* name, std::int64_t fallback) {
  return env.get(name).value_or(fallback);
}

namespace {

std::int64_t clamp_pos(std::int64_t v, std::int64_t lo = 1) { return std::max(v, lo); }

}  // namespace

Netlist generate_cv32e40p_fifo(const hdl::ExprEnv& env) {
  const std::int64_t depth = clamp_pos(param_or(env, "DEPTH", 8));
  const std::int64_t width = clamp_pos(param_or(env, "DATA_WIDTH", 32));
  const bool fall_through = param_or(env, "FALL_THROUGH", 0) != 0;
  const std::int64_t ptr_w = std::max<std::int64_t>(hdl::clog2(depth), 1);

  Netlist n;
  n.top = "cv32e40p_fifo";

  // Storage: fifo_v3 keeps mem_q in flip-flops (no RAM inference), so FF
  // usage grows linearly in DEPTH*WIDTH and the read path is a wide mux.
  Memory mem;
  mem.name = "mem_q";
  mem.depth = depth;
  mem.width = width;
  mem.prefer_registers = true;
  n.memories.push_back(mem);

  // Pointers + status counter (each ptr_w..ptr_w+1 bits) and their
  // increment/compare logic.
  n.ffs += 2 * ptr_w + (ptr_w + 1);
  n.luts += 3 * (ptr_w + 1) + 4;  // two incrementers, wrap compares, flags

  // Write-enable decode: one LUT per 4 rows.
  n.luts += (depth + 3) / 4;

  // Fall-through adds a 2:1 bypass mux on the output data.
  if (fall_through) n.luts += (width + 1) / 2;

  // Critical path: read-pointer FF -> read mux tree -> (bypass) -> data out
  // register of the consumer; plus the pointer-update path.
  PathGroup read_path;
  read_path.name = "mem_read_mux";
  read_path.logic_levels = mux_levels(depth) + (fall_through ? 1 : 0) + 1;
  read_path.avg_fanout = 4.0 + static_cast<double>(width) / 16.0;
  n.paths.push_back(read_path);

  PathGroup ptr_path;
  ptr_path.name = "pointer_update";
  ptr_path.logic_levels = 2 + mux_levels(ptr_w);
  ptr_path.avg_fanout = static_cast<double>(depth) / 8.0 + 2.0;  // we fan to all rows
  n.paths.push_back(ptr_path);
  return n;
}

Netlist generate_cpl_queue_manager(const hdl::ExprEnv& env) {
  const std::int64_t op_table = clamp_pos(param_or(env, "OP_TABLE_SIZE", 16));
  const std::int64_t queue_iw = clamp_pos(param_or(env, "QUEUE_INDEX_WIDTH", 8));
  const std::int64_t pipeline = clamp_pos(param_or(env, "PIPELINE", 2));
  const std::int64_t ptr_w = clamp_pos(param_or(env, "QUEUE_PTR_WIDTH", 16));
  const std::int64_t tag_w = clamp_pos(param_or(env, "REQ_TAG_WIDTH", 8));
  const std::int64_t ram_w = 128;  // queue state record width (localparam)
  const std::int64_t op_tag_w = std::max<std::int64_t>(hdl::clog2(op_table), 1);

  Netlist n;
  n.top = "cpl_queue_manager";

  // Queue state RAM: one 128-bit record per queue; always inferred as block
  // RAM by the tool. Across the explored QUEUE_INDEX_WIDTH range its
  // physical footprint is the same number of BRAMs (width-dominated), which
  // is exactly the constant-BRAM behaviour Fig. 4 shows.
  Memory ram;
  ram.name = "queue_ram";
  ram.depth = std::int64_t{1} << queue_iw;
  ram.width = ram_w;
  ram.dual_port = true;
  ram.prefer_block = true;  // upstream uses a block-RAM style attribute
  n.memories.push_back(ram);

  // Operation table: CAM-like structure held in FFs with per-entry valid/
  // commit bits plus queue/pointer fields.
  n.ffs += op_table * (queue_iw + ptr_w + 2);
  // Allocation/retire logic: per-entry compare + head/tail pointers.
  n.luts += op_table * 2 + 4 * op_tag_w + 8;
  // Table read muxes (retire path reads queue and pointer fields).
  n.luts += mux_luts(op_table, queue_iw + ptr_w);

  // Per-stage pipeline registers (data + queue index + valid).
  n.ffs += pipeline * (ram_w + queue_iw + 1);
  // Response/event output registers and AXIS handshake logic.
  n.ffs += ptr_w + op_tag_w + queue_iw + tag_w + 4;
  n.luts += 24;

  // Timing: the enqueue datapath has a fixed amount of combinational work
  // (op-table match, pointer arithmetic, record update) that the PIPELINE
  // parameter spreads across stages; deeper pipelines shorten the levels
  // per stage with diminishing returns (retiming cannot split the RAM
  // access or the final priority encoder).
  const int total_levels = 2 * mux_levels(op_table) + 12;
  const int per_stage =
      std::max<int>(4, static_cast<int>((total_levels + pipeline - 1) / pipeline) + 1);
  PathGroup datapath;
  datapath.name = "enqueue_datapath";
  datapath.logic_levels = per_stage;
  datapath.avg_fanout = 4.0 + static_cast<double>(op_table) / 12.0;
  n.paths.push_back(datapath);

  PathGroup ram_read;
  ram_read.name = "queue_ram_read";
  ram_read.logic_levels = 2;
  ram_read.from_bram = true;
  ram_read.avg_fanout = 3.0;
  n.paths.push_back(ram_read);
  return n;
}

Netlist generate_neorv32_top(const hdl::ExprEnv& env) {
  const std::int64_t imem_bytes = clamp_pos(param_or(env, "MEM_INT_IMEM_SIZE", 16384));
  const std::int64_t dmem_bytes = clamp_pos(param_or(env, "MEM_INT_DMEM_SIZE", 8192));
  const std::int64_t icache_blocks = param_or(env, "ICACHE_NUM_BLOCKS", 4);
  const bool m_ext = param_or(env, "CPU_EXTENSION_RISCV_M", 1) != 0;
  const std::int64_t hpm = param_or(env, "HPM_NUM_CNTS", 0);

  Netlist n;
  n.top = "neorv32_top";

  // Fixed 4-stage in-order rv32 core (regfile in LUTRAM, CSRs, bus switch,
  // UART/GPIO peripherals): calibrated against published neorv32 numbers.
  n.luts += 2350;
  n.ffs += 1900;

  // Register file: 32 x 32 simple dual port, distributed RAM.
  Memory regfile;
  regfile.name = "regfile";
  regfile.depth = 32;
  regfile.width = 32;
  n.memories.push_back(regfile);

  if (m_ext) {
    // Serial mul/div unit (LUT-based, no DSP in the default configuration).
    n.luts += 620;
    n.ffs += 180;
  }
  if (icache_blocks > 0) {
    n.luts += 150 + 40 * hdl::clog2(icache_blocks);
    n.ffs += 90;
    Memory icache;
    icache.name = "icache";
    icache.depth = icache_blocks * 64;
    icache.width = 32;
    n.memories.push_back(icache);
  }
  n.luts += hpm * 90;
  n.ffs += hpm * 64;

  // Internal instruction and data memories: 32-bit wide, byte capacity set
  // by the generics. These dominate BRAM usage and produce the step change
  // Fig. 5 highlights when a size crosses a BRAM cascading boundary.
  Memory imem;
  imem.name = "imem";
  imem.depth = imem_bytes / 4;
  imem.width = 32;
  n.memories.push_back(imem);

  Memory dmem;
  dmem.name = "dmem";
  dmem.depth = dmem_bytes / 4;
  dmem.width = 32;
  n.memories.push_back(dmem);

  // Critical paths: instruction fetch from BRAM through decode, and the ALU
  // + forwarding path. Deeper memories add address-decode/cascade levels.
  const int imem_extra = std::max<int>(0, static_cast<int>(hdl::clog2(imem_bytes / 4)) - 10);
  PathGroup fetch;
  fetch.name = "imem_fetch_decode";
  fetch.logic_levels = 5 + imem_extra;
  fetch.from_bram = true;
  fetch.avg_fanout = 6.0;
  n.paths.push_back(fetch);

  PathGroup alu;
  alu.name = "execute_alu";
  alu.logic_levels = 11;
  alu.avg_fanout = 5.0;
  n.paths.push_back(alu);
  return n;
}

Netlist generate_tirex_top(const hdl::ExprEnv& env) {
  const std::int64_t nclusters = clamp_pos(param_or(env, "NCLUSTER", 1));
  const std::int64_t stack_size = clamp_pos(param_or(env, "STACK_SIZE", 16));
  const std::int64_t imem_kinstr = clamp_pos(param_or(env, "INSTR_MEM_SIZE", 8));
  const std::int64_t dmem_kb = clamp_pos(param_or(env, "DATA_MEM_SIZE", 16));
  const std::int64_t instr_w = 16 * nclusters;

  Netlist n;
  n.top = "tirex_top";

  // Control unit: fetch/dispatch, context-switch management.
  n.luts += 540 + 8 * hdl::clog2(stack_size);
  n.ffs += 260;

  // Matching clusters: each processes a 16-bit instruction slice.
  n.luts += nclusters * 340;
  n.ffs += nclusters * 190;

  // Context-switch stack (32-bit entries). Small stacks land in LUTRAM.
  Memory stack;
  stack.name = "ctx_stack";
  stack.depth = stack_size;
  stack.width = 32;
  n.memories.push_back(stack);

  // Instruction memory: depth in K-instructions, width scales with the
  // cluster count (wide-instruction VLIW-style scaling).
  Memory imem;
  imem.name = "instr_mem";
  imem.depth = imem_kinstr * 1024;
  imem.width = instr_w;
  n.memories.push_back(imem);

  Memory dmem;
  dmem.name = "data_mem";
  dmem.depth = dmem_kb * 1024 / 4;
  dmem.width = 32;
  n.memories.push_back(dmem);

  // Critical path: instruction fetch from BRAM into the cluster compare
  // network; wide instructions add mux/fanout pressure, deep stacks add a
  // level on the context-switch path.
  PathGroup fetch;
  fetch.name = "fetch_dispatch";
  fetch.logic_levels = 4 + static_cast<int>(hdl::clog2(nclusters));
  fetch.from_bram = true;
  fetch.avg_fanout = 4.0 + static_cast<double>(nclusters);
  n.paths.push_back(fetch);

  PathGroup control;
  control.name = "control_unit";
  control.logic_levels = 9 + static_cast<int>(hdl::clog2(stack_size) / 4);
  control.avg_fanout = 5.0;
  n.paths.push_back(control);
  return n;
}

Netlist generate_counter(const hdl::ExprEnv& env) {
  const std::int64_t width = clamp_pos(param_or(env, "WIDTH", 8));
  Netlist n;
  n.top = "counter";
  n.ffs += width;
  n.luts += width;  // carry-chain increment packs roughly 1 LUT/bit
  PathGroup carry;
  carry.name = "carry_chain";
  carry.logic_levels = 1 + static_cast<int>(width / 16);  // long chains slow down
  carry.avg_fanout = 2.0;
  n.paths.push_back(carry);
  return n;
}

Netlist generate_shift_reg(const hdl::ExprEnv& env) {
  const std::int64_t depth = clamp_pos(param_or(env, "DEPTH", 16));
  const std::int64_t width = clamp_pos(param_or(env, "WIDTH", 8));
  Netlist n;
  n.top = "shift_reg";
  n.ffs += depth * width;
  n.luts += width;
  PathGroup p;
  p.name = "shift";
  p.logic_levels = 1;
  p.avg_fanout = 2.0;
  n.paths.push_back(p);
  return n;
}

Netlist generate_pipelined_mac(const hdl::ExprEnv& env) {
  const std::int64_t stages = clamp_pos(param_or(env, "STAGES", 3));
  const std::int64_t width = clamp_pos(param_or(env, "WIDTH", 18));
  Netlist n;
  n.top = "pipelined_mac";
  // One DSP48 per 18x18 partial product.
  const std::int64_t dsp_tiles = ((width + 17) / 18) * ((width + 17) / 18);
  n.dsps += dsp_tiles;
  n.ffs += stages * 2 * width;
  n.luts += dsp_tiles * 12;  // partial-product alignment
  PathGroup p;
  p.name = "mac";
  p.logic_levels = std::max<int>(1, static_cast<int>(6 / stages));
  p.through_dsp = true;
  p.avg_fanout = 3.0;
  n.paths.push_back(p);
  return n;
}

Netlist generate_systolic_mm(const hdl::ExprEnv& env) {
  const std::int64_t rows = clamp_pos(param_or(env, "ROWS", 4));
  const std::int64_t cols = clamp_pos(param_or(env, "COLS", 4));
  const std::int64_t data_w = clamp_pos(param_or(env, "DATA_W", 16));
  const std::int64_t acc_w = clamp_pos(param_or(env, "ACC_W", 2 * data_w + 8));
  const std::int64_t pes = rows * cols;

  Netlist n;
  n.top = "systolic_mm";
  // One MAC per PE; DATA_W > 18 needs DSP tiling like pipelined_mac.
  const std::int64_t dsp_per_pe = ((data_w + 17) / 18) * ((data_w + 17) / 18);
  n.dsps += pes * dsp_per_pe;
  // Wavefront registers (a/b pipes) + accumulators + drain mux output regs.
  n.ffs += pes * (2 * data_w + acc_w) + cols * acc_w;
  // Accumulator adders beyond the DSP pre-adder plus drain mux.
  n.luts += pes * (acc_w / 4) + mux_luts(rows, cols * acc_w) / 4 + 20;

  PathGroup mac;
  mac.name = "pe_mac";
  mac.logic_levels = 2;
  mac.through_dsp = true;
  mac.avg_fanout = 3.0;
  n.paths.push_back(mac);

  PathGroup drain;
  drain.name = "drain_mux";
  drain.logic_levels = 1 + mux_levels(rows);
  drain.avg_fanout = 4.0;
  n.paths.push_back(drain);
  return n;
}

Netlist generate_axis_switch(const hdl::ExprEnv& env) {
  const std::int64_t ports = clamp_pos(param_or(env, "PORTS", 4));
  const std::int64_t data_w = clamp_pos(param_or(env, "DATA_W", 64));
  const std::int64_t fifo_depth = clamp_pos(param_or(env, "FIFO_DEPTH", 32));
  const std::int64_t cnt_w = std::max<std::int64_t>(hdl::clog2(ports), 1);

  Netlist n;
  n.top = "axis_switch";
  // Per-output data mux over all inputs: the quadratic term.
  n.luts += ports * mux_luts(ports, data_w);
  // Arbitration: per output, compare each input's tdest (cnt_w bits) and
  // priority-resolve.
  n.luts += ports * ports * (cnt_w + 1) / 2 + ports * 8;
  n.ffs += ports * (cnt_w + 1 + cnt_w + 1);  // grant + granted + counters

  // Per-input output FIFO.
  Memory fifo;
  fifo.name = "port_fifo";
  fifo.depth = ports * fifo_depth;
  fifo.width = data_w;
  n.memories.push_back(fifo);

  PathGroup arb;
  arb.name = "arbitration";
  // Priority chain over the ports plus the data mux.
  arb.logic_levels = 2 + static_cast<int>((ports + 3) / 4) + mux_levels(ports);
  arb.avg_fanout = 3.0 + static_cast<double>(ports) / 2.0;
  n.paths.push_back(arb);
  return n;
}

void register_builtin_generators() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    GeneratorRegistry::register_generator("cv32e40p_fifo", generate_cv32e40p_fifo);
    GeneratorRegistry::register_generator("cpl_queue_manager", generate_cpl_queue_manager);
    GeneratorRegistry::register_generator("neorv32_top", generate_neorv32_top);
    GeneratorRegistry::register_generator("tirex_top", generate_tirex_top);
    GeneratorRegistry::register_generator("counter", generate_counter);
    GeneratorRegistry::register_generator("shift_reg", generate_shift_reg);
    GeneratorRegistry::register_generator("pipelined_mac", generate_pipelined_mac);
    GeneratorRegistry::register_generator("systolic_mm", generate_systolic_mm);
    GeneratorRegistry::register_generator("axis_switch", generate_axis_switch);
  });
}

}  // namespace dovado::netlist
