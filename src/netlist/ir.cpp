#include "src/netlist/ir.hpp"

#include <algorithm>
#include <map>

#include "src/util/strings.hpp"
#include "src/util/sync.hpp"

namespace dovado::netlist {

void Netlist::absorb(const Netlist& other) {
  luts += other.luts;
  ffs += other.ffs;
  dsps += other.dsps;
  memories.insert(memories.end(), other.memories.begin(), other.memories.end());
  paths.insert(paths.end(), other.paths.begin(), other.paths.end());
}

std::int64_t mux_luts(std::int64_t depth, std::int64_t width) {
  if (depth <= 1 || width <= 0) return 0;
  // A 4:1 mux fits one LUT6; a D:1 tree needs ceil((D-1)/3) of them per bit.
  return width * ((depth - 1 + 2) / 3);
}

int mux_levels(std::int64_t depth) {
  if (depth <= 1) return 0;
  int levels = 0;
  std::int64_t remaining = depth;
  while (remaining > 1) {
    remaining = (remaining + 3) / 4;
    ++levels;
  }
  return levels;
}

namespace {

std::map<std::string, Generator>& registry() {
  static std::map<std::string, Generator> instance;
  return instance;
}

util::Mutex& registry_mutex() {
  static util::Mutex m{"GeneratorRegistry"};
  return m;
}

}  // namespace

void GeneratorRegistry::register_generator(const std::string& module_name, Generator gen) {
  util::MutexLock lock(registry_mutex());
  registry()[util::to_lower(module_name)] = std::move(gen);
}

std::optional<Generator> GeneratorRegistry::find(const std::string& module_name) {
  register_builtin_generators();
  util::MutexLock lock(registry_mutex());
  auto it = registry().find(util::to_lower(module_name));
  if (it == registry().end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> GeneratorRegistry::registered() {
  register_builtin_generators();
  util::MutexLock lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, gen] : registry()) names.push_back(name);
  return names;
}

}  // namespace dovado::netlist
