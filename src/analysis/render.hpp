// Diagnostic renderers: the compiler-style text form and a machine-readable
// JSON form (`dovado lint --lint-format json`).
#pragma once

#include <string>

#include "src/analysis/diagnostic.hpp"

namespace dovado::analysis {

/// "file:line:col: severity[rule-id]: message" per diagnostic, notes
/// indented beneath, plus a one-line summary tail.
[[nodiscard]] std::string render_text(const LintReport& report);

/// {"diagnostics": [...], "errors": N, "warnings": N, "exit_code": N}.
[[nodiscard]] std::string render_json(const LintReport& report);

}  // namespace dovado::analysis
