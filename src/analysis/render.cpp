#include "src/analysis/render.hpp"

#include "src/util/json.hpp"
#include "src/util/strings.hpp"

namespace dovado::analysis {

std::string render_text(const LintReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) {
    if (!d.file.empty()) {
      out += d.file;
      if (d.loc.line > 0) {
        out += ':';
        out += std::to_string(d.loc.line);
        if (d.loc.col > 0) {
          out += ':';
          out += std::to_string(d.loc.col);
        }
      }
      out += ": ";
    }
    out += severity_name(d.severity);
    out += '[';
    out += d.rule_id;
    out += "]: ";
    out += d.message;
    out += '\n';
    if (!d.note.empty()) {
      out += "  note: ";
      out += d.note;
      out += '\n';
    }
  }
  out += util::format("%zu error(s), %zu warning(s), %zu note(s)\n", report.errors(),
                      report.warnings(), report.count(Severity::kNote));
  return out;
}

std::string render_json(const LintReport& report) {
  util::JsonArray diags;
  for (const auto& d : report.diagnostics) {
    util::JsonObject obj;
    obj["severity"] = severity_name(d.severity);
    obj["rule"] = d.rule_id;
    obj["file"] = d.file;
    obj["line"] = static_cast<std::int64_t>(d.loc.line);
    obj["col"] = static_cast<std::int64_t>(d.loc.col);
    obj["message"] = d.message;
    if (!d.note.empty()) obj["note"] = d.note;
    diags.emplace_back(std::move(obj));
  }
  util::JsonObject root;
  root["diagnostics"] = std::move(diags);
  root["errors"] = report.errors();
  root["warnings"] = report.warnings();
  root["notes"] = report.count(Severity::kNote);
  root["exit_code"] = static_cast<std::int64_t>(report.exit_code());
  return util::Json(std::move(root)).dump(2) + "\n";
}

}  // namespace dovado::analysis
