#include "src/analysis/space_lint.hpp"

#include <set>

#include "src/edatool/backend.hpp"
#include "src/util/strings.hpp"

namespace dovado::analysis {

namespace {

/// Metric vocabulary of the chosen backends (union over every registered
/// backend when none are named). Registry failures degrade to the standard
/// vocabulary rather than aborting the lint.
std::set<std::string> backend_metric_vocabulary(const std::vector<std::string>& backends) {
  std::set<std::string> vocabulary;
  const std::vector<std::string> names =
      backends.empty() ? edatool::BackendRegistry::names() : backends;
  for (const auto& name : names) {
    try {
      const auto backend = edatool::BackendRegistry::create(name);
      for (const auto& metric : backend->metric_names()) vocabulary.insert(metric);
    } catch (const std::exception&) {
      for (const auto& metric : edatool::standard_metric_names()) {
        vocabulary.insert(metric);
      }
    }
  }
  return vocabulary;
}

/// Descending arithmetic-range detection from the raw CLI spec. The domain
/// constructor silently swaps `256:8` into `8:256`, so by the time a
/// ParamDomain exists the contradiction is gone — only the raw text knows.
void lint_raw_specs(const std::vector<std::string>& specs, const std::string& where,
                    LintReport& report) {
  for (const auto& spec : specs) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // CLI parser rejects
    const std::string name = spec.substr(0, eq);
    const auto parts = util::split(spec.substr(eq + 1), ':');
    if (parts.size() < 2 || parts.size() > 3) continue;
    if (parts[0] == "pow2" || parts[0] == "vals") continue;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    long long l = 0;
    long long h = 0;
    if (!util::parse_int(parts[0], l) || !util::parse_int(parts[1], h)) continue;
    lo = l;
    hi = h;
    if (lo > hi) {
      report.add(Severity::kError, "space-descending-range", where, {},
                 "range of parameter '" + name + "' is descending (" + parts[0] + ":" +
                     parts[1] + ")",
                 "write it as " + parts[1] + ":" + parts[0] +
                     " — descending bounds are a contradiction, not a direction");
    }
  }
}

}  // namespace

void lint_design_space(const core::DesignSpace& space,
                       const std::vector<core::Objective>& objectives,
                       const std::vector<core::DerivedMetric>& derived,
                       const SpaceLintOptions& options, const std::string& where,
                       LintReport& report) {
  // --- parameter names -----------------------------------------------------
  for (std::size_t i = 0; i < space.params.size(); ++i) {
    for (std::size_t j = i + 1; j < space.params.size(); ++j) {
      const std::string& a = space.params[i].name;
      const std::string& b = space.params[j].name;
      if (a == b) {
        report.add(Severity::kError, "space-duplicate-param", where, {},
                   "parameter '" + b + "' appears twice in the design space");
      } else if (util::iequals(a, b)) {
        report.add(Severity::kWarning, "space-shadowed-param", where, {},
                   "parameters '" + a + "' and '" + b + "' differ only by case",
                   "Verilog is case-sensitive but VHDL and many tools are not; one "
                   "will shadow the other");
      }
    }
  }

  if (!options.module_params.empty()) {
    for (const auto& param : space.params) {
      bool found = false;
      for (const auto& known : options.module_params) {
        if (known == param.name) found = true;
      }
      if (!found) {
        const std::string suggestion =
            util::closest_match(param.name, options.module_params);
        report.add(Severity::kError, "space-unknown-param", where, {},
                   "free parameter '" + param.name +
                       "' does not exist on the top module",
                   suggestion.empty() ? std::string()
                                      : "did you mean '" + suggestion + "'?");
      }
    }
  }

  // --- domains -------------------------------------------------------------
  for (const auto& param : space.params) {
    const core::ParamDomain& domain = param.domain;
    if (domain.size() == 1) {
      report.add(Severity::kWarning, "space-singleton-domain", where, {},
                 "domain of parameter '" + param.name + "' is the single value " +
                     std::to_string(domain.value_at(0)),
                 "a one-point domain adds a dimension the optimizer cannot move in; "
                 "hard-code the value instead");
    }
    if (domain.kind() == core::ParamDomain::Kind::kRange &&
        domain.range_step() > 1 &&
        (domain.range_hi() - domain.range_lo()) % domain.range_step() != 0) {
      const std::int64_t reachable = domain.max_value();
      report.add(Severity::kWarning, "space-step-unreachable", where, {},
                 "upper bound " + std::to_string(domain.range_hi()) +
                     " of parameter '" + param.name + "' is unreachable with step " +
                     std::to_string(domain.range_step()) + " (last value is " +
                     std::to_string(reachable) + ")");
    }
  }

  lint_raw_specs(options.raw_param_specs, where, report);

  // --- objectives & derived metrics ----------------------------------------
  const std::set<std::string> vocabulary = backend_metric_vocabulary(options.backends);

  for (const auto& metric : derived) {
    if (vocabulary.count(metric.name) > 0) {
      report.add(Severity::kError, "space-derived-shadows-metric", where, {},
                 "derived metric '" + metric.name +
                     "' has the same name as a backend metric",
                 "the derived value would silently overwrite the tool's report; "
                 "pick a distinct name");
    }
  }

  std::set<std::string> known = vocabulary;
  for (const auto& metric : derived) known.insert(metric.name);

  std::set<std::string> seen_objectives;
  for (const auto& objective : objectives) {
    if (known.count(objective.metric) == 0) {
      const std::vector<std::string> candidates(known.begin(), known.end());
      const std::string suggestion = util::closest_match(objective.metric, candidates);
      report.add(Severity::kError, "space-metric-unknown", where, {},
                 "objective metric '" + objective.metric +
                     "' is not reported by any selected backend",
                 suggestion.empty() ? std::string()
                                    : "did you mean '" + suggestion + "'?");
    }
    if (!seen_objectives.insert(objective.metric).second) {
      report.add(Severity::kWarning, "space-objective-duplicate", where, {},
                 "objective metric '" + objective.metric + "' is listed twice");
    }
  }
}

}  // namespace dovado::analysis
