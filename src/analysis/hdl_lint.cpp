#include "src/analysis/hdl_lint.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "src/hdl/expr.hpp"
#include "src/hdl/structure.hpp"
#include "src/util/strings.hpp"

namespace dovado::analysis {

namespace {

/// Number of bits needed to represent `value` as an unsigned quantity
/// (negative values report the width of their magnitude plus a sign bit).
int bits_needed(std::int64_t value) {
  if (value < 0) value = -(value + 1);
  int bits = 0;
  while (value > 0) {
    ++bits;
    value >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

/// Iterative Tarjan SCC over the continuous-assign net graph. Returns the
/// components with more than one node, plus self-loop singletons.
std::vector<std::vector<std::string>> comb_cycles(
    const std::map<std::string, std::vector<std::string>>& edges) {
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> cycles;
  int counter = 0;

  struct Frame {
    std::string node;
    std::size_t next_edge = 0;
  };

  for (const auto& [start, _] : edges) {
    if (index.count(start) > 0) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    index[start] = low[start] = counter++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto it = edges.find(frame.node);
      bool descended = false;
      while (it != edges.end() && frame.next_edge < it->second.size()) {
        const std::string& next = it->second[frame.next_edge++];
        if (edges.count(next) == 0) continue;  // leaf: cannot close a cycle
        if (index.count(next) == 0) {
          index[next] = low[next] = counter++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
          descended = true;
          break;
        }
        if (on_stack[next]) low[frame.node] = std::min(low[frame.node], index[next]);
      }
      if (descended) continue;
      if (low[frame.node] == index[frame.node]) {
        std::vector<std::string> component;
        for (;;) {
          const std::string node = stack.back();
          stack.pop_back();
          on_stack[node] = false;
          component.push_back(node);
          if (node == frame.node) break;
        }
        const bool self_loop =
            component.size() == 1 && it != edges.end() &&
            std::find(it->second.begin(), it->second.end(), frame.node) != it->second.end();
        if (component.size() > 1 || self_loop) {
          std::sort(component.begin(), component.end());
          cycles.push_back(std::move(component));
        }
      }
      const std::string done = frame.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], low[done]);
      }
    }
  }
  return cycles;
}

/// Evaluated bit width of a declared net/port range; nullopt when the
/// bounds do not evaluate against the default parameter environment.
std::optional<std::int64_t> range_width(const std::string& left, const std::string& right,
                                        hdl::HdlLanguage lang, const hdl::ExprEnv& env) {
  const hdl::ExprResult l = hdl::eval_expr(left, lang, env);
  const hdl::ExprResult r = hdl::eval_expr(right, lang, env);
  if (!l.ok() || !r.ok()) return std::nullopt;
  const std::int64_t diff = *l.value - *r.value;
  return (diff < 0 ? -diff : diff) + 1;
}

void lint_interface(const hdl::Module& module, const std::string& path, bool is_top,
                    LintReport& report) {
  const bool vhdl = module.language == hdl::HdlLanguage::kVhdl;
  const auto same_name = [&](const std::string& a, const std::string& b) {
    return vhdl ? util::iequals(a, b) : a == b;
  };

  for (std::size_t i = 0; i < module.ports.size(); ++i) {
    for (std::size_t j = i + 1; j < module.ports.size(); ++j) {
      if (same_name(module.ports[i].name, module.ports[j].name)) {
        report.add(Severity::kError, "hdl-duplicate-port", path, module.ports[j].loc,
                   "port '" + module.ports[j].name + "' of module '" + module.name +
                       "' is declared twice");
      }
    }
  }
  for (std::size_t i = 0; i < module.parameters.size(); ++i) {
    for (std::size_t j = i + 1; j < module.parameters.size(); ++j) {
      if (same_name(module.parameters[i].name, module.parameters[j].name)) {
        report.add(Severity::kError, "hdl-duplicate-param", path, module.parameters[j].loc,
                   "parameter '" + module.parameters[j].name + "' of module '" +
                       module.name + "' is declared twice");
      }
    }
  }

  if (is_top && hdl::find_clock_port(module) == nullptr) {
    report.add(Severity::kWarning, "hdl-no-clock-port", path, {},
               "module '" + module.name + "' has no detectable clock input",
               "the box and the XDC constraint need a clock; name one port clk/clock");
  }

  const hdl::ExprEnv env = hdl::build_param_env(module, {});

  // VHDL range-direction contradiction: (0 downto N-1) or (N-1 to 0) is a
  // null range — the entity elaborates to zero-width ports.
  if (vhdl) {
    for (const auto& port : module.ports) {
      if (!port.is_vector) continue;
      const hdl::ExprResult l = hdl::eval_expr(port.left_expr, module.language, env);
      const hdl::ExprResult r = hdl::eval_expr(port.right_expr, module.language, env);
      if (!l.ok() || !r.ok()) continue;
      if ((port.downto && *l.value < *r.value) || (!port.downto && *l.value > *r.value)) {
        report.add(Severity::kWarning, "hdl-port-range-reversed", path, port.loc,
                   "port '" + port.name + "' has a null range (" + port.left_expr +
                       (port.downto ? " downto " : " to ") + port.right_expr + ")");
      }
    }
  }

  // Parameter defaults that overflow their own declared packed width
  // silently truncate at elaboration.
  for (const auto& param : module.parameters) {
    if (param.range_left_expr.empty() || param.default_expr.empty()) continue;
    const auto width =
        range_width(param.range_left_expr, param.range_right_expr, module.language, env);
    const hdl::ExprResult value = hdl::eval_expr(param.default_expr, module.language, env);
    if (!width || !value.ok() || *width <= 0 || *width >= 63) continue;
    if (*value.value >= 0 && bits_needed(*value.value) > *width) {
      report.add(Severity::kWarning, "hdl-param-width-overflow", path, param.loc,
                 "default of parameter '" + param.name + "' (" + param.default_expr +
                     ") does not fit its declared [" + param.range_left_expr + ":" +
                     param.range_right_expr + "] width of " + std::to_string(*width) +
                     " bit(s)");
    }
  }
}

}  // namespace

void lint_module_structure(const hdl::Module& module, const std::string& path,
                           const std::string& source_text, LintReport& report) {
  const hdl::ModuleStructure structure =
      hdl::scan_structure(source_text, module.language, module.name);
  if (!structure.found) return;

  const hdl::ExprEnv env = hdl::build_param_env(module, {});
  const auto port_of = [&](const std::string& name) -> const hdl::Port* {
    return module.find_port(name);
  };

  for (const auto& [name, net] : structure.nets) {
    const hdl::Port* port = port_of(name);
    const bool is_input = port != nullptr && port->dir != hdl::PortDir::kOut;

    // Undriven: something reads the net, nothing can possibly drive it.
    if (net.declared && net.read && net.drivers() == 0 && !is_input &&
        port == nullptr) {
      report.add(Severity::kWarning, "net-undriven", path, net.loc,
                 "net '" + name + "' in module '" + module.name +
                     "' is read but never driven");
    }

    // Multiply-driven: two whole-net continuous assigns always conflict, as
    // does a continuous assign against a procedural driver. Multiple
    // *procedural* assignments are legal (the default-then-override idiom
    // inside always_comb), slice drivers may cover disjoint bits, and
    // instance connections are ambiguous — none of those count.
    const bool conflict =
        net.whole_cont_drivers >= 2 ||
        (net.whole_cont_drivers >= 1 && net.whole_proc_drivers >= 1);
    if (conflict && !net.instance_connected && net.slice_cont_drivers == 0 &&
        net.slice_proc_drivers == 0) {
      report.add(Severity::kError, "net-multiply-driven", path, net.loc,
                 "net '" + name + "' in module '" + module.name + "' has " +
                     std::to_string(net.whole_cont_drivers + net.whole_proc_drivers) +
                     " conflicting whole-net drivers");
    }
  }

  // Dangling outputs: an output port nothing in the body ever drives.
  for (const auto& port : module.ports) {
    if (port.dir != hdl::PortDir::kOut) continue;
    const auto it = structure.nets.find(port.name);
    const bool driven = it != structure.nets.end() && it->second.drivers() > 0;
    if (!driven) {
      report.add(Severity::kWarning, "net-dangling-output", path, port.loc,
                 "output '" + port.name + "' of module '" + module.name +
                     "' is never driven");
    }
  }

  // Combinational loops through continuous assigns (always blocks are
  // excluded: registered feedback through an edge-triggered process is the
  // normal shape of sequential logic).
  std::map<std::string, std::vector<std::string>> edges;  // rhs -> [lhs...]
  std::map<std::string, hdl::SourceLoc> assign_loc;
  for (const auto& assign : structure.assigns) {
    if (!assign.whole) continue;
    assign_loc.emplace(assign.lhs, assign.loc);
    for (const auto& rhs : assign.rhs) {
      edges[rhs].push_back(assign.lhs);
    }
    edges[assign.lhs];  // ensure the node exists even with constant RHS
  }
  for (const auto& cycle : comb_cycles(edges)) {
    // Only report cycles made entirely of assigned nets (an identifier that
    // is merely read cannot close a combinational path by itself).
    bool all_assigned = true;
    for (const auto& name : cycle) {
      if (assign_loc.count(name) == 0) all_assigned = false;
    }
    if (!all_assigned) continue;
    report.add(Severity::kError, "net-comb-loop", path, assign_loc[cycle.front()],
               "combinational loop through continuous assigns in module '" +
                   module.name + "': " + util::join(cycle, " -> "));
  }

  // Width mismatch on the simplest, unambiguous shape: whole-net assign of
  // one bare identifier to another, both widths known at default params.
  for (const auto& assign : structure.assigns) {
    if (!assign.whole || !assign.rhs_single_ident) continue;
    const auto width_of = [&](const std::string& name) -> std::optional<std::int64_t> {
      const auto it = structure.nets.find(name);
      if (it != structure.nets.end() && it->second.declared) {
        if (it->second.is_array) return std::nullopt;
        if (!it->second.is_vector) return 1;
        return range_width(it->second.left_expr, it->second.right_expr, module.language,
                           env);
      }
      if (const hdl::Port* port = port_of(name)) {
        if (port->multi_packed) return std::nullopt;
        return hdl::port_width(*port, module.language, env);
      }
      return std::nullopt;
    };
    const auto lhs_width = width_of(assign.lhs);
    const auto rhs_width = width_of(assign.rhs.front());
    if (lhs_width && rhs_width && *lhs_width != *rhs_width) {
      report.add(Severity::kWarning, "net-width-mismatch", path, assign.loc,
                 "assign connects '" + assign.lhs + "' (" + std::to_string(*lhs_width) +
                     " bits) to '" + assign.rhs.front() + "' (" +
                     std::to_string(*rhs_width) + " bits) in module '" + module.name +
                     "'");
    }
  }
}

void lint_hdl_file(const hdl::ParseResult& parsed, const std::string& path,
                   const std::string& source_text, const std::string& top_module,
                   LintReport& report) {
  for (const auto& diag : parsed.diagnostics) {
    report.add(Severity::kError, "hdl-parse", path, diag.loc, diag.message);
  }
  for (const auto& module : parsed.file.modules) {
    const bool is_top =
        !top_module.empty() &&
        (parsed.file.language == hdl::HdlLanguage::kVhdl
             ? util::iequals(module.name, top_module)
             : module.name == top_module);
    lint_interface(module, path, is_top, report);
    if (module.language != hdl::HdlLanguage::kVhdl) {
      lint_module_structure(module, path, source_text, report);
    }
  }
}

}  // namespace dovado::analysis
