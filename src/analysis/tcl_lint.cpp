#include "src/analysis/tcl_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "src/tcl/ast.hpp"
#include "src/tcl/interp.hpp"
#include "src/util/strings.hpp"

namespace dovado::analysis {

namespace {

using tcl::CommandNode;
using tcl::ScriptNode;
using tcl::WordNode;

/// Per-tool-command flag table. Only commands listed here have their flags
/// validated; everything else passes through (an unknown flag on a command
/// we do not model is not evidence of a bug).
struct FlagTable {
  std::vector<std::string> value_flags;  ///< flags that consume the next word
  std::vector<std::string> bool_flags;   ///< flags with no value
  std::vector<std::string> required_flags;
  bool requires_positional = false;      ///< e.g. a file path
};

const std::map<std::string, FlagTable>& flag_tables() {
  static const std::map<std::string, FlagTable> kTables = {
      {"synth_design",
       {{"-top", "-part", "-directive", "-incremental"}, {}, {"-top", "-part"}, false}},
      {"opt_design", {{}, {}, {}, false}},
      {"place_design", {{"-directive"}, {}, {}, false}},
      {"route_design", {{"-directive"}, {}, {}, false}},
      {"read_verilog", {{}, {"-sv"}, {}, true}},
      {"read_vhdl", {{"-library"}, {}, {}, true}},
      {"read_xdc", {{}, {}, {}, true}},
      {"create_clock", {{"-period", "-name"}, {"-add"}, {"-period"}, false}},
      {"write_checkpoint", {{}, {"-force"}, {}, true}},
      {"read_checkpoint", {{"-incremental"}, {}, {}, false}},
      {"report_utilization", {{}, {}, {}, false}},
      {"report_timing", {{}, {}, {}, false}},
      {"report_power", {{}, {}, {}, false}},
  };
  return kTables;
}

/// Commands that only make sense after synth_design has produced a netlist
/// (mirrors the backend's "[...] before synth_design" failures).
const std::set<std::string>& post_synth_commands() {
  static const std::set<std::string> kCommands = {
      "opt_design",       "place_design",  "route_design",
      "write_checkpoint", "report_utilization", "report_timing",
      "report_power",
  };
  return kCommands;
}

/// Directive names the backend's timing model distinguishes
/// (edatool::directive_effects); anything else silently behaves as Default.
const std::vector<std::string>& known_directives() {
  static const std::vector<std::string> kDirectives = {
      "default",
      "runtimeoptimized",
      "quick",
      "areaoptimized_high",
      "areaoptimized_medium",
      "performanceoptimized",
      "perfoptimized_high",
      "explore",
  };
  return kDirectives;
}

std::vector<std::string> builtin_commands() {
  return {"set",    "unset",  "puts",    "expr",   "incr",  "if",     "while",
          "return", "error",  "catch",   "list",   "append", "foreach", "for",
          "proc",   "llength", "lindex", "lappend", "string", "format"};
}

/// True when the word's text reaches the command verbatim: braced words are
/// never substituted, and bare/quoted words without `$` or `[` are literal.
bool is_static(const WordNode& word) {
  if (word.kind == WordNode::Kind::kBraced) return true;
  if (word.kind == WordNode::Kind::kBracket) return false;
  return tcl::extract_var_refs(word.text).empty() && !tcl::has_command_subst(word.text);
}

/// Static numeric evaluation of a condition; nullopt when it depends on
/// variables, command substitution, or is not a constant expression.
std::optional<double> static_number(const WordNode& word) {
  if (!tcl::extract_var_refs(word.text).empty()) return std::nullopt;
  if (tcl::has_command_subst(word.text)) return std::nullopt;
  try {
    return tcl::Interp::eval_number(word.text);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

class TclLinter {
 public:
  TclLinter(std::string path, const TclLintOptions& options, LintReport& report)
      : path_(std::move(path)), options_(options), report_(report) {
    for (const auto& name : builtin_commands()) known_commands_.insert(name);
    for (const auto& [name, _] : flag_tables()) known_commands_.insert(name);
    known_commands_.insert("get_ports");
    known_commands_.insert("get_nets");
    known_commands_.insert("set_property");
    for (const auto& var : options.predefined_vars) defined_.insert(var);
  }

  void lint(const std::string& text) {
    const ScriptNode script = tcl::parse_script(text);
    if (!script.ok) {
      report_.add(Severity::kError, "tcl-parse-error", path_,
                  {static_cast<std::uint32_t>(script.error_line), 0}, script.error);
      return;
    }
    lint_commands(script.commands);
  }

 private:
  void add(Severity severity, const std::string& rule, int line, std::string message,
           std::string note = "") {
    report_.add(severity, rule, path_, {static_cast<std::uint32_t>(line), 0},
                std::move(message), std::move(note));
  }

  /// Check every `$ref` in a word against the may-defined set.
  void check_refs(const WordNode& word) {
    if (word.kind == WordNode::Kind::kBraced) return;  // not substituted
    check_refs_in(word.text, word.line);
  }

  void check_refs_in(const std::string& text, int line) {
    for (const auto& ref : tcl::extract_var_refs(text)) {
      if (defined_.count(ref) > 0) continue;
      add(Severity::kError, "tcl-unset-var", line,
          "variable '" + ref + "' is read but never set on any path");
      defined_.insert(ref);  // report each variable once
    }
  }

  /// Lint a word that the command will evaluate as a script (if/while
  /// bodies, proc bodies, bracket substitutions).
  void lint_script_word(const WordNode& word) {
    const ScriptNode nested = tcl::parse_script(word.text, word.line);
    if (!nested.ok) {
      add(Severity::kError, "tcl-parse-error", nested.error_line, nested.error);
      return;
    }
    lint_commands(nested.commands);
  }

  /// Collect variables a script word could define, without reporting
  /// anything — the pre-pass for loop bodies, where a read in iteration N
  /// may see a definition from iteration N-1.
  void collect_defs(const WordNode& word) {
    const ScriptNode nested = tcl::parse_script(word.text, word.line);
    if (!nested.ok) return;
    collect_defs_in(nested.commands);
  }

  void collect_defs_in(const std::vector<CommandNode>& commands) {
    for (const auto& command : commands) {
      if (command.words.empty() || !is_static(command.words[0])) continue;
      const std::string& name = command.words[0].text;
      const auto def_target = [&](std::size_t i) {
        if (command.words.size() > i && is_static(command.words[i])) {
          defined_.insert(command.words[i].text);
        }
      };
      if (name == "set" && command.words.size() >= 3) def_target(1);
      if (name == "append" || name == "lappend" || name == "incr") def_target(1);
      if (name == "foreach") def_target(1);
      if (name == "catch") def_target(2);
      if (name == "proc" && command.words.size() == 4) {
        if (is_static(command.words[1])) known_commands_.insert(command.words[1].text);
      }
      // Recurse into nested control-flow bodies.
      if (name == "if" || name == "while" || name == "for" || name == "foreach" ||
          name == "catch") {
        for (std::size_t i = 1; i < command.words.size(); ++i) {
          if (command.words[i].kind == WordNode::Kind::kBraced) {
            collect_defs(command.words[i]);
          }
        }
      }
    }
  }

  void wrong_arity(const CommandNode& command, const std::string& usage) {
    add(Severity::kError, "tcl-wrong-arity", command.line,
        "wrong # args to '" + command.words[0].text + "'", "usage: " + usage);
  }

  void lint_commands(const std::vector<CommandNode>& commands) {
    for (const auto& command : commands) lint_command(command);
  }

  void lint_command(const CommandNode& command) {
    if (command.words.empty()) return;
    const WordNode& head = command.words[0];

    // Bracket words anywhere in the command are nested scripts sharing this
    // scope — lint them before the command itself consumes their results.
    for (const auto& word : command.words) {
      if (word.kind == WordNode::Kind::kBracket) lint_script_word(word);
    }

    if (!is_static(head)) {
      // Dynamically-named command: check the name's own refs, then bail.
      for (const auto& word : command.words) check_refs(word);
      return;
    }
    const std::string& name = head.text;

    if (known_commands_.count(name) == 0) {
      const std::vector<std::string> candidates(known_commands_.begin(),
                                                known_commands_.end());
      const std::string suggestion = util::closest_match(name, candidates);
      add(Severity::kError, "tcl-unknown-command", command.line,
          "unknown command '" + name + "'",
          suggestion.empty() ? std::string() : "did you mean '" + suggestion + "'?");
      for (std::size_t i = 1; i < command.words.size(); ++i) check_refs(command.words[i]);
      return;
    }

    if (name == "if") {
      lint_if(command);
      return;
    }
    if (name == "while") {
      lint_while(command);
      return;
    }
    if (name == "for") {
      lint_for(command);
      return;
    }
    if (name == "foreach") {
      lint_foreach(command);
      return;
    }
    if (name == "proc") {
      lint_proc(command);
      return;
    }
    if (name == "catch") {
      lint_catch(command);
      return;
    }

    // Plain commands: every remaining word is substituted normally.
    for (std::size_t i = 1; i < command.words.size(); ++i) {
      const WordNode& word = command.words[i];
      // `expr` re-substitutes braced arguments, so refs inside them count.
      if (name == "expr" && word.kind == WordNode::Kind::kBraced) {
        check_refs_in(word.text, word.line);
      } else {
        check_refs(word);
      }
    }

    const std::size_t args = command.words.size() - 1;
    if (name == "set") {
      if (args < 1 || args > 2) {
        wrong_arity(command, "set varName ?newValue?");
      } else if (args == 2) {
        if (is_static(command.words[1])) defined_.insert(command.words[1].text);
      } else if (is_static(command.words[1]) &&
                 defined_.count(command.words[1].text) == 0) {
        add(Severity::kError, "tcl-unset-var", command.line,
            "variable '" + command.words[1].text + "' is read but never set on any path");
        defined_.insert(command.words[1].text);
      }
      return;
    }
    if (name == "unset") {
      if (args < 1) wrong_arity(command, "unset varName ?varName ...?");
      for (std::size_t i = 1; i < command.words.size(); ++i) {
        if (is_static(command.words[i])) defined_.erase(command.words[i].text);
      }
      return;
    }
    if (name == "puts" && (args < 1 || args > 2)) {
      wrong_arity(command, "puts ?-nonewline? string");
      return;
    }
    if (name == "expr" && args < 1) {
      wrong_arity(command, "expr arg ?arg ...?");
      return;
    }
    if (name == "incr") {
      if (args < 1 || args > 2) {
        wrong_arity(command, "incr varName ?increment?");
      } else if (is_static(command.words[1])) {
        defined_.insert(command.words[1].text);
      }
      return;
    }
    if ((name == "append" || name == "lappend") && args >= 1 &&
        is_static(command.words[1])) {
      defined_.insert(command.words[1].text);
      return;
    }

    const auto table = flag_tables().find(name);
    if (table != flag_tables().end()) {
      lint_tool_command(command, table->second);
    }
  }

  void lint_if(const CommandNode& command) {
    // if cond body ?elseif cond body ...? ?else body?
    const auto& words = command.words;
    const std::set<std::string> before = defined_;
    std::set<std::string> joined = defined_;  // union over branches
    bool saw_else = false;
    bool prior_taken = false;  // a statically-true condition shadows the rest

    std::size_t i = 1;
    while (true) {
      if (i + 1 >= words.size()) {
        wrong_arity(command, "if cond body ?elseif cond body ...? ?else body?");
        return;
      }
      const WordNode& cond = words[i];
      check_refs_in(cond.text, cond.line);  // conditions are always substituted
      std::size_t body = i + 1;
      if (body < words.size() && is_static(words[body]) && words[body].text == "then") {
        ++body;
      }
      if (body >= words.size()) {
        wrong_arity(command, "if cond body ?elseif cond body ...? ?else body?");
        return;
      }

      const std::optional<double> value = static_number(cond);
      const bool dead = (value && *value == 0.0) || prior_taken;
      if (dead) {
        add(Severity::kWarning, "tcl-dead-branch", cond.line,
            prior_taken ? "branch is unreachable: an earlier condition is always true"
                        : "condition '" + cond.text + "' is always false");
      }
      if (value && *value != 0.0 && !prior_taken) prior_taken = true;

      defined_ = before;
      lint_script_word(words[body]);
      if (!dead) {
        joined.insert(defined_.begin(), defined_.end());
      }

      std::size_t next = body + 1;
      if (next >= words.size()) break;
      if (is_static(words[next]) && words[next].text == "elseif") {
        i = next + 1;
        continue;
      }
      if (is_static(words[next]) && words[next].text == "else") {
        if (next + 1 >= words.size()) {
          wrong_arity(command, "if cond body ?elseif cond body ...? ?else body?");
          return;
        }
        if (prior_taken) {
          add(Severity::kWarning, "tcl-dead-branch", words[next].line,
              "else branch is unreachable: an earlier condition is always true");
        }
        saw_else = true;
        defined_ = before;
        lint_script_word(words[next + 1]);
        if (!prior_taken) joined.insert(defined_.begin(), defined_.end());
        break;
      }
      wrong_arity(command, "if cond body ?elseif cond body ...? ?else body?");
      return;
    }

    // May-analysis: defined after the if = defined on any branch. Without
    // an else, falling through keeps only `before`, already in `joined`.
    (void)saw_else;
    defined_ = std::move(joined);
  }

  void lint_while(const CommandNode& command) {
    if (command.words.size() != 3) {
      wrong_arity(command, "while test body");
      return;
    }
    const WordNode& cond = command.words[1];
    const WordNode& body = command.words[2];
    check_refs_in(cond.text, cond.line);
    const std::optional<double> value = static_number(cond);
    if (value && *value == 0.0) {
      add(Severity::kWarning, "tcl-dead-branch", cond.line,
          "loop body is unreachable: condition '" + cond.text + "' is always false");
    }
    collect_defs(body);  // iteration N may read iteration N-1's definitions
    lint_script_word(body);
  }

  void lint_for(const CommandNode& command) {
    if (command.words.size() != 5) {
      wrong_arity(command, "for start test next body");
      return;
    }
    lint_script_word(command.words[1]);  // init runs unconditionally
    check_refs_in(command.words[2].text, command.words[2].line);
    collect_defs(command.words[3]);
    collect_defs(command.words[4]);
    lint_script_word(command.words[4]);
    lint_script_word(command.words[3]);
  }

  void lint_foreach(const CommandNode& command) {
    if (command.words.size() != 4) {
      wrong_arity(command, "foreach varName list body");
      return;
    }
    check_refs(command.words[2]);
    if (is_static(command.words[1])) defined_.insert(command.words[1].text);
    collect_defs(command.words[3]);
    lint_script_word(command.words[3]);
  }

  void lint_proc(const CommandNode& command) {
    if (command.words.size() != 4) {
      wrong_arity(command, "proc name args body");
      return;
    }
    if (is_static(command.words[1])) known_commands_.insert(command.words[1].text);
    // Flat scoping (see interp.cpp): the body sees globals, and formals are
    // bound as ordinary variables.
    for (const auto& formal : util::split(command.words[2].text, ' ')) {
      const std::string trimmed{util::trim(formal)};
      if (!trimmed.empty()) defined_.insert(trimmed);
    }
    lint_script_word(command.words[3]);
  }

  void lint_catch(const CommandNode& command) {
    if (command.words.size() < 2 || command.words.size() > 3) {
      wrong_arity(command, "catch script ?resultVar?");
      return;
    }
    lint_script_word(command.words[1]);
    if (command.words.size() == 3 && is_static(command.words[2])) {
      defined_.insert(command.words[2].text);
    }
  }

  void lint_tool_command(const CommandNode& command, const FlagTable& table) {
    const std::string& name = command.words[0].text;
    std::vector<std::string> seen_flags;
    std::size_t positionals = 0;

    std::vector<std::string> all_flags = table.value_flags;
    all_flags.insert(all_flags.end(), table.bool_flags.begin(), table.bool_flags.end());

    for (std::size_t i = 1; i < command.words.size(); ++i) {
      const WordNode& word = command.words[i];
      const bool flag_like = is_static(word) && !word.text.empty() &&
                             word.text[0] == '-' &&
                             word.kind != WordNode::Kind::kBraced;
      if (!flag_like) {
        ++positionals;
        continue;
      }
      const bool is_value =
          std::find(table.value_flags.begin(), table.value_flags.end(), word.text) !=
          table.value_flags.end();
      const bool is_bool =
          std::find(table.bool_flags.begin(), table.bool_flags.end(), word.text) !=
          table.bool_flags.end();
      if (!is_value && !is_bool) {
        const std::string suggestion = util::closest_match(word.text, all_flags);
        add(Severity::kError, "tcl-unknown-flag", word.line,
            "unknown flag '" + word.text + "' for '" + name + "'",
            suggestion.empty() ? std::string() : "did you mean '" + suggestion + "'?");
        continue;
      }
      seen_flags.push_back(word.text);
      if (is_value) {
        if (i + 1 >= command.words.size()) {
          add(Severity::kError, "tcl-missing-arg", word.line,
              "flag '" + word.text + "' of '" + name + "' expects a value");
        } else {
          ++i;  // consume the value (refs were already checked above)
          if (word.text == "-directive") check_directive(name, command.words[i]);
        }
      }
    }

    for (const auto& required : table.required_flags) {
      if (std::find(seen_flags.begin(), seen_flags.end(), required) ==
          seen_flags.end()) {
        add(Severity::kError, "tcl-missing-arg", command.line,
            "'" + name + "' is missing required flag '" + required + "'");
      }
    }
    if (table.requires_positional && positionals == 0) {
      add(Severity::kError, "tcl-missing-arg", command.line,
          "'" + name + "' is missing its file argument");
    }

    if (options_.check_flow_order) {
      if (name == "synth_design") synth_done_ = true;
      if (!synth_done_ && post_synth_commands().count(name) > 0) {
        add(Severity::kError, "tcl-flow-order", command.line,
            "'" + name + "' before synth_design: there is no netlist yet");
      }
    }
  }

  void check_directive(const std::string& command, const WordNode& value) {
    if (!is_static(value)) return;  // dynamic directive: cannot judge
    for (const auto& known : known_directives()) {
      if (util::iequals(value.text, known)) return;
    }
    const std::string suggestion = util::closest_match(value.text, known_directives());
    add(Severity::kWarning, "tcl-unknown-directive", value.line,
        "unknown directive '" + value.text + "' for '" + command +
            "' silently behaves as Default",
        suggestion.empty() ? std::string() : "did you mean '" + suggestion + "'?");
  }

  std::string path_;
  const TclLintOptions& options_;
  LintReport& report_;
  std::set<std::string> defined_;
  std::set<std::string> known_commands_;
  bool synth_done_ = false;
};

}  // namespace

void lint_tcl_script(const std::string& text, const std::string& path,
                     const TclLintOptions& options, LintReport& report) {
  TclLinter linter(path, options, report);
  linter.lint(text);
}

}  // namespace dovado::analysis
