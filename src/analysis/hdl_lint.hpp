// Netlist lint: interface- and net-level rules over parsed HDL.
//
// Interface rules (both languages) come from the declaration parser;
// net-level rules (undriven/multiply-driven nets, dangling outputs,
// combinational loops via Tarjan SCC, width mismatches) come from the
// conservative body scanner in src/hdl/structure — Verilog/SV only.
#pragma once

#include <string>

#include "src/analysis/diagnostic.hpp"
#include "src/hdl/ast.hpp"

namespace dovado::analysis {

/// Lint one parsed source file. `top_module` enables top-specific rules
/// (clock detection) for the matching module; pass "" to lint every module
/// uniformly. `source_text` feeds the body scanner (pass the file content).
void lint_hdl_file(const hdl::ParseResult& parsed, const std::string& path,
                   const std::string& source_text, const std::string& top_module,
                   LintReport& report);

/// Net-level rules over one module body (exposed for targeted tests).
void lint_module_structure(const hdl::Module& module, const std::string& path,
                           const std::string& source_text, LintReport& report);

}  // namespace dovado::analysis
