// The lint rule registry.
//
// Every rule the analyzers can fire is declared here with its default
// severity and a one-line summary (the table DESIGN.md renders). RuleSet is
// the enable/disable view `--lint-rules +x,-y` parses into; unknown rule
// names fail with a did-you-mean suggestion (the same closest-match helper
// the CLI uses for unknown flags).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/analysis/diagnostic.hpp"

namespace dovado::analysis {

/// One registered rule. The id is stable and user-visible.
struct RuleInfo {
  std::string id;
  Severity severity = Severity::kWarning;
  std::string family;   ///< "hdl", "net", "tcl", "space", "flow"
  std::string summary;  ///< one line, for `dovado lint` docs and DESIGN.md
};

/// All registered rules, in family order.
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

/// Look up a rule by id; nullptr when unknown.
[[nodiscard]] const RuleInfo* find_rule(const std::string& id);

/// Which rules are active. Default-constructed = all enabled.
class RuleSet {
 public:
  [[nodiscard]] bool enabled(const std::string& rule_id) const {
    return disabled_.count(rule_id) == 0;
  }

  void disable(const std::string& rule_id) { disabled_.insert(rule_id); }
  void enable(const std::string& rule_id) { disabled_.erase(rule_id); }

  /// Parse a "+rule,-rule,..." spec into this set. "+x" (re-)enables,
  /// "-x" disables; "-all"/"+all" flips every rule at once. Returns an
  /// empty string on success, else the error message (unknown names get a
  /// did-you-mean suggestion).
  [[nodiscard]] std::string apply_spec(const std::string& spec);

  /// Drop diagnostics whose rule is disabled.
  void filter(LintReport& report) const;

 private:
  std::set<std::string> disabled_;
};

}  // namespace dovado::analysis
