// Design-space lint: rules over the DSE configuration itself — parameter
// domains, objectives, and derived metrics — before any evaluation is paid
// for. A contradictory domain or an objective over a metric no backend
// reports dooms the whole campaign, and both are knowable statically.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/diagnostic.hpp"
#include "src/core/dse.hpp"

namespace dovado::analysis {

struct SpaceLintOptions {
  /// Module parameters of the top module (free parameters must name one).
  /// Empty => the parameter-existence rule is skipped (no HDL context).
  std::vector<std::string> module_params;
  /// Backends whose metric vocabulary the objectives may use. Empty =>
  /// union over every registered backend.
  std::vector<std::string> backends;
  /// Raw `name=spec` strings exactly as the user wrote them (the CLI form).
  /// ParamDomain::range() silently swaps descending bounds, so the
  /// descending-range rule only fires on the raw spec.
  std::vector<std::string> raw_param_specs;
};

/// Lint a design space plus objectives/derived metrics. Appends to `report`
/// with the pseudo-path `where` (e.g. "<design-space>").
void lint_design_space(const core::DesignSpace& space,
                       const std::vector<core::Objective>& objectives,
                       const std::vector<core::DerivedMetric>& derived,
                       const SpaceLintOptions& options, const std::string& where,
                       LintReport& report);

}  // namespace dovado::analysis
