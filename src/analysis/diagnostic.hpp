// Diagnostics of the static verification layer (see DESIGN.md "Static
// verification layer").
//
// Every analyzer — netlist lint, TCL script lint, design-space lint —
// reports findings as Diagnostic records: a severity, a stable rule id
// (the handle used by --lint-rules and by the seeded-defect tests), a
// source location, and a message with an optional elaborating note.
// Diagnostics are data, not control flow: analyzers never throw on a
// finding, so one broken construct still yields every other finding.
#pragma once

#include <string>
#include <vector>

#include "src/hdl/ast.hpp"

namespace dovado::analysis {

enum class Severity {
  kNote,     ///< informational; never affects exit codes or the gate
  kWarning,  ///< suspicious but runnable; `dovado lint` exits 1
  kError,    ///< would waste or break a tool run; exits 2, fails pre-flight
};

[[nodiscard]] const char* severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string rule_id;   ///< stable id, e.g. "net-multiply-driven"
  std::string file;      ///< source path; may be a virtual path ("<flow script>")
  hdl::SourceLoc loc;    ///< 1-based; {0,0} when no location applies
  std::string message;
  std::string note;      ///< optional elaboration (e.g. a did-you-mean hint)
};

/// Findings of one lint run plus the counters the exit-code and pre-flight
/// policies are built on.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const { return count(Severity::kWarning); }

  /// True when a diagnostic with this rule id was reported.
  [[nodiscard]] bool has(const std::string& rule_id) const;

  /// CLI exit code: 0 clean, 1 warnings only, 2 any error.
  [[nodiscard]] int exit_code() const;

  void add(Severity severity, std::string rule_id, std::string file, hdl::SourceLoc loc,
           std::string message, std::string note = "");
};

}  // namespace dovado::analysis
