#include "src/analysis/analyzer.hpp"

#include <fstream>
#include <sstream>

#include "src/analysis/hdl_lint.hpp"
#include "src/analysis/tcl_lint.hpp"
#include "src/boxing/box.hpp"
#include "src/hdl/frontend.hpp"
#include "src/tcl/frames.hpp"
#include "src/util/strings.hpp"

namespace dovado::analysis {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Directive names the timing model distinguishes (matches the TCL linter's
/// table; see edatool::directive_effects).
const std::vector<std::string>& known_directives() {
  static const std::vector<std::string> kDirectives = {
      "default",
      "runtimeoptimized",
      "quick",
      "areaoptimized_high",
      "areaoptimized_medium",
      "performanceoptimized",
      "perfoptimized_high",
      "explore",
  };
  return kDirectives;
}

void check_directive(const std::string& stage, const std::string& value,
                     LintReport& report) {
  for (const auto& known : known_directives()) {
    if (util::iequals(value, known)) return;
  }
  const std::string suggestion = util::closest_match(value, known_directives());
  report.add(Severity::kWarning, "flow-unknown-directive", "<project>", {},
             "unknown " + stage + " directive '" + value +
                 "' silently behaves as Default",
             suggestion.empty() ? std::string() : "did you mean '" + suggestion + "'?");
}

/// Parse every source, lint it, and return the top module when found.
std::optional<hdl::Module> lint_sources(const core::ProjectConfig& project,
                                        LintReport& report) {
  std::optional<hdl::Module> top;
  for (const auto& source : project.sources) {
    const auto text = read_file(source.path);
    if (!text) {
      report.add(Severity::kError, "hdl-parse", source.path, {},
                 "cannot read source file");
      continue;
    }
    hdl::HdlLanguage lang = source.language;
    if (const auto detected = hdl::language_from_path(source.path)) lang = *detected;
    const hdl::ParseResult parsed = hdl::parse_source(*text, lang, source.path);
    lint_hdl_file(parsed, source.path, *text, project.top_module, report);
    if (const hdl::Module* m = parsed.file.find_module(project.top_module)) top = *m;
  }
  if (!top && !project.top_module.empty()) {
    std::vector<std::string> module_names;
    for (const auto& source : project.sources) {
      const hdl::ParseResult parsed = hdl::parse_file(source.path);
      for (const auto& module : parsed.file.modules) module_names.push_back(module.name);
    }
    const std::string suggestion = util::closest_match(project.top_module, module_names);
    report.add(Severity::kError, "hdl-top-not-found", "<project>", {},
               "top module '" + project.top_module + "' not found in the given sources",
               suggestion.empty() ? std::string() : "did you mean '" + suggestion + "'?");
  }
  return top;
}

/// Dry-run the evaluation pipeline's frame generation (box -> frame ->
/// script) without touching any backend, and lint the generated artifacts.
void lint_flow(const core::ProjectConfig& project, const hdl::Module& top,
               LintReport& report) {
  boxing::BoxConfig box_config;
  box_config.clock_port = project.clock_port;
  box_config.target_period_ns = project.target_period_ns;
  // No design point yet: the box is generated at default parameter values,
  // exactly what the first evaluation of an empty point would do.
  const boxing::BoxResult box = boxing::generate_box(top, box_config);
  if (!box.ok) {
    report.add(Severity::kError, "flow-box-failed", "<project>", {},
               "boxing the top module failed: " + box.error);
    return;
  }

  tcl::FrameConfig frame;
  frame.sources = project.sources;
  frame.box_path =
      box.language == hdl::HdlLanguage::kVhdl ? "dovado_box.vhd" : "dovado_box.v";
  frame.box_language = box.language;
  frame.xdc_path = "dovado_box.xdc";
  frame.top = box.top_name;
  frame.part = project.part;
  frame.synth_directive = project.synth_directive;
  frame.place_directive = project.place_directive;
  frame.route_directive = project.route_directive;
  frame.run_implementation = project.run_implementation;
  frame.incremental_synth = project.incremental_synth;
  frame.incremental_impl = project.incremental_impl;

  for (const auto& problem : tcl::validate_frame(frame)) {
    report.add(Severity::kError, "flow-frame-invalid", "<project>", {}, problem);
  }

  TclLintOptions script_options;
  lint_tcl_script(tcl::generate_flow_script(frame), "<flow-script>", script_options,
                  report);

  TclLintOptions xdc_options;
  xdc_options.check_flow_order = false;  // XDC runs inside read_xdc mid-flow
  lint_tcl_script(box.xdc, "<box-xdc>", xdc_options, report);
}

}  // namespace

void lint_project(const core::ProjectConfig& project, LintReport& report) {
  const std::optional<hdl::Module> top = lint_sources(project, report);

  check_directive("synthesis", project.synth_directive, report);
  if (project.run_implementation) {
    check_directive("placement", project.place_directive, report);
    check_directive("routing", project.route_directive, report);
  }

  // Flow lint needs a top module and a target part; without either there is
  // no flow to generate (and the missing top was already reported).
  if (top && !project.part.empty()) lint_flow(project, *top, report);
}

void lint_dse_config(const core::ProjectConfig& project, const core::DseConfig& config,
                     const std::vector<std::string>& raw_param_specs,
                     LintReport& report) {
  SpaceLintOptions options;
  options.raw_param_specs = raw_param_specs;

  const std::string backend = config.backend.empty() ? project.backend : config.backend;
  options.backends.push_back(backend);
  if (config.screen_keep_ratio < 1.0 && !config.screen_backend.empty()) {
    options.backends.push_back(config.screen_backend);
  }

  for (const auto& source : project.sources) {
    const hdl::ParseResult parsed = hdl::parse_file(source.path);
    if (const hdl::Module* m = parsed.file.find_module(project.top_module)) {
      for (const auto& param : m->parameters) {
        if (!param.is_local) options.module_params.push_back(param.name);
      }
    }
  }

  lint_design_space(config.space, config.objectives, config.derived_metrics, options,
                    "<design-space>", report);
}

LintReport preflight(const core::ProjectConfig& project, const core::DseConfig& config,
                     const RuleSet& rules) {
  LintReport report;
  lint_project(project, report);
  lint_dse_config(project, config, {}, report);
  rules.filter(report);
  return report;
}

}  // namespace dovado::analysis
