#include "src/analysis/rules.hpp"

#include <algorithm>

#include "src/util/strings.hpp"

namespace dovado::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::size_t LintReport::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.severity == severity; }));
}

bool LintReport::has(const std::string& rule_id) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule_id; });
}

int LintReport::exit_code() const {
  if (errors() > 0) return 2;
  if (warnings() > 0) return 1;
  return 0;
}

void LintReport::add(Severity severity, std::string rule_id, std::string file,
                     hdl::SourceLoc loc, std::string message, std::string note) {
  Diagnostic d;
  d.severity = severity;
  d.rule_id = std::move(rule_id);
  d.file = std::move(file);
  d.loc = loc;
  d.message = std::move(message);
  d.note = std::move(note);
  diagnostics.push_back(std::move(d));
}

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      // HDL interface rules (both languages; from the declaration parser).
      {"hdl-parse", Severity::kError, "hdl", "source file cannot be parsed"},
      {"hdl-top-not-found", Severity::kError, "hdl", "top module absent from the sources"},
      {"hdl-duplicate-port", Severity::kError, "hdl", "two ports share a name"},
      {"hdl-duplicate-param", Severity::kError, "hdl", "two parameters share a name"},
      {"hdl-no-clock-port", Severity::kWarning, "hdl",
       "no clock-like input port (the box/XDC need one)"},
      {"hdl-port-range-reversed", Severity::kWarning, "hdl",
       "VHDL vector bounds contradict their downto/to direction"},
      {"hdl-param-width-overflow", Severity::kWarning, "hdl",
       "parameter default does not fit its declared packed width"},

      // Netlist rules (Verilog/SV module bodies; net graph + Tarjan SCC).
      {"net-undriven", Severity::kWarning, "net", "net is read but has no driver"},
      {"net-multiply-driven", Severity::kError, "net",
       "whole net has two or more conflicting drivers"},
      {"net-dangling-output", Severity::kWarning, "net",
       "module output is never driven"},
      {"net-comb-loop", Severity::kError, "net",
       "combinational cycle through continuous assigns"},
      {"net-width-mismatch", Severity::kWarning, "net",
       "continuous assign connects nets of different widths"},

      // TCL script rules (abstract interpretation of the mini-TCL AST).
      {"tcl-parse-error", Severity::kError, "tcl", "script has unbalanced syntax"},
      {"tcl-unknown-command", Severity::kError, "tcl", "command is not registered"},
      {"tcl-unset-var", Severity::kError, "tcl", "variable may be read before any set"},
      {"tcl-dead-branch", Severity::kWarning, "tcl",
       "branch condition is a constant; a branch can never run"},
      {"tcl-wrong-arity", Severity::kError, "tcl", "builtin called with a bad word count"},
      {"tcl-missing-arg", Severity::kError, "tcl",
       "synth_design lacks a required -top/-part argument"},
      {"tcl-unknown-flag", Severity::kError, "tcl",
       "tool command given a flag it does not accept"},
      {"tcl-unknown-directive", Severity::kWarning, "tcl",
       "-directive value is not a known directive (the tool silently runs Default)"},
      {"tcl-flow-order", Severity::kError, "tcl",
       "implementation/report command before synth_design"},

      // Design-space rules (ParamDomain + objectives vs backends).
      {"space-duplicate-param", Severity::kError, "space",
       "design-space parameter listed twice"},
      {"space-shadowed-param", Severity::kWarning, "space",
       "two parameters differ only in case (VHDL resolves them to one)"},
      {"space-unknown-param", Severity::kError, "space",
       "parameter is not a free parameter of the top module"},
      {"space-singleton-domain", Severity::kWarning, "space",
       "domain holds a single value (nothing to explore)"},
      {"space-step-unreachable", Severity::kWarning, "space",
       "range step never lands on the upper bound"},
      {"space-descending-range", Severity::kError, "space",
       "range bounds are contradictory (lo > hi)"},
      {"space-metric-unknown", Severity::kError, "space",
       "objective metric is reported by no registered backend"},
      {"space-objective-duplicate", Severity::kWarning, "space",
       "the same metric is an objective twice"},
      {"space-derived-shadows-metric", Severity::kError, "space",
       "derived metric shadows a tool metric"},

      // Flow-level rules (the generated box + frame).
      {"flow-box-failed", Severity::kError, "flow",
       "the module cannot be boxed (clock/port constraints)"},
      {"flow-frame-invalid", Severity::kError, "flow",
       "the TCL frame configuration violates the paper's naming constraints"},
      {"flow-unknown-directive", Severity::kWarning, "flow",
       "a configured synth/place/route directive is unknown to the tool"},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& rule : all_rules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

std::string RuleSet::apply_spec(const std::string& spec) {
  for (const auto& raw : util::split(spec, ',')) {
    const std::string item(util::trim(raw));
    if (item.empty()) continue;
    const char sign = item[0];
    if (sign != '+' && sign != '-') {
      return "lint rule spec items must start with '+' or '-': '" + item + "'";
    }
    const std::string id = item.substr(1);
    if (id == "all") {
      if (sign == '-') {
        for (const auto& rule : all_rules()) disable(rule.id);
      } else {
        disabled_.clear();
      }
      continue;
    }
    if (find_rule(id) == nullptr) {
      // Reuse the CLI's did-you-mean helper so a typo'd rule gets the same
      // quality of suggestion as a typo'd flag.
      std::vector<std::string> known;
      known.reserve(all_rules().size());
      for (const auto& rule : all_rules()) known.push_back(rule.id);
      std::string message = "unknown lint rule '" + id + "'";
      const std::string suggestion = util::closest_match(id, known);
      if (!suggestion.empty()) message += " (did you mean '" + suggestion + "'?)";
      return message;
    }
    if (sign == '-') disable(id);
    else enable(id);
  }
  return "";
}

void RuleSet::filter(LintReport& report) const {
  auto& diags = report.diagnostics;
  diags.erase(std::remove_if(diags.begin(), diags.end(),
                             [&](const Diagnostic& d) { return !enabled(d.rule_id); }),
              diags.end());
}

}  // namespace dovado::analysis
