// TCL script lint: abstract interpretation of the mini-TCL dialect without
// executing side effects.
//
// The linter parses a script into the structural AST (src/tcl/ast) and walks
// it with a may-defined variable analysis: a variable counts as defined when
// any path could have set it, so only reads that are impossible on every
// path are reported. Tool commands (synth_design, place_design, ...) are
// validated against flag tables mirroring the simulated Vivado backend, and
// a flow-order state machine catches implementation steps issued before
// synth_design.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/diagnostic.hpp"

namespace dovado::analysis {

struct TclLintOptions {
  /// Variables assumed defined before the first command (e.g. variables an
  /// enclosing script sets before sourcing this one).
  std::vector<std::string> predefined_vars;
  /// Validate synthesis/implementation ordering. Disable for constraint
  /// files (XDC), which run inside read_xdc mid-flow.
  bool check_flow_order = true;
};

/// Lint one TCL script. Appends diagnostics to `report`.
void lint_tcl_script(const std::string& text, const std::string& path,
                     const TclLintOptions& options, LintReport& report);

}  // namespace dovado::analysis
