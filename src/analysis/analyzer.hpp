// Analyzer orchestration: runs every lint family over a project and (for
// pre-flight) a DSE configuration, producing one LintReport.
//
// The analyzer is the cheapest fidelity tier Dovado has — pure static
// inspection, O(milliseconds) — and runs before any evaluation is paid for:
// once as the `dovado lint` command, and once as the mandatory pre-flight
// gate at the top of DseEngine::run().
#pragma once

#include <string>
#include <vector>

#include "src/analysis/diagnostic.hpp"
#include "src/analysis/rules.hpp"
#include "src/analysis/space_lint.hpp"
#include "src/core/dse.hpp"
#include "src/core/evaluator.hpp"

namespace dovado::analysis {

/// Lint a project: parse + interface + net rules over every source, a
/// top-module existence check, and — when a part is configured — the whole
/// generated flow (box, frame validation, flow script, XDC constraints)
/// plus directive names. Appends to `report`.
void lint_project(const core::ProjectConfig& project, LintReport& report);

/// Lint the design space / objectives / derived metrics of a DSE config in
/// the context of `project` (its backend and top-module parameters).
/// `raw_param_specs` are the user's original `name=spec` strings when known
/// (descending ranges are only visible there); pass {} otherwise.
void lint_dse_config(const core::ProjectConfig& project, const core::DseConfig& config,
                     const std::vector<std::string>& raw_param_specs,
                     LintReport& report);

/// The pre-flight gate: project + DSE-config lint, filtered by `rules`.
[[nodiscard]] LintReport preflight(const core::ProjectConfig& project,
                                   const core::DseConfig& config,
                                   const RuleSet& rules = {});

}  // namespace dovado::analysis
