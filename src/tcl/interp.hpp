// A small TCL interpreter.
//
// Dovado "spawns Vivado as a subprocess and communicates with the physical
// tool through the TCL interface" (paper Sec. III-A.3). To exercise that
// exact code path against the simulated tool, this module implements the
// TCL subset Vivado batch scripts use: word/brace/quote parsing, $variable
// and [command] substitution, comments, and the control commands set /
// unset / puts / expr / if / incr / while / return / error. Tool commands
// (synth_design, report_utilization, ...) are registered by the host
// (see edatool/vivado_sim).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dovado::tcl {

class Interp;

/// A registered command: receives the full word list (args[0] is the command
/// name) and returns its string result. Errors are raised with Interp::fail.
using Command = std::function<std::string(Interp&, const std::vector<std::string>&)>;

/// Result of evaluating a script.
struct EvalResult {
  bool ok = false;
  std::string value;  ///< result of the last command when ok
  std::string error;  ///< message when !ok
};

/// TCL error carrier used internally; commands raise it via Interp::fail.
struct TclError {
  std::string message;
};

class Interp {
 public:
  Interp();

  /// Register (or replace) a command.
  void register_command(const std::string& name, Command fn);

  /// True if a command with this name exists.
  [[nodiscard]] bool has_command(const std::string& name) const;

  /// Variable access. get_var raises a TCL error for unset variables.
  void set_var(const std::string& name, const std::string& value);
  void unset_var(const std::string& name);
  [[nodiscard]] std::string get_var(const std::string& name) const;
  [[nodiscard]] bool has_var(const std::string& name) const;

  /// Evaluate a script; returns the last command's result.
  [[nodiscard]] EvalResult eval(std::string_view script);

  /// Evaluate a script from inside a command (raises TclError on failure).
  std::string eval_or_throw(std::string_view script);

  /// Perform one round of $variable and [command] substitution over raw
  /// text (as TCL's expr/if/while do on their braced arguments).
  [[nodiscard]] std::string substitute(std::string_view text);

  /// Raise a TCL error from inside a command implementation.
  [[noreturn]] static void fail(std::string message) { throw TclError{std::move(message)}; }

  /// Everything `puts` wrote, in order. Cleared by clear_output().
  [[nodiscard]] const std::vector<std::string>& output() const { return output_; }
  void clear_output() { output_.clear(); }

  /// Append a line to the captured output (used by `puts` and by tool
  /// commands that print reports).
  void emit(std::string line) { output_.push_back(std::move(line)); }

  /// Numeric expression evaluation as TCL `expr` defines it (doubles with
  /// integer formatting when exact). Exposed for tests.
  [[nodiscard]] static double eval_number(std::string_view expr);

 private:
  struct ReturnSignal {
    std::string value;
  };

  std::string run_command(const std::vector<std::string>& words);
  void register_builtins();

  std::map<std::string, Command> commands_;
  std::map<std::string, std::string> vars_;
  std::vector<std::string> output_;
  int depth_ = 0;  ///< recursion guard for [..] substitution
};

}  // namespace dovado::tcl
