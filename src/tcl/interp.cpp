#include "src/tcl/interp.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "src/util/strings.hpp"

namespace dovado::tcl {

namespace {

constexpr int kMaxDepth = 64;

bool is_word_end(char c) { return c == ' ' || c == '\t'; }
bool is_command_end(char c) { return c == '\n' || c == ';'; }

/// Cursor over script text shared by the script and word parsers.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos + ahead < text.size() ? text[pos + ahead] : '\0';
  }
  char next() { return text[pos++]; }
};

/// Parse {braced} content with nesting; no substitution happens inside.
std::string parse_braced(Cursor& c) {
  c.next();  // '{'
  std::string out;
  int depth = 1;
  while (!c.done()) {
    const char ch = c.next();
    if (ch == '\\' && !c.done()) {
      // Backslash-newline is a continuation even inside braces; other
      // backslashes are literal (including the following char).
      if (c.peek() == '\n') {
        c.next();
        out.push_back(' ');
        continue;
      }
      out.push_back(ch);
      out.push_back(c.next());
      continue;
    }
    if (ch == '{') ++depth;
    if (ch == '}') {
      if (--depth == 0) return out;
    }
    out.push_back(ch);
  }
  Interp::fail("missing close-brace");
}

std::string backslash_escape(Cursor& c) {
  // Called with cursor after the backslash.
  const char ch = c.done() ? '\0' : c.next();
  switch (ch) {
    case 'n': return "\n";
    case 't': return "\t";
    case 'r': return "\r";
    case '\n': {
      // Continuation: swallow following whitespace, acts as a space.
      while (!c.done() && (c.peek() == ' ' || c.peek() == '\t')) c.next();
      return " ";
    }
    case '\0': return "\\";
    default: return std::string(1, ch);
  }
}

}  // namespace

Interp::Interp() { register_builtins(); }

void Interp::register_command(const std::string& name, Command fn) {
  commands_[name] = std::move(fn);
}

bool Interp::has_command(const std::string& name) const {
  return commands_.count(name) != 0;
}

void Interp::set_var(const std::string& name, const std::string& value) {
  vars_[name] = value;
}

void Interp::unset_var(const std::string& name) { vars_.erase(name); }

std::string Interp::get_var(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) fail("can't read \"" + name + "\": no such variable");
  return it->second;
}

bool Interp::has_var(const std::string& name) const { return vars_.count(name) != 0; }

std::string Interp::run_command(const std::vector<std::string>& words) {
  if (words.empty()) return {};
  auto it = commands_.find(words[0]);
  if (it == commands_.end()) fail("invalid command name \"" + words[0] + "\"");
  return it->second(*this, words);
}

std::string Interp::eval_or_throw(std::string_view script) {
  if (++depth_ > kMaxDepth) {
    --depth_;
    fail("too many nested evaluations");
  }
  struct DepthGuard {
    int& d;
    ~DepthGuard() { --d; }
  } guard{depth_};

  Cursor c{script, 0};
  std::string last_result;

  // Substitute $var / ${var} at the cursor; returns the substituted text.
  auto substitute_dollar = [&](Cursor& cur) -> std::string {
    cur.next();  // '$'
    if (cur.peek() == '{') {
      cur.next();
      std::string name;
      while (!cur.done() && cur.peek() != '}') name.push_back(cur.next());
      if (cur.done()) fail("missing close-brace for variable name");
      cur.next();
      return get_var(name);
    }
    std::string name;
    while (!cur.done() &&
           (std::isalnum(static_cast<unsigned char>(cur.peek())) || cur.peek() == '_' ||
            cur.peek() == ':')) {
      name.push_back(cur.next());
    }
    if (name.empty()) return "$";
    return get_var(name);
  };

  // Parse a [command] substitution: find the matching close bracket with
  // nesting, evaluate the inner script.
  auto substitute_bracket = [&](Cursor& cur) -> std::string {
    cur.next();  // '['
    std::string inner;
    int depth = 1;
    while (!cur.done()) {
      const char ch = cur.next();
      if (ch == '\\' && !cur.done()) {
        inner.push_back(ch);
        inner.push_back(cur.next());
        continue;
      }
      if (ch == '[') ++depth;
      if (ch == ']') {
        if (--depth == 0) return eval_or_throw(inner);
      }
      if (depth > 0) inner.push_back(ch);
    }
    fail("missing close-bracket");
  };

  while (!c.done()) {
    // Skip leading whitespace / command separators.
    while (!c.done() && (is_word_end(c.peek()) || is_command_end(c.peek()))) c.next();
    if (c.done()) break;
    // Comment: '#' at command position.
    if (c.peek() == '#') {
      while (!c.done() && c.peek() != '\n') {
        // Backslash-newline continues the comment.
        if (c.peek() == '\\' && c.peek(1) == '\n') c.next();
        c.next();
      }
      continue;
    }

    std::vector<std::string> words;
    bool command_done = false;
    while (!c.done() && !command_done) {
      while (!c.done() && is_word_end(c.peek())) c.next();
      if (c.done()) break;
      if (is_command_end(c.peek())) {
        c.next();
        break;
      }
      if (c.peek() == '\\' && c.peek(1) == '\n') {
        c.next();
        c.next();
        continue;  // line continuation between words
      }

      std::string word;
      if (c.peek() == '{') {
        word = parse_braced(c);
      } else if (c.peek() == '"') {
        c.next();
        while (!c.done() && c.peek() != '"') {
          if (c.peek() == '$') {
            word += substitute_dollar(c);
          } else if (c.peek() == '[') {
            word += substitute_bracket(c);
          } else if (c.peek() == '\\') {
            c.next();
            word += backslash_escape(c);
          } else {
            word.push_back(c.next());
          }
        }
        if (c.done()) fail("missing close-quote");
        c.next();
      } else {
        while (!c.done() && !is_word_end(c.peek()) && !is_command_end(c.peek())) {
          if (c.peek() == '$') {
            word += substitute_dollar(c);
          } else if (c.peek() == '[') {
            word += substitute_bracket(c);
          } else if (c.peek() == '\\') {
            c.next();
            if (c.peek() == '\n') {
              // continuation terminates the word
              c.next();
              break;
            }
            word += backslash_escape(c);
          } else {
            word.push_back(c.next());
          }
        }
      }
      words.push_back(std::move(word));
    }

    if (!words.empty()) {
      // ReturnSignal deliberately propagates through nested scripts (if
      // bodies, loop bodies) so `return` unwinds to the proc boundary or
      // the top-level eval, per TCL semantics.
      last_result = run_command(words);
    }
  }
  return last_result;
}

std::string Interp::substitute(std::string_view text) {
  Cursor c{text, 0};
  std::string out;
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '$') {
      c.next();
      if (c.peek() == '{') {
        c.next();
        std::string name;
        while (!c.done() && c.peek() != '}') name.push_back(c.next());
        if (c.done()) fail("missing close-brace for variable name");
        c.next();
        out += get_var(name);
        continue;
      }
      std::string name;
      while (!c.done() && (std::isalnum(static_cast<unsigned char>(c.peek())) ||
                           c.peek() == '_' || c.peek() == ':')) {
        name.push_back(c.next());
      }
      if (name.empty()) {
        out.push_back('$');
      } else {
        out += get_var(name);
      }
      continue;
    }
    if (ch == '[') {
      c.next();
      std::string inner;
      int depth = 1;
      while (!c.done()) {
        const char k = c.next();
        if (k == '[') ++depth;
        if (k == ']' && --depth == 0) break;
        inner.push_back(k);
      }
      if (depth != 0) fail("missing close-bracket");
      out += eval_or_throw(inner);
      continue;
    }
    out.push_back(c.next());
  }
  return out;
}

EvalResult Interp::eval(std::string_view script) {
  EvalResult result;
  try {
    result.value = eval_or_throw(script);
    result.ok = true;
  } catch (const ReturnSignal& r) {
    result.value = r.value;
    result.ok = true;
  } catch (const TclError& e) {
    result.error = e.message;
  }
  return result;
}

// ---------------------------------------------------------------------------
// expr evaluation
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent evaluator for TCL expr strings (numbers already
/// variable-substituted by the word parser). Supports + - * / % ** == !=
/// < <= > >= && || ! ( ) and the ternary operator.
class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  double parse() {
    const double v = ternary();
    skip_ws();
    if (pos_ != text_.size()) Interp::fail("syntax error in expression");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool accept(std::string_view op) {
    skip_ws();
    if (text_.substr(pos_, op.size()) == op) {
      // Don't let '<' match '<=' etc.
      if ((op == "<" || op == ">") && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        return false;
      }
      if (op == "*" && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') return false;
      if ((op == "&" || op == "|") && text_.substr(pos_, 2) != std::string(2, op[0])) {
        // we only support && and ||
      }
      pos_ += op.size();
      return true;
    }
    return false;
  }

  double ternary() {
    double cond = logical_or();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '?') {
      ++pos_;
      const double a = ternary();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') Interp::fail("expected ':' in ?:");
      ++pos_;
      const double b = ternary();
      return cond != 0.0 ? a : b;
    }
    return cond;
  }

  double logical_or() {
    double v = logical_and();
    while (accept("||")) {
      // Evaluate the right operand unconditionally: C++'s short-circuiting
      // would otherwise leave it unconsumed in the input.
      const double rhs = logical_and();
      v = (v != 0.0 || rhs != 0.0) ? 1.0 : 0.0;
    }
    return v;
  }
  double logical_and() {
    double v = comparison();
    while (accept("&&")) {
      const double rhs = comparison();
      v = (v != 0.0 && rhs != 0.0) ? 1.0 : 0.0;
    }
    return v;
  }
  double comparison() {
    double v = additive();
    while (true) {
      if (accept("==")) v = (v == additive()) ? 1.0 : 0.0;
      else if (accept("!=")) v = (v != additive()) ? 1.0 : 0.0;
      else if (accept("<=")) v = (v <= additive()) ? 1.0 : 0.0;
      else if (accept(">=")) v = (v >= additive()) ? 1.0 : 0.0;
      else if (accept("<")) v = (v < additive()) ? 1.0 : 0.0;
      else if (accept(">")) v = (v > additive()) ? 1.0 : 0.0;
      else return v;
    }
  }
  double additive() {
    double v = multiplicative();
    while (true) {
      if (accept("+")) v += multiplicative();
      else if (accept("-")) v -= multiplicative();
      else return v;
    }
  }
  double multiplicative() {
    double v = power();
    while (true) {
      if (accept("**")) {
        // handled in power(); '**' binds tighter — shouldn't reach here
        Interp::fail("internal expr error");
      } else if (accept("*")) {
        v *= power();
      } else if (accept("/")) {
        const double d = power();
        if (d == 0.0) Interp::fail("divide by zero");
        v /= d;
      } else if (accept("%")) {
        const double d = power();
        if (d == 0.0) Interp::fail("divide by zero");
        v = static_cast<double>(static_cast<long long>(v) % static_cast<long long>(d));
      } else {
        return v;
      }
    }
  }
  double power() {
    const double base = unary();
    skip_ws();
    if (text_.substr(pos_, 2) == "**") {
      pos_ += 2;
      return std::pow(base, power());  // right-associative
    }
    return base;
  }
  double unary() {
    skip_ws();
    if (pos_ < text_.size()) {
      if (text_[pos_] == '-') {
        ++pos_;
        return -unary();
      }
      if (text_[pos_] == '+') {
        ++pos_;
        return unary();
      }
      if (text_[pos_] == '!') {
        ++pos_;
        return unary() == 0.0 ? 1.0 : 0.0;
      }
    }
    return primary();
  }
  double primary() {
    skip_ws();
    if (pos_ >= text_.size()) Interp::fail("unexpected end of expression");
    if (text_[pos_] == '(') {
      ++pos_;
      const double v = ternary();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')') Interp::fail("missing ')'");
      ++pos_;
      return v;
    }
    // Function call: name(arg {, arg})
    if (std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      const std::string name(text_.substr(start, pos_ - start));
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '(') {
        Interp::fail("unknown operand \"" + name + "\" in expression");
      }
      ++pos_;
      std::vector<double> args;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] != ')') {
        args.push_back(ternary());
        skip_ws();
        while (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          args.push_back(ternary());
          skip_ws();
        }
      }
      if (pos_ >= text_.size() || text_[pos_] != ')') Interp::fail("missing ')' in call");
      ++pos_;
      return call(name, args);
    }
    // Number.
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    double v = 0.0;
    if (pos_ == start || !util::parse_double(text_.substr(start, pos_ - start), v)) {
      Interp::fail("expected number in expression");
    }
    return v;
  }

  static double call(const std::string& name, const std::vector<double>& args) {
    auto need = [&](std::size_t n) {
      if (args.size() != n) Interp::fail("wrong # args to " + name + "()");
    };
    if (name == "abs") { need(1); return std::fabs(args[0]); }
    if (name == "sqrt") { need(1); return std::sqrt(args[0]); }
    if (name == "pow") { need(2); return std::pow(args[0], args[1]); }
    if (name == "floor") { need(1); return std::floor(args[0]); }
    if (name == "ceil") { need(1); return std::ceil(args[0]); }
    if (name == "round") { need(1); return std::round(args[0]); }
    if (name == "min") { need(2); return std::min(args[0], args[1]); }
    if (name == "max") { need(2); return std::max(args[0], args[1]); }
    if (name == "log2") { need(1); return std::log2(args[0]); }
    if (name == "exp") { need(1); return std::exp(args[0]); }
    if (name == "int") { need(1); return std::trunc(args[0]); }
    Interp::fail("unknown function \"" + name + "\"");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// TCL-style number formatting: integers print without a decimal point.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Split a TCL list into elements, honouring {braced} and "quoted" groups.
std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> items;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= text.size()) break;
    std::string item;
    if (text[i] == '{') {
      int depth = 1;
      ++i;
      while (i < text.size() && depth > 0) {
        if (text[i] == '{') ++depth;
        if (text[i] == '}' && --depth == 0) break;
        item.push_back(text[i++]);
      }
      if (i < text.size()) ++i;  // closing brace
    } else if (text[i] == '"') {
      ++i;
      while (i < text.size() && text[i] != '"') item.push_back(text[i++]);
      if (i < text.size()) ++i;
    } else {
      while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
        item.push_back(text[i++]);
      }
    }
    items.push_back(std::move(item));
  }
  return items;
}

/// TCL `string match` globbing: '*' any run, '?' any char.
bool glob_match(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return text.empty();
  if (pattern[0] == '*') {
    for (std::size_t skip = 0; skip <= text.size(); ++skip) {
      if (glob_match(pattern.substr(1), text.substr(skip))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (pattern[0] == '?' || pattern[0] == text[0]) {
    return glob_match(pattern.substr(1), text.substr(1));
  }
  return false;
}

bool truthy(const std::string& s) {
  const std::string t = util::to_lower(util::trim(s));
  if (t == "true" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "no" || t == "off") return false;
  double v = 0.0;
  if (util::parse_double(t, v)) return v != 0.0;
  Interp::fail("expected boolean value but got \"" + s + "\"");
}

}  // namespace

double Interp::eval_number(std::string_view expr) { return ExprParser(expr).parse(); }

void Interp::register_builtins() {
  register_command("set", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() == 2) return in.get_var(a[1]);
    if (a.size() == 3) {
      in.set_var(a[1], a[2]);
      return a[2];
    }
    fail("wrong # args: should be \"set varName ?newValue?\"");
  });

  register_command("unset", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    for (std::size_t i = 1; i < a.size(); ++i) in.unset_var(a[i]);
    return {};
  });

  register_command("puts", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    // Supports `puts msg` and `puts -nonewline msg`; channel words ignored.
    if (a.size() < 2) fail("wrong # args: should be \"puts ?-nonewline? string\"");
    in.emit(a.back());
    return {};
  });

  register_command("expr", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    std::string text;
    for (std::size_t i = 1; i < a.size(); ++i) {
      if (i > 1) text += ' ';
      text += a[i];
    }
    // expr performs its own substitution round over braced arguments.
    return format_number(eval_number(in.substitute(text)));
  });

  register_command("incr", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() < 2 || a.size() > 3) fail("wrong # args: should be \"incr varName ?incr?\"");
    long long delta = 1;
    if (a.size() == 3 && !util::parse_int(a[2], delta)) fail("expected integer increment");
    long long value = 0;
    if (!util::parse_int(in.get_var(a[1]), value)) fail("variable is not an integer");
    const std::string result = std::to_string(value + delta);
    in.set_var(a[1], result);
    return result;
  });

  register_command("if", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    // if cond body ?elseif cond body ...? ?else body?
    std::size_t i = 1;
    while (true) {
      if (i + 1 >= a.size()) fail("wrong # args: no expression/body after \"if\"");
      const bool taken = truthy(format_number(eval_number(in.substitute(a[i]))));
      std::size_t body = i + 1;
      if (a[body] == "then") ++body;
      if (body >= a.size()) fail("wrong # args: missing body");
      if (taken) return in.eval_or_throw(a[body]);
      std::size_t next = body + 1;
      if (next >= a.size()) return {};
      if (a[next] == "elseif") {
        i = next + 1;
        continue;
      }
      if (a[next] == "else") {
        if (next + 1 >= a.size()) fail("wrong # args: missing else body");
        return in.eval_or_throw(a[next + 1]);
      }
      fail("invalid word \"" + a[next] + "\" after if body");
    }
  });

  register_command("while", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() != 3) fail("wrong # args: should be \"while test command\"");
    int guard = 0;
    while (eval_number(in.substitute(a[1])) != 0.0) {
      in.eval_or_throw(a[2]);
      if (++guard > 1000000) fail("while loop exceeded iteration limit");
    }
    return {};
  });

  register_command("return", [](Interp&, const std::vector<std::string>& a) -> std::string {
    throw ReturnSignal{a.size() > 1 ? a[1] : std::string()};
  });

  register_command("error", [](Interp&, const std::vector<std::string>& a) -> std::string {
    fail(a.size() > 1 ? a[1] : "error");
  });

  register_command("catch", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() < 2) fail("wrong # args: should be \"catch script ?resultVar?\"");
    try {
      const std::string value = in.eval_or_throw(a[1]);
      if (a.size() >= 3) in.set_var(a[2], value);
      return "0";
    } catch (const TclError& e) {
      if (a.size() >= 3) in.set_var(a[2], e.message);
      return "1";
    }
  });

  register_command("list", [](Interp&, const std::vector<std::string>& a) -> std::string {
    std::string out;
    for (std::size_t i = 1; i < a.size(); ++i) {
      if (i > 1) out += ' ';
      const bool needs_braces = a[i].empty() || a[i].find(' ') != std::string::npos;
      out += needs_braces ? "{" + a[i] + "}" : a[i];
    }
    return out;
  });

  register_command("append", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() < 2) fail("wrong # args: should be \"append varName ?value ...?\"");
    std::string value = in.has_var(a[1]) ? in.get_var(a[1]) : std::string();
    for (std::size_t i = 2; i < a.size(); ++i) value += a[i];
    in.set_var(a[1], value);
    return value;
  });

  register_command("foreach", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() != 4) fail("wrong # args: should be \"foreach varName list body\"");
    for (const auto& item : split_list(a[2])) {
      in.set_var(a[1], item);
      in.eval_or_throw(a[3]);
    }
    return {};
  });

  register_command("for", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() != 5) fail("wrong # args: should be \"for start test next body\"");
    in.eval_or_throw(a[1]);
    int guard = 0;
    while (eval_number(in.substitute(a[2])) != 0.0) {
      in.eval_or_throw(a[4]);
      in.eval_or_throw(a[3]);
      if (++guard > 1000000) fail("for loop exceeded iteration limit");
    }
    return {};
  });

  register_command("proc", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() != 4) fail("wrong # args: should be \"proc name args body\"");
    const std::vector<std::string> formals = split_list(a[2]);
    const std::string body = a[3];
    in.register_command(a[1], [formals, body](Interp& inner,
                                              const std::vector<std::string>& call) {
      if (call.size() != formals.size() + 1) {
        fail("wrong # args to \"" + call[0] + "\"");
      }
      // Flat scoping: formals are bound as ordinary variables (sufficient
      // for the batch scripts Dovado generates; no upvar/global needed).
      for (std::size_t i = 0; i < formals.size(); ++i) {
        inner.set_var(formals[i], call[i + 1]);
      }
      try {
        return inner.eval_or_throw(body);
      } catch (const ReturnSignal& r) {
        // `return` unwinds exactly to the proc boundary.
        return r.value;
      }
    });
    return {};
  });

  register_command("llength", [](Interp&, const std::vector<std::string>& a) -> std::string {
    if (a.size() != 2) fail("wrong # args: should be \"llength list\"");
    return std::to_string(split_list(a[1]).size());
  });

  register_command("lindex", [](Interp&, const std::vector<std::string>& a) -> std::string {
    if (a.size() != 3) fail("wrong # args: should be \"lindex list index\"");
    const auto items = split_list(a[1]);
    long long index = 0;
    if (a[2] == "end") index = static_cast<long long>(items.size()) - 1;
    else if (!util::parse_int(a[2], index)) fail("bad index \"" + a[2] + "\"");
    if (index < 0 || index >= static_cast<long long>(items.size())) return {};
    return items[static_cast<std::size_t>(index)];
  });

  register_command("lappend", [](Interp& in, const std::vector<std::string>& a) -> std::string {
    if (a.size() < 2) fail("wrong # args: should be \"lappend varName ?value ...?\"");
    std::string value = in.has_var(a[1]) ? in.get_var(a[1]) : std::string();
    for (std::size_t i = 2; i < a.size(); ++i) {
      if (!value.empty()) value += ' ';
      const bool needs_braces = a[i].empty() || a[i].find(' ') != std::string::npos;
      value += needs_braces ? "{" + a[i] + "}" : a[i];
    }
    in.set_var(a[1], value);
    return value;
  });

  register_command("string", [](Interp&, const std::vector<std::string>& a) -> std::string {
    if (a.size() < 3) fail("wrong # args: should be \"string subcommand arg ...\"");
    const std::string& sub = a[1];
    if (sub == "length") return std::to_string(a[2].size());
    if (sub == "tolower") return util::to_lower(a[2]);
    if (sub == "toupper") return util::to_upper(a[2]);
    if (sub == "trim") return std::string(util::trim(a[2]));
    if (sub == "equal" && a.size() == 4) return a[2] == a[3] ? "1" : "0";
    if (sub == "match" && a.size() == 4) {
      return glob_match(a[2], a[3]) ? "1" : "0";
    }
    if (sub == "first" && a.size() == 4) {
      const auto pos = a[3].find(a[2]);
      return std::to_string(pos == std::string::npos ? -1 : static_cast<long long>(pos));
    }
    if (sub == "range" && a.size() == 5) {
      long long lo = 0;
      long long hi = 0;
      if (!util::parse_int(a[3], lo)) fail("bad index");
      if (a[4] == "end") hi = static_cast<long long>(a[2].size()) - 1;
      else if (!util::parse_int(a[4], hi)) fail("bad index");
      lo = std::max<long long>(lo, 0);
      hi = std::min<long long>(hi, static_cast<long long>(a[2].size()) - 1);
      if (lo > hi) return {};
      return a[2].substr(static_cast<std::size_t>(lo), static_cast<std::size_t>(hi - lo + 1));
    }
    fail("unknown or unsupported string subcommand \"" + sub + "\"");
  });

  register_command("format", [](Interp&, const std::vector<std::string>& a) -> std::string {
    if (a.size() < 2) fail("wrong # args: should be \"format formatString ?arg ...?\"");
    // Minimal %s/%d/%f/%g/%x/%% support, positional.
    std::string out;
    std::size_t arg = 2;
    const std::string& fmt = a[1];
    for (std::size_t i = 0; i < fmt.size(); ++i) {
      if (fmt[i] != '%') {
        out.push_back(fmt[i]);
        continue;
      }
      if (i + 1 >= fmt.size()) fail("format string ended mid-specifier");
      const char spec = fmt[++i];
      if (spec == '%') {
        out.push_back('%');
        continue;
      }
      if (arg >= a.size()) fail("not enough arguments for format string");
      const std::string& value = a[arg++];
      switch (spec) {
        case 's': out += value; break;
        case 'd': {
          long long v = 0;
          if (!util::parse_int(value, v)) {
            double d = 0.0;
            if (!util::parse_double(value, d)) fail("expected integer for %d");
            v = static_cast<long long>(d);
          }
          out += std::to_string(v);
          break;
        }
        case 'f':
        case 'g':
        case 'x': {
          double d = 0.0;
          if (!util::parse_double(value, d)) fail("expected number");
          char buf[64];
          if (spec == 'f') std::snprintf(buf, sizeof(buf), "%f", d);
          else if (spec == 'g') std::snprintf(buf, sizeof(buf), "%g", d);
          else std::snprintf(buf, sizeof(buf), "%llx", static_cast<long long>(d));
          out += buf;
          break;
        }
        default: fail(std::string("unsupported format specifier %") + spec);
      }
    }
    return out;
  });
}

}  // namespace dovado::tcl
