// A structural AST for the mini-TCL dialect (see interp.hpp).
//
// The interpreter parses scripts on the fly while executing them; the TCL
// lint analyzer (src/analysis/tcl_lint) needs the same parse *without* the
// side effects. parse_script applies the identical word rules — braces,
// quotes, bracket substitution, backslash-newline continuation, comments —
// but produces a command list instead of running anything. Braced words are
// kept as raw text (TCL's "everything is a string": bodies of if/while/proc
// are re-parsed by whoever evaluates them, and the linter does the same).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dovado::tcl {

/// One word of a command, classified by its quoting.
struct WordNode {
  enum class Kind {
    kBare,     ///< unquoted; $var and [cmd] substitution applies
    kQuoted,   ///< "..." with substitution
    kBraced,   ///< {...} literal (no substitution at parse level)
    kBracket,  ///< [script] — the whole word is a command substitution
  };
  Kind kind = Kind::kBare;
  std::string text;  ///< raw contents (quotes/braces/brackets stripped)
  int line = 1;
};

/// One command: words[0] is the command name.
struct CommandNode {
  std::vector<WordNode> words;
  int line = 1;
};

/// A parsed script. `ok` is false on unbalanced syntax (the error carries
/// the line of the unterminated construct).
struct ScriptNode {
  std::vector<CommandNode> commands;
  bool ok = true;
  std::string error;
  int error_line = 0;
};

/// Parse a script into commands without evaluating anything.
[[nodiscard]] ScriptNode parse_script(std::string_view text, int first_line = 1);

/// Extract `$name` / `${name}` variable references from word text.
[[nodiscard]] std::vector<std::string> extract_var_refs(std::string_view text);

/// True when the text contains a `[...]` command substitution.
[[nodiscard]] bool has_command_subst(std::string_view text);

}  // namespace dovado::tcl
