// Dovado's TCL script frames (paper Sec. III-A.3).
//
// Dovado ships "general frames for TCL scripts" that it customises at run
// time with the module specifics and the user-selected directives. This
// module generates the batch flow script the (simulated) Vivado executes:
// source reading in the required order, the XDC constraint, synthesis,
// optionally implementation (opt/place/route), the utilization and timing
// reports, and checkpoint writes for the incremental flow.
#pragma once

#include <string>
#include <vector>

#include "src/hdl/ast.hpp"

namespace dovado::tcl {

/// One source file of the design (the box source is passed separately since
/// it lives in memory, not on disk).
struct SourceFile {
  std::string path;
  hdl::HdlLanguage language = hdl::HdlLanguage::kVhdl;
  std::string library = "work";  ///< VHDL library (paper: one subfolder per library)
  bool is_package = false;       ///< SV packages must be read first
};

/// Everything the frame needs to produce a concrete flow script.
struct FrameConfig {
  std::vector<SourceFile> sources;
  std::string box_path = "dovado_box";  ///< virtual path of the generated box source
  hdl::HdlLanguage box_language = hdl::HdlLanguage::kVhdl;
  std::string xdc_path = "dovado_box.xdc";
  std::string top = "box";
  std::string part;
  std::string synth_directive = "Default";   ///< Vivado synth_design directive
  std::string place_directive = "Default";   ///< place_design directive
  std::string route_directive = "Default";   ///< route_design directive
  bool run_implementation = true;            ///< false => synthesis-only flow
  bool incremental_synth = false;
  bool incremental_impl = false;
  std::string synth_checkpoint = "post_synth.dcp";
  std::string impl_checkpoint = "post_route.dcp";
};

/// Check the paper's naming constraints: a VHDL source assigned to a
/// non-work library must live in a subfolder named after that library, and
/// parts must be non-empty. Returns problems (empty == valid).
[[nodiscard]] std::vector<std::string> validate_frame(const FrameConfig& config);

/// Order sources for reading: SV packages first (paper: "SV packages are
/// read at the very beginning of the step"), then everything else in the
/// given order, then the box source last.
[[nodiscard]] std::vector<SourceFile> reading_order(const FrameConfig& config);

/// Generate the full flow script.
[[nodiscard]] std::string generate_flow_script(const FrameConfig& config);

/// The read command for one source file (read_vhdl / read_verilog /
/// read_verilog -sv with library flags).
[[nodiscard]] std::string read_command(const SourceFile& source);

}  // namespace dovado::tcl
