#include "src/tcl/ast.hpp"

#include <cctype>

namespace dovado::tcl {

namespace {

bool is_word_end(char c) { return c == ' ' || c == '\t' || c == '\r'; }
bool is_command_end(char c) { return c == '\n' || c == ';'; }

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  int line = 1;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos + ahead < text.size() ? text[pos + ahead] : '\0';
  }
  char next() {
    const char c = text[pos++];
    if (c == '\n') ++line;
    return c;
  }
};

}  // namespace

ScriptNode parse_script(std::string_view text, int first_line) {
  ScriptNode script;
  Cursor c{text, 0, first_line};

  auto fail = [&](std::string message, int line) {
    script.ok = false;
    script.error = std::move(message);
    script.error_line = line;
  };

  while (!c.done() && script.ok) {
    while (!c.done() && (is_word_end(c.peek()) || is_command_end(c.peek()))) c.next();
    if (c.done()) break;
    if (c.peek() == '#') {  // comment at command position
      while (!c.done() && c.peek() != '\n') {
        if (c.peek() == '\\' && c.peek(1) == '\n') c.next();
        c.next();
      }
      continue;
    }

    CommandNode command;
    command.line = c.line;
    bool command_done = false;
    while (!c.done() && !command_done && script.ok) {
      while (!c.done() && is_word_end(c.peek())) c.next();
      if (c.done()) break;
      if (is_command_end(c.peek())) {
        c.next();
        break;
      }
      if (c.peek() == '\\' && c.peek(1) == '\n') {
        c.next();
        c.next();
        continue;
      }

      WordNode word;
      word.line = c.line;
      if (c.peek() == '{') {
        word.kind = WordNode::Kind::kBraced;
        const int open_line = c.line;
        c.next();
        int depth = 1;
        while (!c.done()) {
          if (c.peek() == '\\' && c.pos + 1 < c.text.size()) {
            word.text.push_back(c.next());
            word.text.push_back(c.next());
            continue;
          }
          const char ch = c.next();
          if (ch == '{') ++depth;
          if (ch == '}') {
            if (--depth == 0) break;
          }
          word.text.push_back(ch);
        }
        if (depth != 0) {
          fail("missing close-brace", open_line);
          break;
        }
      } else if (c.peek() == '"') {
        word.kind = WordNode::Kind::kQuoted;
        const int open_line = c.line;
        c.next();
        while (!c.done() && c.peek() != '"') {
          if (c.peek() == '\\' && c.pos + 1 < c.text.size()) {
            word.text.push_back(c.next());
            word.text.push_back(c.next());
            continue;
          }
          word.text.push_back(c.next());
        }
        if (c.done()) {
          fail("missing close-quote", open_line);
          break;
        }
        c.next();
      } else if (c.peek() == '[') {
        word.kind = WordNode::Kind::kBracket;
        const int open_line = c.line;
        c.next();
        int depth = 1;
        while (!c.done()) {
          if (c.peek() == '\\' && c.pos + 1 < c.text.size()) {
            word.text.push_back(c.next());
            word.text.push_back(c.next());
            continue;
          }
          const char ch = c.next();
          if (ch == '[') ++depth;
          if (ch == ']') {
            if (--depth == 0) break;
          }
          word.text.push_back(ch);
        }
        if (depth != 0) {
          fail("missing close-bracket", open_line);
          break;
        }
        // A bracket word may have a bare tail (`[cmd]suffix`); keep it as
        // part of the text so the linter still sees the substitution.
        while (!c.done() && !is_word_end(c.peek()) && !is_command_end(c.peek())) {
          word.text.push_back(c.next());
        }
      } else {
        word.kind = WordNode::Kind::kBare;
        while (!c.done() && !is_word_end(c.peek()) && !is_command_end(c.peek())) {
          if (c.peek() == '\\' && c.peek(1) == '\n') {
            c.next();
            c.next();
            command_done = false;
            break;
          }
          if (c.peek() == '\\' && c.pos + 1 < c.text.size()) {
            word.text.push_back(c.next());
            word.text.push_back(c.next());
            continue;
          }
          word.text.push_back(c.next());
        }
      }
      command.words.push_back(std::move(word));
    }
    if (!command.words.empty()) script.commands.push_back(std::move(command));
  }
  return script;
}

std::vector<std::string> extract_var_refs(std::string_view text) {
  std::vector<std::string> refs;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\') {  // escaped character — not a reference
      ++i;
      continue;
    }
    if (text[i] != '$') continue;
    std::size_t j = i + 1;
    std::string name;
    if (j < text.size() && text[j] == '{') {
      ++j;
      while (j < text.size() && text[j] != '}') name.push_back(text[j++]);
    } else {
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) || text[j] == '_' ||
              text[j] == ':')) {
        name.push_back(text[j++]);
      }
    }
    if (!name.empty()) refs.push_back(name);
    i = j > i ? j - 1 : i;
  }
  return refs;
}

bool has_command_subst(std::string_view text) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;
      continue;
    }
    if (text[i] == '[') return true;
  }
  return false;
}

}  // namespace dovado::tcl
