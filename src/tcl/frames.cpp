#include "src/tcl/frames.hpp"

#include "src/util/strings.hpp"

namespace dovado::tcl {

std::vector<std::string> validate_frame(const FrameConfig& config) {
  std::vector<std::string> problems;
  if (config.part.empty()) problems.push_back("no target part specified");
  if (config.top.empty()) problems.push_back("no top module specified");
  for (const auto& s : config.sources) {
    if (s.path.empty()) {
      problems.push_back("source file with empty path");
      continue;
    }
    if (s.language == hdl::HdlLanguage::kVhdl && !s.library.empty() && s.library != "work") {
      // Paper Sec. III-A.3: "we apply some naming constraints for VHDL
      // libraries (i.e., one subfolder per library with the same name)".
      if (!util::contains(s.path, "/" + s.library + "/")) {
        problems.push_back("VHDL source '" + s.path + "' is assigned to library '" +
                           s.library + "' but does not live in a '" + s.library +
                           "/' subfolder");
      }
    }
    if (s.is_package && s.language == hdl::HdlLanguage::kVhdl) {
      problems.push_back("source '" + s.path +
                         "' marked as SV package but declared as VHDL");
    }
  }
  return problems;
}

std::vector<SourceFile> reading_order(const FrameConfig& config) {
  std::vector<SourceFile> ordered;
  ordered.reserve(config.sources.size() + 1);
  for (const auto& s : config.sources) {
    if (s.is_package) ordered.push_back(s);
  }
  for (const auto& s : config.sources) {
    if (!s.is_package) ordered.push_back(s);
  }
  SourceFile box;
  box.path = config.box_path;
  box.language = config.box_language;
  box.library = "work";
  ordered.push_back(box);
  return ordered;
}

std::string read_command(const SourceFile& source) {
  switch (source.language) {
    case hdl::HdlLanguage::kVhdl: {
      std::string cmd = "read_vhdl";
      if (!source.library.empty() && source.library != "work") {
        cmd += " -library " + source.library;
      }
      return cmd + " {" + source.path + "}";
    }
    case hdl::HdlLanguage::kVerilog:
      return "read_verilog {" + source.path + "}";
    case hdl::HdlLanguage::kSystemVerilog:
      return "read_verilog -sv {" + source.path + "}";
  }
  return {};
}

std::string generate_flow_script(const FrameConfig& config) {
  std::string s;
  s += "# Dovado flow script (generated)\n";
  s += "set part {" + config.part + "}\n";
  s += "set top {" + config.top + "}\n";

  for (const auto& src : reading_order(config)) {
    s += read_command(src) + "\n";
  }
  s += "read_xdc {" + config.xdc_path + "}\n";

  s += "synth_design -top $top -part $part -directive {" + config.synth_directive + "}";
  if (config.incremental_synth) {
    // Vivado reuses the previous run's checkpoint when present; the tool
    // simply warns and runs flat when it is missing, so the frame can
    // reference it unconditionally.
    s += " -incremental {" + config.synth_checkpoint + "}";
  }
  s += "\n";
  s += "write_checkpoint -force {" + config.synth_checkpoint + "}\n";

  if (config.run_implementation) {
    s += "opt_design\n";
    if (config.incremental_impl) {
      s += "read_checkpoint -incremental {" + config.impl_checkpoint + "}\n";
    }
    s += "place_design -directive {" + config.place_directive + "}\n";
    s += "route_design -directive {" + config.route_directive + "}\n";
    s += "write_checkpoint -force {" + config.impl_checkpoint + "}\n";
  }

  s += "report_utilization\n";
  s += "report_timing\n";
  s += "report_power\n";
  return s;
}

}  // namespace dovado::tcl
