// Fitness-approximation walkthrough (paper Sec. III-C and IV-A).
//
// Pre-trains the Nadaraya-Watson control model on tool samples of the
// cv32e40p FIFO, then shows, query by query, how the control model routes
// design points between the cached tool, the estimator and fresh tool runs,
// and how close the estimates are to the tool's answers.
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/model/control.hpp"
#include "src/util/rng.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                             hdl::HdlLanguage::kSystemVerilog, "work", false});
  project.top_module = "cv32e40p_fifo";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;
  core::PointEvaluator evaluator(project);

  model::ControlModel control;
  util::Rng rng(42);

  // Pre-training: M distinct tool runs on random DEPTH values.
  const int kPretrain = 40;
  std::printf("pre-training on %d tool samples...\n", kPretrain);
  for (int i = 0; i < kPretrain; ++i) {
    const std::int64_t depth = rng.uniform_int(8, 507);
    const auto r = evaluator.evaluate({{"DEPTH", depth}});
    if (r.ok) {
      control.add_sample({static_cast<double>(depth)},
                         {r.metrics.get("ff"), r.metrics.get("lut"),
                          r.metrics.get("fmax_mhz")});
    }
  }
  std::printf("dataset size: %zu, adaptive threshold Gamma = %.2f\n\n",
              control.dataset().size(), control.threshold());

  std::printf("%-8s %-12s %-22s %-22s\n", "DEPTH", "decision", "estimate (ff/lut/fmax)",
              "tool (ff/lut/fmax)");
  for (std::int64_t depth : {16, 100, 101, 250, 400, 507}) {
    const model::Point x = {static_cast<double>(depth)};
    const model::Decision decision = control.decide_and_count(x);
    const char* name = decision == model::Decision::kCachedTool ? "cached"
                       : decision == model::Decision::kEstimate ? "estimate"
                                                                : "tool+add";
    const auto truth = evaluator.evaluate({{"DEPTH", depth}});
    std::string est = "-";
    if (decision == model::Decision::kEstimate) {
      const model::Values v = control.estimate(x);
      est = std::to_string(static_cast<int>(v[0])) + "/" +
            std::to_string(static_cast<int>(v[1])) + "/" +
            std::to_string(static_cast<int>(v[2]));
    } else if (decision == model::Decision::kToolAndAdd) {
      control.add_sample(x, {truth.metrics.get("ff"), truth.metrics.get("lut"),
                             truth.metrics.get("fmax_mhz")});
    }
    std::printf("%-8lld %-12s %-22s %d/%d/%d\n", static_cast<long long>(depth), name,
                est.c_str(), static_cast<int>(truth.metrics.get("ff")),
                static_cast<int>(truth.metrics.get("lut")),
                static_cast<int>(truth.metrics.get("fmax_mhz")));
  }

  const auto& stats = control.stats();
  std::printf(
      "\ncontrol-model statistics: %zu cached, %zu estimated, %zu tool calls\n",
      stats.cached_hits, stats.estimates, stats.tool_calls);
  std::printf("model bandwidths (LOO-CV): ");
  for (double h : control.model().bandwidths()) std::printf("%.2f ", h);
  std::printf("\n");
  return 0;
}
