// TiReX cross-device exploration (paper Sec. IV-D).
//
// Explores the regular-expression matching architecture's datapath and
// memory parameters (all power-of-two) on two FPGA technologies — a 16 nm
// Zynq UltraScale+ ZU3EG and a 28 nm Kintex-7 — showing the technology
// impact on resource usage and achievable frequency.
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

namespace {

core::DseResult explore_on(const std::string& part) {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/tirex_top.vhd",
                             hdl::HdlLanguage::kVhdl, "work", false});
  project.top_module = "tirex_top";
  project.part = part;
  project.target_period_ns = 1.0;

  core::DseConfig config;
  config.space.params.push_back({"NCLUSTER", core::ParamDomain::power_of_two(0, 3)});
  config.space.params.push_back({"STACK_SIZE", core::ParamDomain::power_of_two(0, 8)});
  config.space.params.push_back({"INSTR_MEM_SIZE", core::ParamDomain::power_of_two(3, 5)});
  config.space.params.push_back({"DATA_MEM_SIZE", core::ParamDomain::power_of_two(3, 5)});
  config.objectives = {{"lut", false}, {"bram", false}, {"fmax_mhz", true}};
  config.ga.population_size = 20;
  config.ga.max_generations = 12;
  config.ga.seed = 7;

  core::DseEngine engine(project, config);
  return engine.run();
}

}  // namespace

int main() {
  for (const std::string& part : {std::string("xczu3eg-sbva484-1-e"),
                                 std::string("xc7k70tfbv676-1")}) {
    std::printf("=== TiReX exploration on %s ===\n", part.c_str());
    const core::DseResult result = explore_on(part);
    std::printf("%zu non-dominated solutions:\n%s\n", result.pareto.size(),
                core::format_table(result.pareto).c_str());
    double best_fmax = 0.0;
    for (const auto& p : result.pareto) {
      best_fmax = std::max(best_fmax, p.metrics.get("fmax_mhz"));
    }
    std::printf("best achievable frequency: %.0f MHz\n\n", best_fmax);
  }
  std::printf(
      "The 16 nm ZU3EG sustains far higher frequencies than the 28 nm "
      "XC7K70T for near-identical configurations (paper: ~550 vs ~190 MHz).\n");
  return 0;
}
