// Neorv32 memory-sizing exploration (paper Sec. IV-C).
//
// Explores the VHDL RISC-V core's instruction/data memory sizes restricted
// to powers of two — the paper's domain-restriction feature — on a Kintex-7
// without the approximation model, and shows how BRAM usage jumps between
// memory configurations while logic stays nearly constant.
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/neorv32_top.vhd",
                             hdl::HdlLanguage::kVhdl, "work", false});
  project.top_module = "neorv32_top";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;

  core::DseConfig config;
  // Power-of-two restriction (Sec. III-B.1): explore a large range without
  // meaningless intermediate sizes.
  config.space.params.push_back(
      {"MEM_INT_IMEM_SIZE", core::ParamDomain::power_of_two(10, 15)});
  config.space.params.push_back(
      {"MEM_INT_DMEM_SIZE", core::ParamDomain::power_of_two(10, 15)});
  config.objectives = {{"bram", false}, {"lut", false}, {"fmax_mhz", true}};
  config.ga.population_size = 16;
  config.ga.max_generations = 12;
  config.ga.seed = 32;

  std::printf("Neorv32 memory exploration on %s (power-of-two domains)\n",
              project.part.c_str());
  for (const auto& p : config.space.params) {
    std::printf("  %s in %s\n", p.name.c_str(), p.domain.describe().c_str());
  }

  core::DseEngine engine(project, config);
  const core::DseResult result = engine.run();

  std::printf("\nnon-dominated solutions (%zu):\n%s\n", result.pareto.size(),
              core::format_table(result.pareto).c_str());

  // Highlight the paper's observation: going from 2^14 to 2^15 changes BRAM
  // a lot while leaving the other metrics almost unchanged.
  const auto sweep = engine.evaluate_set({
      {{"MEM_INT_IMEM_SIZE", 1 << 14}, {"MEM_INT_DMEM_SIZE", 1 << 13}},
      {{"MEM_INT_IMEM_SIZE", 1 << 15}, {"MEM_INT_DMEM_SIZE", 1 << 15}},
  });
  std::printf("BRAM step between 2^14/2^13 and 2^15/2^15 configurations:\n%s",
              core::format_table(sweep).c_str());
  return 0;
}
