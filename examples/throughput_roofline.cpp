// Throughput-aware exploration with a custom static performance model and
// a roofline chart (both future-work items of the paper, Sec. V).
//
// TiReX consumes one input character per cluster per cycle, so a static
// model gives throughput = fmax * NCLUSTER. The DSE trades area against
// that derived throughput metric, and the resulting non-dominated designs
// are placed on the device's roofline.
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"
#include "src/perf/roofline.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/tirex_top.vhd",
                             hdl::HdlLanguage::kVhdl, "work", false});
  project.top_module = "tirex_top";
  project.part = "xczu3eg-sbva484-1-e";
  project.target_period_ns = 1.0;

  core::DseConfig config;
  config.space.params.push_back({"NCLUSTER", core::ParamDomain::power_of_two(0, 3)});
  config.space.params.push_back({"STACK_SIZE", core::ParamDomain::power_of_two(2, 6)});
  config.space.params.push_back({"INSTR_MEM_SIZE", core::ParamDomain::power_of_two(3, 4)});
  config.space.params.push_back({"DATA_MEM_SIZE", core::ParamDomain::power_of_two(3, 4)});

  // Custom static performance model: characters matched per second.
  config.derived_metrics.push_back(
      {"throughput_mcps", [](const core::DesignPoint& point, const core::EvalMetrics& m) {
         return m.get("fmax_mhz") * static_cast<double>(point.at("NCLUSTER"));
       }});
  config.objectives = {{"lut", false}, {"throughput_mcps", true}};
  config.ga.population_size = 18;
  config.ga.max_generations = 12;
  config.ga.seed = 11;

  core::DseEngine engine(project, config);
  const core::DseResult result = engine.run();

  std::printf("TiReX throughput exploration on zu3eg (derived metric as objective)\n\n");
  std::printf("%s\n", core::format_table(result.pareto).c_str());

  // Roofline placement: each matched character costs ~1 op of matching per
  // cluster and one byte of instruction-stream fetch.
  const auto device = *fpga::DeviceCatalog::find(project.part);
  double best_fmax = 0.0;
  for (const auto& p : result.pareto) best_fmax = std::max(best_fmax, p.metrics.get("fmax_mhz"));
  const perf::RooflineMachine machine = perf::machine_from_device(device, best_fmax);

  std::vector<perf::RooflinePoint> points;
  for (const auto& p : result.pareto) {
    const double nclusters = static_cast<double>(p.params.at("NCLUSTER"));
    perf::RooflineKernel kernel;
    kernel.name = "tirex_x" + std::to_string(static_cast<int>(nclusters));
    kernel.ops = nclusters;        // match ops per input character
    kernel.bytes = 2.0 * nclusters;  // instruction slice fetched per char
    kernel.achieved_gops = p.metrics.get("throughput_mcps") * nclusters / 1000.0;
    points.push_back(perf::place_kernel(machine, kernel));
  }
  std::printf("%s", perf::render_ascii(machine, points).c_str());
  return 0;
}
