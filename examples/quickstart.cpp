// Quickstart: Dovado's design-automation flow on a single design point.
//
// Parses the cv32e40p FIFO, shows the extracted interface, generates the
// box wrapper + XDC + TCL flow script for one configuration, runs the
// (simulated) tool and prints the extracted metrics — the full pipeline of
// paper Sec. III-A in one file.
#include <cstdio>
#include <string>

#include "src/boxing/box.hpp"
#include "src/core/evaluator.hpp"
#include "src/core/writers.hpp"
#include "src/hdl/frontend.hpp"
#include "src/tcl/frames.hpp"

using namespace dovado;

int main() {
  const std::string rtl = std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv";

  // --- 1. Parsing step: extract the module interface. --------------------
  const hdl::ParseResult parsed = hdl::parse_file(rtl);
  if (!parsed.ok) {
    std::fprintf(stderr, "cannot parse %s\n", rtl.c_str());
    return 1;
  }
  const hdl::Module& module = parsed.file.modules.front();
  std::printf("module %s (%s)\n", module.name.c_str(), language_name(module.language));
  std::printf("  free parameters:\n");
  for (const auto& p : module.free_parameters()) {
    std::printf("    %-14s %-8s default=%s\n", p.name.c_str(), p.type_name.c_str(),
                p.default_expr.c_str());
  }
  const hdl::Port* clk = hdl::find_clock_port(module);
  std::printf("  detected clock: %s\n\n", clk != nullptr ? clk->name.c_str() : "(none)");

  // --- 2. Boxing step: sandbox wrapper + clock constraint. ---------------
  boxing::BoxConfig box_config;
  box_config.parameters = {{"DEPTH", 64}, {"DATA_WIDTH", 32}};
  box_config.target_period_ns = 1.0;  // the paper targets 1 GHz
  const boxing::BoxResult box = boxing::generate_box(module, box_config);
  if (!box.ok) {
    std::fprintf(stderr, "boxing failed: %s\n", box.error.c_str());
    return 1;
  }
  std::printf("--- generated box (%s) ---\n%s\n", language_name(box.language),
              box.box_source.c_str());
  std::printf("--- generated XDC ---\n%s\n", box.xdc.c_str());

  // --- 3. TCL frame: the flow script the tool executes. ------------------
  tcl::FrameConfig frame;
  frame.sources.push_back({rtl, hdl::HdlLanguage::kSystemVerilog, "work", false});
  frame.box_path = "dovado_box.v";
  frame.box_language = box.language;
  frame.top = box.top_name;
  frame.part = "xc7k70tfbv676-1";
  std::printf("--- generated flow script ---\n%s\n",
              tcl::generate_flow_script(frame).c_str());

  // --- 4. Single-point evaluation end to end. ----------------------------
  core::ProjectConfig project;
  project.sources = frame.sources;
  project.top_module = module.name;
  project.part = frame.part;
  project.target_period_ns = 1.0;
  core::PointEvaluator evaluator(project);

  std::vector<core::ExploredPoint> rows;
  for (std::int64_t depth : {8, 32, 128, 512}) {
    const core::EvalResult r = evaluator.evaluate({{"DEPTH", depth}});
    if (!r.ok) {
      std::fprintf(stderr, "evaluation failed: %s\n", r.error.c_str());
      return 1;
    }
    core::ExploredPoint row;
    row.params = {{"DEPTH", depth}};
    row.metrics = r.metrics;
    rows.push_back(std::move(row));
  }
  std::printf("--- evaluated design points (xc7k70t, target 1 GHz) ---\n%s",
              core::format_table(rows).c_str());
  std::printf("\nsimulated tool time: %.0f s across %llu flow runs\n",
              evaluator.tool_seconds(),
              static_cast<unsigned long long>(evaluator.backend().flows_run()));
  return 0;
}
