// Parameter sensitivity screening before a full exploration.
//
// Sweeps each Corundum queue-manager parameter one at a time around the
// center configuration, ranks their influence per metric, and shows how the
// screening pays for itself: the sweep's tool results warm-start the
// follow-up DSE over only the influential parameters.
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/sensitivity.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/corundum_cq_manager.v",
                             hdl::HdlLanguage::kVerilog, "work", false});
  project.top_module = "cpl_queue_manager";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;

  core::DesignSpace space;
  space.params.push_back({"OP_TABLE_SIZE", core::ParamDomain::range(8, 35)});
  space.params.push_back({"QUEUE_INDEX_WIDTH", core::ParamDomain::range(4, 7)});
  space.params.push_back({"PIPELINE", core::ParamDomain::range(2, 5)});
  space.params.push_back({"REQ_TAG_WIDTH", core::ParamDomain::range(4, 12)});

  const core::DesignPoint base = core::center_point(space);
  std::printf("sensitivity screening around the center configuration:\n ");
  for (const auto& [name, value] : base) {
    std::printf(" %s=%lld", name.c_str(), static_cast<long long>(value));
  }
  std::printf("\n\n");

  const core::SensitivityReport report = core::analyze_sensitivity(project, space, base);
  std::printf("%s\n", report.format_table({"lut", "ff", "bram", "fmax_mhz", "power_w"}).c_str());

  std::printf("ranking for fmax_mhz:\n");
  for (const auto& [name, spread] : report.ranking("fmax_mhz")) {
    std::printf("  %-20s %.1f%%\n", name.c_str(), 100.0 * spread);
  }

  // Follow-up DSE over the two most frequency-influential parameters only.
  const auto ranked = report.ranking("fmax_mhz");
  core::DseConfig config;
  for (const auto& spec : space.params) {
    if (spec.name == ranked[0].first || spec.name == ranked[1].first) {
      config.space.params.push_back(spec);
    }
  }
  config.objectives = {{"ff", false}, {"fmax_mhz", true}};
  config.ga.population_size = 14;
  config.ga.max_generations = 10;
  config.ga.seed = 8;

  std::printf("\nfocused DSE over {%s, %s} (others fixed at their defaults):\n",
              ranked[0].first.c_str(), ranked[1].first.c_str());
  core::DseEngine engine(project, config);
  const core::DseResult result = engine.run();
  std::printf("%s", core::format_table(result.pareto).c_str());
  std::printf("(%zu tool runs for the focused exploration)\n", result.stats.tool_runs);
  return 0;
}
