// Corundum completion-queue-manager exploration (paper Sec. IV-B).
//
// Explores the Verilog cpl_queue_manager over (# outstanding operations,
// queue index width, pipeline stages) on a Kintex-7 with the approximation
// model disabled, optimizing LUTs, registers and BRAM against maximum
// frequency, and prints the resulting non-dominated configurations.
#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/corundum_cq_manager.v",
                             hdl::HdlLanguage::kVerilog, "work", false});
  project.top_module = "cpl_queue_manager";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;

  core::DseConfig config;
  config.space.params.push_back({"OP_TABLE_SIZE", core::ParamDomain::range(8, 35)});
  config.space.params.push_back({"QUEUE_INDEX_WIDTH", core::ParamDomain::range(4, 7)});
  config.space.params.push_back({"PIPELINE", core::ParamDomain::range(2, 5)});
  config.objectives = {{"lut", false}, {"ff", false}, {"bram", false}, {"fmax_mhz", true}};
  config.ga.population_size = 24;
  config.ga.max_generations = 15;
  config.ga.seed = 2021;
  config.use_approximation = false;  // direct Vivado evaluations (Sec. IV-B)

  std::printf("Corundum completion queue manager DSE on %s\n", project.part.c_str());
  std::printf("search space volume: %lld configurations\n\n",
              static_cast<long long>(config.space.volume()));

  core::DseEngine engine(project, config);
  const core::DseResult result = engine.run();

  std::printf("non-dominated configurations (%zu):\n%s\n", result.pareto.size(),
              core::format_table(result.pareto).c_str());
  std::printf("explored %zu points with %zu tool runs (%.0f simulated tool seconds)\n",
              result.explored.size(), result.stats.tool_runs,
              result.stats.simulated_tool_seconds);

  std::ofstream csv("corundum_pareto.csv");
  core::write_csv(csv, result.pareto);
  std::printf("pareto set written to corundum_pareto.csv\n");
  return 0;
}
