file(REMOVE_RECURSE
  "libdovado_fpga.a"
)
