# Empty compiler generated dependencies file for dovado_fpga.
# This may be replaced when dependencies are built.
