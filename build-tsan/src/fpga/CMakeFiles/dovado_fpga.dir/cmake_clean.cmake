file(REMOVE_RECURSE
  "CMakeFiles/dovado_fpga.dir/board.cpp.o"
  "CMakeFiles/dovado_fpga.dir/board.cpp.o.d"
  "CMakeFiles/dovado_fpga.dir/device.cpp.o"
  "CMakeFiles/dovado_fpga.dir/device.cpp.o.d"
  "libdovado_fpga.a"
  "libdovado_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
