# Empty dependencies file for dovado_core.
# This may be replaced when dependencies are built.
