# Empty compiler generated dependencies file for dovado_core.
# This may be replaced when dependencies are built.
