file(REMOVE_RECURSE
  "libdovado_core.a"
)
