file(REMOVE_RECURSE
  "CMakeFiles/dovado_core.dir/dse.cpp.o"
  "CMakeFiles/dovado_core.dir/dse.cpp.o.d"
  "CMakeFiles/dovado_core.dir/evaluator.cpp.o"
  "CMakeFiles/dovado_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/dovado_core.dir/param_domain.cpp.o"
  "CMakeFiles/dovado_core.dir/param_domain.cpp.o.d"
  "CMakeFiles/dovado_core.dir/sensitivity.cpp.o"
  "CMakeFiles/dovado_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/dovado_core.dir/session.cpp.o"
  "CMakeFiles/dovado_core.dir/session.cpp.o.d"
  "CMakeFiles/dovado_core.dir/writers.cpp.o"
  "CMakeFiles/dovado_core.dir/writers.cpp.o.d"
  "libdovado_core.a"
  "libdovado_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
