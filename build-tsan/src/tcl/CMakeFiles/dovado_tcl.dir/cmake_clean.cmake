file(REMOVE_RECURSE
  "CMakeFiles/dovado_tcl.dir/frames.cpp.o"
  "CMakeFiles/dovado_tcl.dir/frames.cpp.o.d"
  "CMakeFiles/dovado_tcl.dir/interp.cpp.o"
  "CMakeFiles/dovado_tcl.dir/interp.cpp.o.d"
  "libdovado_tcl.a"
  "libdovado_tcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_tcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
