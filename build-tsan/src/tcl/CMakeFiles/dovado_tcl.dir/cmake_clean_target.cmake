file(REMOVE_RECURSE
  "libdovado_tcl.a"
)
