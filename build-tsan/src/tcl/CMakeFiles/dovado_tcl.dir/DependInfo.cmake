
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcl/frames.cpp" "src/tcl/CMakeFiles/dovado_tcl.dir/frames.cpp.o" "gcc" "src/tcl/CMakeFiles/dovado_tcl.dir/frames.cpp.o.d"
  "/root/repo/src/tcl/interp.cpp" "src/tcl/CMakeFiles/dovado_tcl.dir/interp.cpp.o" "gcc" "src/tcl/CMakeFiles/dovado_tcl.dir/interp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hdl/CMakeFiles/dovado_hdl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
