# Empty dependencies file for dovado_tcl.
# This may be replaced when dependencies are built.
