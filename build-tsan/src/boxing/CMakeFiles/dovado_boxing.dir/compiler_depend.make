# Empty compiler generated dependencies file for dovado_boxing.
# This may be replaced when dependencies are built.
