file(REMOVE_RECURSE
  "libdovado_boxing.a"
)
