file(REMOVE_RECURSE
  "CMakeFiles/dovado_boxing.dir/box.cpp.o"
  "CMakeFiles/dovado_boxing.dir/box.cpp.o.d"
  "libdovado_boxing.a"
  "libdovado_boxing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_boxing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
