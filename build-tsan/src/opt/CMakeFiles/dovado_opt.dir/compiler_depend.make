# Empty compiler generated dependencies file for dovado_opt.
# This may be replaced when dependencies are built.
