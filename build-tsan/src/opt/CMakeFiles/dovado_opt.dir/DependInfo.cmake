
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/baselines.cpp" "src/opt/CMakeFiles/dovado_opt.dir/baselines.cpp.o" "gcc" "src/opt/CMakeFiles/dovado_opt.dir/baselines.cpp.o.d"
  "/root/repo/src/opt/indicators.cpp" "src/opt/CMakeFiles/dovado_opt.dir/indicators.cpp.o" "gcc" "src/opt/CMakeFiles/dovado_opt.dir/indicators.cpp.o.d"
  "/root/repo/src/opt/nds.cpp" "src/opt/CMakeFiles/dovado_opt.dir/nds.cpp.o" "gcc" "src/opt/CMakeFiles/dovado_opt.dir/nds.cpp.o.d"
  "/root/repo/src/opt/nsga2.cpp" "src/opt/CMakeFiles/dovado_opt.dir/nsga2.cpp.o" "gcc" "src/opt/CMakeFiles/dovado_opt.dir/nsga2.cpp.o.d"
  "/root/repo/src/opt/operators.cpp" "src/opt/CMakeFiles/dovado_opt.dir/operators.cpp.o" "gcc" "src/opt/CMakeFiles/dovado_opt.dir/operators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
