file(REMOVE_RECURSE
  "libdovado_opt.a"
)
