file(REMOVE_RECURSE
  "CMakeFiles/dovado_opt.dir/baselines.cpp.o"
  "CMakeFiles/dovado_opt.dir/baselines.cpp.o.d"
  "CMakeFiles/dovado_opt.dir/indicators.cpp.o"
  "CMakeFiles/dovado_opt.dir/indicators.cpp.o.d"
  "CMakeFiles/dovado_opt.dir/nds.cpp.o"
  "CMakeFiles/dovado_opt.dir/nds.cpp.o.d"
  "CMakeFiles/dovado_opt.dir/nsga2.cpp.o"
  "CMakeFiles/dovado_opt.dir/nsga2.cpp.o.d"
  "CMakeFiles/dovado_opt.dir/operators.cpp.o"
  "CMakeFiles/dovado_opt.dir/operators.cpp.o.d"
  "libdovado_opt.a"
  "libdovado_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
