file(REMOVE_RECURSE
  "CMakeFiles/dovado.dir/main.cpp.o"
  "CMakeFiles/dovado.dir/main.cpp.o.d"
  "dovado"
  "dovado.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
