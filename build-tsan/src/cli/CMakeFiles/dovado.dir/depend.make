# Empty dependencies file for dovado.
# This may be replaced when dependencies are built.
