# Empty compiler generated dependencies file for dovado_cli.
# This may be replaced when dependencies are built.
