file(REMOVE_RECURSE
  "CMakeFiles/dovado_cli.dir/commands.cpp.o"
  "CMakeFiles/dovado_cli.dir/commands.cpp.o.d"
  "CMakeFiles/dovado_cli.dir/options.cpp.o"
  "CMakeFiles/dovado_cli.dir/options.cpp.o.d"
  "libdovado_cli.a"
  "libdovado_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
