file(REMOVE_RECURSE
  "libdovado_cli.a"
)
