# Empty compiler generated dependencies file for dovado_model.
# This may be replaced when dependencies are built.
