file(REMOVE_RECURSE
  "CMakeFiles/dovado_model.dir/control.cpp.o"
  "CMakeFiles/dovado_model.dir/control.cpp.o.d"
  "CMakeFiles/dovado_model.dir/dataset.cpp.o"
  "CMakeFiles/dovado_model.dir/dataset.cpp.o.d"
  "CMakeFiles/dovado_model.dir/nadaraya_watson.cpp.o"
  "CMakeFiles/dovado_model.dir/nadaraya_watson.cpp.o.d"
  "libdovado_model.a"
  "libdovado_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
