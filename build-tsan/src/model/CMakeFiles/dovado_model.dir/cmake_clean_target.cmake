file(REMOVE_RECURSE
  "libdovado_model.a"
)
