file(REMOVE_RECURSE
  "libdovado_perf.a"
)
