file(REMOVE_RECURSE
  "CMakeFiles/dovado_perf.dir/roofline.cpp.o"
  "CMakeFiles/dovado_perf.dir/roofline.cpp.o.d"
  "libdovado_perf.a"
  "libdovado_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
