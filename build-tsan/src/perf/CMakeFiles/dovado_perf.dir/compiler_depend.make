# Empty compiler generated dependencies file for dovado_perf.
# This may be replaced when dependencies are built.
