file(REMOVE_RECURSE
  "libdovado_util.a"
)
