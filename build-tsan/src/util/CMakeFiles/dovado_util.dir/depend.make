# Empty dependencies file for dovado_util.
# This may be replaced when dependencies are built.
