file(REMOVE_RECURSE
  "CMakeFiles/dovado_util.dir/csv.cpp.o"
  "CMakeFiles/dovado_util.dir/csv.cpp.o.d"
  "CMakeFiles/dovado_util.dir/json.cpp.o"
  "CMakeFiles/dovado_util.dir/json.cpp.o.d"
  "CMakeFiles/dovado_util.dir/logging.cpp.o"
  "CMakeFiles/dovado_util.dir/logging.cpp.o.d"
  "CMakeFiles/dovado_util.dir/rng.cpp.o"
  "CMakeFiles/dovado_util.dir/rng.cpp.o.d"
  "CMakeFiles/dovado_util.dir/strings.cpp.o"
  "CMakeFiles/dovado_util.dir/strings.cpp.o.d"
  "CMakeFiles/dovado_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dovado_util.dir/thread_pool.cpp.o.d"
  "libdovado_util.a"
  "libdovado_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
