# Empty compiler generated dependencies file for dovado_util.
# This may be replaced when dependencies are built.
