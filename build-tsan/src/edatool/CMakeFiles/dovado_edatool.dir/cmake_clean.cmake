file(REMOVE_RECURSE
  "CMakeFiles/dovado_edatool.dir/power.cpp.o"
  "CMakeFiles/dovado_edatool.dir/power.cpp.o.d"
  "CMakeFiles/dovado_edatool.dir/report.cpp.o"
  "CMakeFiles/dovado_edatool.dir/report.cpp.o.d"
  "CMakeFiles/dovado_edatool.dir/techmap.cpp.o"
  "CMakeFiles/dovado_edatool.dir/techmap.cpp.o.d"
  "CMakeFiles/dovado_edatool.dir/timing.cpp.o"
  "CMakeFiles/dovado_edatool.dir/timing.cpp.o.d"
  "CMakeFiles/dovado_edatool.dir/vivado_sim.cpp.o"
  "CMakeFiles/dovado_edatool.dir/vivado_sim.cpp.o.d"
  "libdovado_edatool.a"
  "libdovado_edatool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_edatool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
