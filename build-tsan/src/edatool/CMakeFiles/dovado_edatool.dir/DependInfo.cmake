
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edatool/power.cpp" "src/edatool/CMakeFiles/dovado_edatool.dir/power.cpp.o" "gcc" "src/edatool/CMakeFiles/dovado_edatool.dir/power.cpp.o.d"
  "/root/repo/src/edatool/report.cpp" "src/edatool/CMakeFiles/dovado_edatool.dir/report.cpp.o" "gcc" "src/edatool/CMakeFiles/dovado_edatool.dir/report.cpp.o.d"
  "/root/repo/src/edatool/techmap.cpp" "src/edatool/CMakeFiles/dovado_edatool.dir/techmap.cpp.o" "gcc" "src/edatool/CMakeFiles/dovado_edatool.dir/techmap.cpp.o.d"
  "/root/repo/src/edatool/timing.cpp" "src/edatool/CMakeFiles/dovado_edatool.dir/timing.cpp.o" "gcc" "src/edatool/CMakeFiles/dovado_edatool.dir/timing.cpp.o.d"
  "/root/repo/src/edatool/vivado_sim.cpp" "src/edatool/CMakeFiles/dovado_edatool.dir/vivado_sim.cpp.o" "gcc" "src/edatool/CMakeFiles/dovado_edatool.dir/vivado_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netlist/CMakeFiles/dovado_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fpga/CMakeFiles/dovado_fpga.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tcl/CMakeFiles/dovado_tcl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hdl/CMakeFiles/dovado_hdl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
