file(REMOVE_RECURSE
  "libdovado_edatool.a"
)
