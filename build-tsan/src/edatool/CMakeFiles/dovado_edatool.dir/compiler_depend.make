# Empty compiler generated dependencies file for dovado_edatool.
# This may be replaced when dependencies are built.
