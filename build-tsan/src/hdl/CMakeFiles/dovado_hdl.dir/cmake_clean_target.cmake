file(REMOVE_RECURSE
  "libdovado_hdl.a"
)
