file(REMOVE_RECURSE
  "CMakeFiles/dovado_hdl.dir/expr.cpp.o"
  "CMakeFiles/dovado_hdl.dir/expr.cpp.o.d"
  "CMakeFiles/dovado_hdl.dir/frontend.cpp.o"
  "CMakeFiles/dovado_hdl.dir/frontend.cpp.o.d"
  "CMakeFiles/dovado_hdl.dir/lexer.cpp.o"
  "CMakeFiles/dovado_hdl.dir/lexer.cpp.o.d"
  "CMakeFiles/dovado_hdl.dir/verilog_parser.cpp.o"
  "CMakeFiles/dovado_hdl.dir/verilog_parser.cpp.o.d"
  "CMakeFiles/dovado_hdl.dir/vhdl_parser.cpp.o"
  "CMakeFiles/dovado_hdl.dir/vhdl_parser.cpp.o.d"
  "libdovado_hdl.a"
  "libdovado_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
