
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdl/expr.cpp" "src/hdl/CMakeFiles/dovado_hdl.dir/expr.cpp.o" "gcc" "src/hdl/CMakeFiles/dovado_hdl.dir/expr.cpp.o.d"
  "/root/repo/src/hdl/frontend.cpp" "src/hdl/CMakeFiles/dovado_hdl.dir/frontend.cpp.o" "gcc" "src/hdl/CMakeFiles/dovado_hdl.dir/frontend.cpp.o.d"
  "/root/repo/src/hdl/lexer.cpp" "src/hdl/CMakeFiles/dovado_hdl.dir/lexer.cpp.o" "gcc" "src/hdl/CMakeFiles/dovado_hdl.dir/lexer.cpp.o.d"
  "/root/repo/src/hdl/verilog_parser.cpp" "src/hdl/CMakeFiles/dovado_hdl.dir/verilog_parser.cpp.o" "gcc" "src/hdl/CMakeFiles/dovado_hdl.dir/verilog_parser.cpp.o.d"
  "/root/repo/src/hdl/vhdl_parser.cpp" "src/hdl/CMakeFiles/dovado_hdl.dir/vhdl_parser.cpp.o" "gcc" "src/hdl/CMakeFiles/dovado_hdl.dir/vhdl_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
