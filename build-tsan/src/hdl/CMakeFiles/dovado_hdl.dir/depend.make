# Empty dependencies file for dovado_hdl.
# This may be replaced when dependencies are built.
