# Empty dependencies file for dovado_netlist.
# This may be replaced when dependencies are built.
