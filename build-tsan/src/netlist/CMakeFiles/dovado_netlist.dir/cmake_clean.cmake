file(REMOVE_RECURSE
  "CMakeFiles/dovado_netlist.dir/generators.cpp.o"
  "CMakeFiles/dovado_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/dovado_netlist.dir/ir.cpp.o"
  "CMakeFiles/dovado_netlist.dir/ir.cpp.o.d"
  "libdovado_netlist.a"
  "libdovado_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dovado_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
