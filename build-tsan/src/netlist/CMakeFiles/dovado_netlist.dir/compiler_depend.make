# Empty compiler generated dependencies file for dovado_netlist.
# This may be replaced when dependencies are built.
