file(REMOVE_RECURSE
  "libdovado_netlist.a"
)
