file(REMOVE_RECURSE
  "CMakeFiles/neorv32_dse.dir/neorv32_dse.cpp.o"
  "CMakeFiles/neorv32_dse.dir/neorv32_dse.cpp.o.d"
  "neorv32_dse"
  "neorv32_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neorv32_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
