# Empty dependencies file for neorv32_dse.
# This may be replaced when dependencies are built.
