# Empty compiler generated dependencies file for tirex_dse.
# This may be replaced when dependencies are built.
