file(REMOVE_RECURSE
  "CMakeFiles/tirex_dse.dir/tirex_dse.cpp.o"
  "CMakeFiles/tirex_dse.dir/tirex_dse.cpp.o.d"
  "tirex_dse"
  "tirex_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tirex_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
