# Empty dependencies file for corundum_dse.
# This may be replaced when dependencies are built.
