file(REMOVE_RECURSE
  "CMakeFiles/corundum_dse.dir/corundum_dse.cpp.o"
  "CMakeFiles/corundum_dse.dir/corundum_dse.cpp.o.d"
  "corundum_dse"
  "corundum_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corundum_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
