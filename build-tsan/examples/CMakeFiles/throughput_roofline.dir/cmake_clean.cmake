file(REMOVE_RECURSE
  "CMakeFiles/throughput_roofline.dir/throughput_roofline.cpp.o"
  "CMakeFiles/throughput_roofline.dir/throughput_roofline.cpp.o.d"
  "throughput_roofline"
  "throughput_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
