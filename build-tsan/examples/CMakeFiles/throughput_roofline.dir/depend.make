# Empty dependencies file for throughput_roofline.
# This may be replaced when dependencies are built.
