file(REMOVE_RECURSE
  "CMakeFiles/fig4_corundum_tradeoffs.dir/fig4_corundum_tradeoffs.cpp.o"
  "CMakeFiles/fig4_corundum_tradeoffs.dir/fig4_corundum_tradeoffs.cpp.o.d"
  "fig4_corundum_tradeoffs"
  "fig4_corundum_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_corundum_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
