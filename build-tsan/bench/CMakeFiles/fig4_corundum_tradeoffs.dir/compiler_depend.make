# Empty compiler generated dependencies file for fig4_corundum_tradeoffs.
# This may be replaced when dependencies are built.
