# Empty dependencies file for ablation_nwm_bandwidth.
# This may be replaced when dependencies are built.
