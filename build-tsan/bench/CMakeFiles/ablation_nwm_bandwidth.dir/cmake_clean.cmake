file(REMOVE_RECURSE
  "CMakeFiles/ablation_nwm_bandwidth.dir/ablation_nwm_bandwidth.cpp.o"
  "CMakeFiles/ablation_nwm_bandwidth.dir/ablation_nwm_bandwidth.cpp.o.d"
  "ablation_nwm_bandwidth"
  "ablation_nwm_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nwm_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
