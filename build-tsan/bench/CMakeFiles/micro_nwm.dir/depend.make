# Empty dependencies file for micro_nwm.
# This may be replaced when dependencies are built.
