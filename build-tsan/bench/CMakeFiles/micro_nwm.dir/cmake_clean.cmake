file(REMOVE_RECURSE
  "CMakeFiles/micro_nwm.dir/micro_nwm.cpp.o"
  "CMakeFiles/micro_nwm.dir/micro_nwm.cpp.o.d"
  "micro_nwm"
  "micro_nwm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
