file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_objective.dir/ablation_power_objective.cpp.o"
  "CMakeFiles/ablation_power_objective.dir/ablation_power_objective.cpp.o.d"
  "ablation_power_objective"
  "ablation_power_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
