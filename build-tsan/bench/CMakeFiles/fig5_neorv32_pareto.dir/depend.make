# Empty dependencies file for fig5_neorv32_pareto.
# This may be replaced when dependencies are built.
