file(REMOVE_RECURSE
  "CMakeFiles/fig5_neorv32_pareto.dir/fig5_neorv32_pareto.cpp.o"
  "CMakeFiles/fig5_neorv32_pareto.dir/fig5_neorv32_pareto.cpp.o.d"
  "fig5_neorv32_pareto"
  "fig5_neorv32_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_neorv32_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
