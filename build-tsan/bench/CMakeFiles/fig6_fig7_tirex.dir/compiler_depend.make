# Empty compiler generated dependencies file for fig6_fig7_tirex.
# This may be replaced when dependencies are built.
