file(REMOVE_RECURSE
  "CMakeFiles/fig6_fig7_tirex.dir/fig6_fig7_tirex.cpp.o"
  "CMakeFiles/fig6_fig7_tirex.dir/fig6_fig7_tirex.cpp.o.d"
  "fig6_fig7_tirex"
  "fig6_fig7_tirex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fig7_tirex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
