
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_fig7_tirex.cpp" "bench/CMakeFiles/fig6_fig7_tirex.dir/fig6_fig7_tirex.cpp.o" "gcc" "bench/CMakeFiles/fig6_fig7_tirex.dir/fig6_fig7_tirex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/dovado_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/boxing/CMakeFiles/dovado_boxing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/edatool/CMakeFiles/dovado_edatool.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/model/CMakeFiles/dovado_model.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/opt/CMakeFiles/dovado_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/dovado_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tcl/CMakeFiles/dovado_tcl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hdl/CMakeFiles/dovado_hdl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fpga/CMakeFiles/dovado_fpga.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
