# Empty dependencies file for micro_nsga2.
# This may be replaced when dependencies are built.
