file(REMOVE_RECURSE
  "CMakeFiles/micro_nsga2.dir/micro_nsga2.cpp.o"
  "CMakeFiles/micro_nsga2.dir/micro_nsga2.cpp.o.d"
  "micro_nsga2"
  "micro_nsga2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nsga2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
