# Empty compiler generated dependencies file for ablation_control_model.
# This may be replaced when dependencies are built.
