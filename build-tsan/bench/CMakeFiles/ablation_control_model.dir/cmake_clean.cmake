file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_model.dir/ablation_control_model.cpp.o"
  "CMakeFiles/ablation_control_model.dir/ablation_control_model.cpp.o.d"
  "ablation_control_model"
  "ablation_control_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
