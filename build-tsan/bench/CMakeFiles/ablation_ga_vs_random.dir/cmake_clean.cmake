file(REMOVE_RECURSE
  "CMakeFiles/ablation_ga_vs_random.dir/ablation_ga_vs_random.cpp.o"
  "CMakeFiles/ablation_ga_vs_random.dir/ablation_ga_vs_random.cpp.o.d"
  "ablation_ga_vs_random"
  "ablation_ga_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ga_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
