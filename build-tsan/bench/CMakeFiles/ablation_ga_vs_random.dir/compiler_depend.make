# Empty compiler generated dependencies file for ablation_ga_vs_random.
# This may be replaced when dependencies are built.
