file(REMOVE_RECURSE
  "CMakeFiles/micro_parser.dir/micro_parser.cpp.o"
  "CMakeFiles/micro_parser.dir/micro_parser.cpp.o.d"
  "micro_parser"
  "micro_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
