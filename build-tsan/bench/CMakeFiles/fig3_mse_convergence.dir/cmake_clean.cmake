file(REMOVE_RECURSE
  "CMakeFiles/fig3_mse_convergence.dir/fig3_mse_convergence.cpp.o"
  "CMakeFiles/fig3_mse_convergence.dir/fig3_mse_convergence.cpp.o.d"
  "fig3_mse_convergence"
  "fig3_mse_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mse_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
