# Empty dependencies file for fig3_mse_convergence.
# This may be replaced when dependencies are built.
