# Empty dependencies file for test_edatool.
# This may be replaced when dependencies are built.
