
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edatool/power_test.cpp" "tests/CMakeFiles/test_edatool.dir/edatool/power_test.cpp.o" "gcc" "tests/CMakeFiles/test_edatool.dir/edatool/power_test.cpp.o.d"
  "/root/repo/tests/edatool/report_test.cpp" "tests/CMakeFiles/test_edatool.dir/edatool/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_edatool.dir/edatool/report_test.cpp.o.d"
  "/root/repo/tests/edatool/techmap_test.cpp" "tests/CMakeFiles/test_edatool.dir/edatool/techmap_test.cpp.o" "gcc" "tests/CMakeFiles/test_edatool.dir/edatool/techmap_test.cpp.o.d"
  "/root/repo/tests/edatool/timing_test.cpp" "tests/CMakeFiles/test_edatool.dir/edatool/timing_test.cpp.o" "gcc" "tests/CMakeFiles/test_edatool.dir/edatool/timing_test.cpp.o.d"
  "/root/repo/tests/edatool/vivado_sim_test.cpp" "tests/CMakeFiles/test_edatool.dir/edatool/vivado_sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_edatool.dir/edatool/vivado_sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/edatool/CMakeFiles/dovado_edatool.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/dovado_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fpga/CMakeFiles/dovado_fpga.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tcl/CMakeFiles/dovado_tcl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hdl/CMakeFiles/dovado_hdl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
