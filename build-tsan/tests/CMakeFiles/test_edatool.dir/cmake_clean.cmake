file(REMOVE_RECURSE
  "CMakeFiles/test_edatool.dir/edatool/power_test.cpp.o"
  "CMakeFiles/test_edatool.dir/edatool/power_test.cpp.o.d"
  "CMakeFiles/test_edatool.dir/edatool/report_test.cpp.o"
  "CMakeFiles/test_edatool.dir/edatool/report_test.cpp.o.d"
  "CMakeFiles/test_edatool.dir/edatool/techmap_test.cpp.o"
  "CMakeFiles/test_edatool.dir/edatool/techmap_test.cpp.o.d"
  "CMakeFiles/test_edatool.dir/edatool/timing_test.cpp.o"
  "CMakeFiles/test_edatool.dir/edatool/timing_test.cpp.o.d"
  "CMakeFiles/test_edatool.dir/edatool/vivado_sim_test.cpp.o"
  "CMakeFiles/test_edatool.dir/edatool/vivado_sim_test.cpp.o.d"
  "test_edatool"
  "test_edatool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edatool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
