file(REMOVE_RECURSE
  "CMakeFiles/test_boxing.dir/boxing/box_test.cpp.o"
  "CMakeFiles/test_boxing.dir/boxing/box_test.cpp.o.d"
  "test_boxing"
  "test_boxing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boxing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
