# Empty dependencies file for test_boxing.
# This may be replaced when dependencies are built.
