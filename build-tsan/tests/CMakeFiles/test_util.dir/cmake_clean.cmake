file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/csv_test.cpp.o"
  "CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/json_test.cpp.o"
  "CMakeFiles/test_util.dir/util/json_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/strings_test.cpp.o"
  "CMakeFiles/test_util.dir/util/strings_test.cpp.o.d"
  "CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/test_util.dir/util/thread_pool_test.cpp.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
