# Empty compiler generated dependencies file for test_hdl.
# This may be replaced when dependencies are built.
