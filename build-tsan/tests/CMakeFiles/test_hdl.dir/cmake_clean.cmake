file(REMOVE_RECURSE
  "CMakeFiles/test_hdl.dir/hdl/expr_test.cpp.o"
  "CMakeFiles/test_hdl.dir/hdl/expr_test.cpp.o.d"
  "CMakeFiles/test_hdl.dir/hdl/frontend_test.cpp.o"
  "CMakeFiles/test_hdl.dir/hdl/frontend_test.cpp.o.d"
  "CMakeFiles/test_hdl.dir/hdl/lexer_test.cpp.o"
  "CMakeFiles/test_hdl.dir/hdl/lexer_test.cpp.o.d"
  "CMakeFiles/test_hdl.dir/hdl/robustness_test.cpp.o"
  "CMakeFiles/test_hdl.dir/hdl/robustness_test.cpp.o.d"
  "CMakeFiles/test_hdl.dir/hdl/verilog_parser_test.cpp.o"
  "CMakeFiles/test_hdl.dir/hdl/verilog_parser_test.cpp.o.d"
  "CMakeFiles/test_hdl.dir/hdl/vhdl_parser_test.cpp.o"
  "CMakeFiles/test_hdl.dir/hdl/vhdl_parser_test.cpp.o.d"
  "test_hdl"
  "test_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
