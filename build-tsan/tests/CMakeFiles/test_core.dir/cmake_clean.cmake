file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/derived_metric_test.cpp.o"
  "CMakeFiles/test_core.dir/core/derived_metric_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dse_parallel_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dse_parallel_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dse_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dse_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/evaluator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/evaluator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/param_domain_test.cpp.o"
  "CMakeFiles/test_core.dir/core/param_domain_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sensitivity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sensitivity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/session_test.cpp.o"
  "CMakeFiles/test_core.dir/core/session_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/writers_test.cpp.o"
  "CMakeFiles/test_core.dir/core/writers_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
