file(REMOVE_RECURSE
  "CMakeFiles/test_fpga.dir/fpga/board_test.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/board_test.cpp.o.d"
  "CMakeFiles/test_fpga.dir/fpga/device_test.cpp.o"
  "CMakeFiles/test_fpga.dir/fpga/device_test.cpp.o.d"
  "test_fpga"
  "test_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
