file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt/baselines_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/baselines_test.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/indicators_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/indicators_test.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/nds_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/nds_test.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/nsga2_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/nsga2_test.cpp.o.d"
  "CMakeFiles/test_opt.dir/opt/operators_test.cpp.o"
  "CMakeFiles/test_opt.dir/opt/operators_test.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
