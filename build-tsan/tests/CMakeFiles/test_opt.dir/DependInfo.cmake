
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opt/baselines_test.cpp" "tests/CMakeFiles/test_opt.dir/opt/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/baselines_test.cpp.o.d"
  "/root/repo/tests/opt/indicators_test.cpp" "tests/CMakeFiles/test_opt.dir/opt/indicators_test.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/indicators_test.cpp.o.d"
  "/root/repo/tests/opt/nds_test.cpp" "tests/CMakeFiles/test_opt.dir/opt/nds_test.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/nds_test.cpp.o.d"
  "/root/repo/tests/opt/nsga2_test.cpp" "tests/CMakeFiles/test_opt.dir/opt/nsga2_test.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/nsga2_test.cpp.o.d"
  "/root/repo/tests/opt/operators_test.cpp" "tests/CMakeFiles/test_opt.dir/opt/operators_test.cpp.o" "gcc" "tests/CMakeFiles/test_opt.dir/opt/operators_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/opt/CMakeFiles/dovado_opt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
