file(REMOVE_RECURSE
  "CMakeFiles/test_tcl.dir/tcl/builtins_test.cpp.o"
  "CMakeFiles/test_tcl.dir/tcl/builtins_test.cpp.o.d"
  "CMakeFiles/test_tcl.dir/tcl/frames_test.cpp.o"
  "CMakeFiles/test_tcl.dir/tcl/frames_test.cpp.o.d"
  "CMakeFiles/test_tcl.dir/tcl/interp_test.cpp.o"
  "CMakeFiles/test_tcl.dir/tcl/interp_test.cpp.o.d"
  "test_tcl"
  "test_tcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
