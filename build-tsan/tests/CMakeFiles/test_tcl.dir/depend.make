# Empty dependencies file for test_tcl.
# This may be replaced when dependencies are built.
