file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/boxing_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/boxing_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/domain_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/domain_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/evaluation_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/evaluation_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/nsga2_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/nsga2_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/nwm_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/nwm_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/techmap_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/techmap_property_test.cpp.o.d"
  "test_property"
  "test_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
