
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perf/roofline_test.cpp" "tests/CMakeFiles/test_perf.dir/perf/roofline_test.cpp.o" "gcc" "tests/CMakeFiles/test_perf.dir/perf/roofline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/perf/CMakeFiles/dovado_perf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fpga/CMakeFiles/dovado_fpga.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/dovado_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
