# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build-tsan/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fpga "/root/repo/build-tsan/tests/test_fpga")
set_tests_properties(test_fpga PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hdl "/root/repo/build-tsan/tests/test_hdl")
set_tests_properties(test_hdl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;25;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_boxing "/root/repo/build-tsan/tests/test_boxing")
set_tests_properties(test_boxing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;35;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tcl "/root/repo/build-tsan/tests/test_tcl")
set_tests_properties(test_tcl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;40;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_netlist "/root/repo/build-tsan/tests/test_netlist")
set_tests_properties(test_netlist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;47;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_edatool "/root/repo/build-tsan/tests/test_edatool")
set_tests_properties(test_edatool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;53;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_opt "/root/repo/build-tsan/tests/test_opt")
set_tests_properties(test_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;62;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build-tsan/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;71;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build-tsan/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;78;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build-tsan/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;90;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cli "/root/repo/build-tsan/tests/test_cli")
set_tests_properties(test_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;95;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_property "/root/repo/build-tsan/tests/test_property")
set_tests_properties(test_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;101;dovado_test;/root/repo/tests/CMakeLists.txt;0;")
