// Figures 6-7 + Table II reproduction: TiReX design space exploration on a
// Zynq UltraScale+ ZU3EG (16 nm) and a Kintex-7 XC7K70T (28 nm)
// (paper Sec. IV-D).
//
// Paper setup: VHDL top, parameters NCluster (datapath parallelism /
// instruction width), context-switch stack size, instruction and data
// memory sizes, all power-of-two restricted. Expected shape: fewer
// non-dominated solutions on the ZU3EG than on the XC7K70T (paper: 4 vs 8),
// similar parameter choices on both devices, and a large technology gap in
// achievable frequency (~550 vs ~190 MHz) despite near-identical
// configurations.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

namespace {

int log2_of(std::int64_t v) {
  int e = 0;
  while (v > 1) {
    v >>= 1;
    ++e;
  }
  return e;
}

core::DseResult explore(const std::string& part, std::uint64_t seed) {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/tirex_top.vhd",
                             hdl::HdlLanguage::kVhdl, "work", false});
  project.top_module = "tirex_top";
  project.part = part;
  project.target_period_ns = 1.0;

  core::DseConfig config;
  // Table II's observed ranges: NCluster 1, stack 2^0..2^8, memories
  // 2^3..2^4 (we let NCluster scale up to 4 so the optimizer has to discover
  // that 1 is the area-optimal choice).
  config.space.params.push_back({"NCLUSTER", core::ParamDomain::power_of_two(0, 2)});
  config.space.params.push_back({"STACK_SIZE", core::ParamDomain::power_of_two(0, 8)});
  config.space.params.push_back({"INSTR_MEM_SIZE", core::ParamDomain::power_of_two(3, 4)});
  config.space.params.push_back({"DATA_MEM_SIZE", core::ParamDomain::power_of_two(3, 4)});
  config.objectives = {{"lut", false}, {"bram", false}, {"fmax_mhz", true}};
  config.ga.population_size = 22;
  config.ga.max_generations = 14;
  config.ga.seed = seed;
  config.use_approximation = false;

  core::DseEngine engine(project, config);
  return engine.run();
}

void print_table(const char* device_label, const std::vector<core::ExploredPoint>& pareto) {
  std::printf("Table II (%s): configuration parameters\n", device_label);
  std::printf("%-18s", device_label);
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    std::printf(" %6c", static_cast<char>('A' + i));
  }
  auto row = [&](const char* label, const char* param, bool as_pow) {
    std::printf("\n%-18s", label);
    for (const auto& p : pareto) {
      if (as_pow) std::printf("   2^%-2d", log2_of(p.params.at(param)));
      else std::printf(" %6lld", static_cast<long long>(p.params.at(param)));
    }
  };
  row("NCluster", "NCLUSTER", false);
  row("Stack. Size", "STACK_SIZE", true);
  row("Instr. Mem. Size", "INSTR_MEM_SIZE", true);
  row("Data Mem. Size", "DATA_MEM_SIZE", true);
  std::printf("\n\n");
}

double best_fmax(const std::vector<core::ExploredPoint>& pareto) {
  double best = 0.0;
  for (const auto& p : pareto) best = std::max(best, p.metrics.get("fmax_mhz"));
  return best;
}

}  // namespace

int main() {
  const auto zu3eg = explore("xczu3eg-sbva484-1-e", 6);
  const auto xc7k = explore("xc7k70tfbv676-1", 6);

  auto sorted = [](core::DseResult result) {
    std::sort(result.pareto.begin(), result.pareto.end(),
              [](const core::ExploredPoint& a, const core::ExploredPoint& b) {
                return a.metrics.get("lut") < b.metrics.get("lut");
              });
    return result.pareto;
  };
  const auto zu_pareto = sorted(zu3eg);
  const auto k7_pareto = sorted(xc7k);

  print_table("ZU3EG", zu_pareto);
  print_table("XC7K", k7_pareto);

  std::printf("Figure 6: non-dominated solutions on the ZU3EG\n%s\n",
              core::format_table(zu_pareto).c_str());
  std::printf("Figure 7: non-dominated solutions on the XC7K70T\n%s\n",
              core::format_table(k7_pareto).c_str());

  const double zu_fmax = best_fmax(zu_pareto);
  const double k7_fmax = best_fmax(k7_pareto);
  std::printf("paper expectation vs measured:\n");
  std::printf("  - technology gap in frequency (paper ~550 vs ~190 MHz): %.0f vs %.0f MHz"
              " (ratio %.1fx)\n",
              zu_fmax, k7_fmax, zu_fmax / k7_fmax);
  std::printf("  - solution-count differs across devices (paper 4 vs 8): %zu vs %zu\n",
              zu_pareto.size(), k7_pareto.size());
  std::printf("  - tool runs: ZU3EG %zu, XC7K %zu\n", zu3eg.stats.tool_runs,
              xc7k.stats.tool_runs);
  return 0;
}
