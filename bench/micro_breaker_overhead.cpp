// Clean-path cost of the backend health layer (see DESIGN.md "Availability
// & degradation ladder"): on a healthy backend the circuit breaker is one
// closed-state admission check plus one outcome report per fresh
// evaluation. Times fresh-point evaluations through the broker with and
// without a health manager attached and prints a JSON summary — the
// committed artifact bench/breaker_overhead.json is this program's output.
// The acceptance bar is < 1% overhead on the clean path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/broker.hpp"
#include "src/core/health/manager.hpp"

namespace {

using namespace dovado;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

/// Wall-clock nanoseconds per fresh evaluation (cache never hits); min of
/// the caller's rounds filters scheduler noise.
double ns_per_eval(bool with_breaker, int evals) {
  core::EvaluationBroker broker(fifo_project(), core::BrokerConfig{});
  if (with_breaker) {
    broker.set_health_manager(
        std::make_shared<core::BackendHealthManager>(core::BreakerConfig{}));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < evals; ++i) {
    const auto r = broker.tool_evaluate({{"DEPTH", 8 + i}});
    if (!r.ok) return -1.0;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() /
         static_cast<double>(evals);
}

}  // namespace

int main() {
  constexpr int kRepeats = 24;
  constexpr int kEvals = 300;

  // Warm up allocator/page caches, then interleave the modes per round —
  // alternating which goes first — so machine drift hits both equally
  // instead of biasing one side.
  (void)ns_per_eval(false, kEvals);
  (void)ns_per_eval(true, kEvals);
  double bare = 1e300;
  double with_breaker = 1e300;
  for (int round = 0; round < kRepeats; ++round) {
    if (round % 2 == 0) {
      bare = std::min(bare, ns_per_eval(false, kEvals));
      with_breaker = std::min(with_breaker, ns_per_eval(true, kEvals));
    } else {
      with_breaker = std::min(with_breaker, ns_per_eval(true, kEvals));
      bare = std::min(bare, ns_per_eval(false, kEvals));
    }
  }
  if (bare <= 0.0 || with_breaker <= 0.0) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  const double overhead_pct = 100.0 * (with_breaker - bare) / bare;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_breaker_overhead\",\n");
  std::printf("  \"evals_per_round\": %d,\n", kEvals);
  std::printf("  \"rounds\": %d,\n", kRepeats);
  std::printf("  \"bare_ns_per_eval\": %.0f,\n", bare);
  std::printf("  \"breaker_ns_per_eval\": %.0f,\n", with_breaker);
  std::printf("  \"breaker_overhead_percent\": %.2f,\n", overhead_pct);
  std::printf("  \"budget_percent\": 1.0,\n");
  std::printf("  \"within_budget\": %s\n", overhead_pct < 1.0 ? "true" : "false");
  std::printf("}\n");
  return 0;
}
