// Micro benchmarks of the end-to-end single-point evaluation pipeline:
// the real-time cost of one simulated tool run (parse + box + TCL + map +
// time + report round-trip) and the cache-hit fast path.
#include <benchmark/benchmark.h>

#include <string>

#include "src/core/evaluator.hpp"

namespace {

using namespace dovado;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

void BM_EvaluateFreshPoint(benchmark::State& state) {
  core::PointEvaluator evaluator(fifo_project());
  std::int64_t depth = 8;
  for (auto _ : state) {
    // New depth every iteration so the cache never hits.
    auto r = evaluator.evaluate({{"DEPTH", depth}, {"DATA_WIDTH", 32}});
    benchmark::DoNotOptimize(r);
    depth = 8 + (depth - 8 + 1) % 500;
  }
}
BENCHMARK(BM_EvaluateFreshPoint);

void BM_EvaluateCachedPoint(benchmark::State& state) {
  core::PointEvaluator evaluator(fifo_project());
  (void)evaluator.evaluate({{"DEPTH", 64}});
  for (auto _ : state) {
    auto r = evaluator.evaluate({{"DEPTH", 64}});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EvaluateCachedPoint);

void BM_SynthesisOnlyVsFullFlow(benchmark::State& state) {
  core::ProjectConfig config = fifo_project();
  config.run_implementation = state.range(0) != 0;
  core::PointEvaluator evaluator(config);
  std::int64_t depth = 8;
  for (auto _ : state) {
    auto r = evaluator.evaluate({{"DEPTH", depth}});
    benchmark::DoNotOptimize(r);
    depth = 8 + (depth - 8 + 1) % 500;
  }
}
BENCHMARK(BM_SynthesisOnlyVsFullFlow)->Arg(0)->Arg(1);

void BM_BoxGeneration(benchmark::State& state) {
  core::PointEvaluator evaluator(fifo_project());
  // Isolate the constructor cost (parse of the project sources).
  for (auto _ : state) {
    core::PointEvaluator fresh(fifo_project());
    benchmark::DoNotOptimize(fresh.module().name);
  }
}
BENCHMARK(BM_BoxGeneration);

}  // namespace
