// Figure 5 reproduction: non-dominated solutions of the Neorv32 memory
// exploration on a Kintex-7 (paper Sec. IV-C).
//
// Paper setup: VHDL top module, instruction/data memory sizes restricted to
// powers of two, approximation model disabled. Expected shape: a handful of
// non-dominated solutions (the paper found five) whose main difference is
// BRAM usage — the configuration with 2^15 memories shows a sensible BRAM
// change while leaving the other metrics almost unchanged.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

namespace {

int log2_of(std::int64_t v) {
  int e = 0;
  while (v > 1) {
    v >>= 1;
    ++e;
  }
  return e;
}

}  // namespace

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/neorv32_top.vhd",
                             hdl::HdlLanguage::kVhdl, "work", false});
  project.top_module = "neorv32_top";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;

  core::DseConfig config;
  config.space.params.push_back(
      {"MEM_INT_IMEM_SIZE", core::ParamDomain::power_of_two(11, 15)});
  config.space.params.push_back(
      {"MEM_INT_DMEM_SIZE", core::ParamDomain::power_of_two(11, 15)});
  config.objectives = {{"bram", false}, {"lut", false}, {"ff", false},
                       {"fmax_mhz", true}};
  config.ga.population_size = 14;
  config.ga.max_generations = 12;
  config.ga.seed = 32;
  config.use_approximation = false;

  core::DseEngine engine(project, config);
  const core::DseResult result = engine.run();

  std::vector<core::ExploredPoint> pareto = result.pareto;
  std::sort(pareto.begin(), pareto.end(),
            [](const core::ExploredPoint& a, const core::ExploredPoint& b) {
              return a.metrics.get("bram") > b.metrics.get("bram");
            });

  std::printf("Figure 5: non-dominated solutions for Neorv32 (xc7k70t)\n");
  std::printf("%-6s %10s %10s %8s %8s %6s %10s\n", "sol", "IMEM", "DMEM", "LUTs", "FFs",
              "BRAM", "Fmax_MHz");
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    const auto& p = pareto[i];
    std::printf("%-6zu %7s2^%-2d %7s2^%-2d %8.0f %8.0f %6.0f %10.1f\n", i + 1, "",
                log2_of(p.params.at("MEM_INT_IMEM_SIZE")), "",
                log2_of(p.params.at("MEM_INT_DMEM_SIZE")), p.metrics.get("lut"),
                p.metrics.get("ff"), p.metrics.get("bram"), p.metrics.get("fmax_mhz"));
  }

  // The paper's headline comparison: 2^15/2^15 vs 2^14/2^13.
  const auto comparison = engine.evaluate_set({
      {{"MEM_INT_IMEM_SIZE", 1 << 15}, {"MEM_INT_DMEM_SIZE", 1 << 15}},
      {{"MEM_INT_IMEM_SIZE", 1 << 14}, {"MEM_INT_DMEM_SIZE", 1 << 13}},
  });
  const double bram_big = comparison[0].metrics.get("bram");
  const double bram_small = comparison[1].metrics.get("bram");
  const double lut_big = comparison[0].metrics.get("lut");
  const double lut_small = comparison[1].metrics.get("lut");

  std::printf("\npaper expectation vs measured:\n");
  std::printf("  - few non-dominated solutions (paper: 5) ....... measured %zu\n",
              pareto.size());
  std::printf("  - 2^15 memories show a sensible BRAM change .... %.0f vs %.0f BRAM\n",
              bram_big, bram_small);
  std::printf("  - other metrics almost unchanged ............... LUT %.0f vs %.0f (%.1f%%)\n",
              lut_big, lut_small, 100.0 * (lut_big - lut_small) / lut_small);
  return 0;
}
