// Evaluator-fleet utilization: generational barrier vs steady-state engine
// (see DESIGN.md "Steady-state engine"). Both engines run the FIFO design
// space on 4 virtual lanes under a heavy-tailed fault plan (25% of runs
// hang 10x longer, then complete) with the SAME simulated tool-second
// budget.
// The batch engine barriers every generation — all lanes idle until the
// slowest run lands — while the steady engine keeps submitting as lanes
// free up. Prints a JSON summary; the committed artifact
// bench/steady_state_utilization.json is this program's output and the
// trajectory entry is appended to BENCH_utilization.json per PR.
//
// Acceptance bar (exit code 1 when missed): steady utilization > 90%,
// batch utilization < 70%, steady hypervolume >= batch hypervolume at the
// shared budget.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/opt/indicators.hpp"

namespace {

using namespace dovado;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

core::DseConfig base_config() {
  core::DseConfig config;
  config.space.params.push_back({"DEPTH", core::ParamDomain::range(8, 200)});
  config.objectives = {{"lut", false}, {"fmax_mhz", true}};
  config.ga.population_size = 12;
  config.ga.max_generations = 8;
  config.ga.seed = 7;
  config.workers = 0;        // inline: the virtual schedule replays exactly
  config.virtual_lanes = 4;  // the modeled evaluator fleet
  // Heavy tails without failures: 25% of runs take 10x longer, then return
  // a clean answer. No retries fire, no breaker trips — the only effect is
  // the one the barrier turns into fleet-wide idle time.
  std::string error;
  config.fault_plan =
      edatool::FaultPlan::parse("seed=7,hang=0.25,hang_factor=10", error)
          .value_or(edatool::FaultPlan{});
  return config;
}

/// Minimized objective vectors of a front: {lut, -fmax_mhz}.
std::vector<opt::Objectives> front_objectives(const core::DseResult& result) {
  std::vector<opt::Objectives> objs;
  for (const auto& p : result.pareto) {
    objs.push_back({p.metrics.get("lut"), -p.metrics.get("fmax_mhz")});
  }
  return objs;
}

}  // namespace

int main() {
  // The batch engine's full campaign defines the shared tool-second budget.
  core::DseConfig batch_config = base_config();
  core::DseEngine batch(fifo_project(), batch_config);
  const core::DseResult batch_result = batch.run();
  const double budget_seconds = batch_result.stats.simulated_tool_seconds;

  // Same budget, steady engine: submission stops at the deadline, so it
  // spends the same tool seconds — just with no lane ever parked at a
  // barrier (the evaluation cap is set far above what the budget admits).
  core::DseConfig steady_config = base_config();
  steady_config.steady_state = true;
  steady_config.steady_state_evaluations = 100000;
  steady_config.deadline_tool_seconds = budget_seconds;
  core::DseEngine steady(fifo_project(), steady_config);
  const core::DseResult steady_result = steady.run();

  const auto batch_front = front_objectives(batch_result);
  const auto steady_front = front_objectives(steady_result);
  opt::Objectives reference = {0.0, 0.0};
  for (const auto* front : {&batch_front, &steady_front}) {
    for (const auto& o : *front) {
      reference[0] = std::max(reference[0], o[0] + 1.0);
      reference[1] = std::max(reference[1], o[1] + 1.0);
    }
  }
  const double batch_hv = opt::hypervolume(batch_front, reference);
  const double steady_hv = opt::hypervolume(steady_front, reference);

  const double batch_util = batch_result.stats.tool_seconds_utilization;
  const double steady_util = steady_result.stats.tool_seconds_utilization;
  const bool ok = steady_util > 0.90 && batch_util < 0.70 &&
                  steady_hv >= batch_hv * (1.0 - 1e-9);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_steady_state_utilization\",\n");
  std::printf("  \"virtual_lanes\": %zu, \"fault_plan\": \"seed=7,hang=0.25,hang_factor=10\",\n",
              batch_result.stats.virtual_lanes);
  std::printf("  \"budget_tool_seconds\": %.0f,\n", budget_seconds);
  std::printf("  \"batch\": {\"utilization\": %.4f, \"hypervolume\": %.1f, "
              "\"evaluations\": %zu, \"tool_seconds\": %.0f, \"busy\": %.0f, "
              "\"makespan\": %.0f, \"faults\": %zu},\n",
              batch_util, batch_hv, batch_result.stats.ga_evaluations,
              batch_result.stats.simulated_tool_seconds,
              batch_result.stats.busy_tool_seconds,
              batch_result.stats.virtual_makespan_seconds,
              batch_result.stats.faults_injected);
  std::printf("  \"steady\": {\"utilization\": %.4f, \"hypervolume\": %.1f, "
              "\"evaluations\": %zu, \"tool_seconds\": %.0f, \"busy\": %.0f, "
              "\"makespan\": %.0f, \"faults\": %zu},\n",
              steady_util, steady_hv, steady_result.stats.ga_evaluations,
              steady_result.stats.simulated_tool_seconds,
              steady_result.stats.busy_tool_seconds,
              steady_result.stats.virtual_makespan_seconds,
              steady_result.stats.faults_injected);
  std::printf("  \"bar\": \"steady > 0.90, batch < 0.70, steady_hv >= batch_hv\",\n");
  std::printf("  \"within_budget\": %s\n", ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
