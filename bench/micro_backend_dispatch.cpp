// Cost of the EdaBackend indirection (see DESIGN.md "Backend abstraction &
// multi-fidelity screening"): routing a flow through the VivadoSimBackend
// adapter — virtual dispatch plus the FlowOutcome report copy — must be
// noise against the flow itself. Times identical flows driven directly on
// a VivadoSim session vs. through the EdaBackend interface and prints a
// JSON summary — the committed artifact bench/backend_dispatch.json is this
// program's output. The acceptance bar is < 1% dispatch overhead.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/edatool/backend.hpp"
#include "src/edatool/report.hpp"
#include "src/edatool/vivado_sim.hpp"
#include "src/edatool/vivado_sim_backend.hpp"
#include "src/tcl/frames.hpp"

namespace {

using namespace dovado;

tcl::FrameConfig fifo_frame() {
  tcl::FrameConfig frame;
  frame.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                           hdl::HdlLanguage::kSystemVerilog, "work", false});
  frame.box_path = std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv";
  frame.box_language = hdl::HdlLanguage::kSystemVerilog;
  frame.xdc_path = "box.xdc";
  frame.top = "cv32e40p_fifo";
  frame.part = "xc7k70tfbv676-1";
  frame.run_implementation = true;
  return frame;
}

const char kXdc[] = "create_clock -period 1.000 [get_ports clk_i]\n";

/// Both paths do the same downstream work the evaluator would: walk the
/// report chunks and parse the utilization table. The accumulated sum
/// keeps the compiler from discarding either loop.
std::int64_t consume(const std::vector<std::string>& reports) {
  std::int64_t sum = 0;
  for (const auto& chunk : reports) {
    if (const auto report = edatool::UtilizationReport::parse(chunk)) {
      sum += report->used("Slice LUTs");
    }
  }
  return sum;
}

/// Wall-clock nanoseconds per flow, one session per round; min-of-rounds
/// filters scheduler noise.
double ns_per_flow_raw(int evals, std::int64_t& sink) {
  edatool::VivadoSim sim;
  sim.add_virtual_file("box.xdc", kXdc);
  const std::string script = tcl::generate_flow_script(fifo_frame());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < evals; ++i) {
    const tcl::EvalResult r = sim.run_script(script);
    if (!r.ok) return -1.0;
    sink += consume(sim.interp().output());
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() /
         static_cast<double>(evals);
}

double ns_per_flow_adapter(int evals, std::int64_t& sink) {
  edatool::VivadoSimBackend backend;
  backend.add_virtual_file("box.xdc", kXdc);
  edatool::FlowRequest request;
  request.frame = fifo_frame();
  request.period_ns = 1.0;
  request.script = tcl::generate_flow_script(request.frame);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < evals; ++i) {
    const edatool::FlowOutcome outcome = backend.run_flow(request);
    if (!outcome.ok) return -1.0;
    sink += consume(outcome.reports);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() /
         static_cast<double>(evals);
}

}  // namespace

int main() {
  constexpr int kRepeats = 10;
  constexpr int kEvals = 200;

  // Warm up allocator/page caches, then interleave the two paths per round
  // so machine drift hits both equally instead of biasing the first.
  std::int64_t sink = 0;
  (void)ns_per_flow_raw(kEvals, sink);
  double raw = 1e300;
  double adapter = 1e300;
  for (int round = 0; round < kRepeats; ++round) {
    raw = std::min(raw, ns_per_flow_raw(kEvals, sink));
    adapter = std::min(adapter, ns_per_flow_adapter(kEvals, sink));
  }
  if (raw <= 0.0 || adapter <= 0.0 || sink == 0) {
    std::fprintf(stderr, "flow failed\n");
    return 1;
  }

  const double overhead_pct = 100.0 * (adapter - raw) / raw;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_backend_dispatch\",\n");
  std::printf("  \"flows_per_round\": %d,\n", kEvals);
  std::printf("  \"rounds\": %d,\n", kRepeats);
  std::printf("  \"raw_ns_per_flow\": %.0f,\n", raw);
  std::printf("  \"adapter_ns_per_flow\": %.0f,\n", adapter);
  std::printf("  \"dispatch_overhead_percent\": %.2f,\n", overhead_pct);
  std::printf("  \"budget_percent\": 1.0,\n");
  std::printf("  \"within_budget\": %s\n", overhead_pct < 1.0 ? "true" : "false");
  std::printf("}\n");
  return 0;
}
