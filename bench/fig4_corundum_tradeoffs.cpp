// Figure 4 + Table I reproduction: non-dominated trade-offs of Corundum's
// completion queue manager on a Kintex-7 (paper Sec. IV-B).
//
// Paper setup: Verilog cpl_queue_manager, direct Vivado evaluations (the
// approximation model disabled), figures of merit LUTs / Registers / BRAM /
// maximum frequency, design parameters (# outstanding operations, # of
// queues, pipeline stages). Expected shape: BRAM count constant across the
// non-dominated set, LUTs and Registers vary with the configurations, and
// running frequency lands near 200 MHz.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/corundum_cq_manager.v",
                             hdl::HdlLanguage::kVerilog, "work", false});
  project.top_module = "cpl_queue_manager";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;

  core::DseConfig config;
  // Table I's observed ranges: ops 8..35, queue index width 4..7, pipe 2..5.
  config.space.params.push_back({"OP_TABLE_SIZE", core::ParamDomain::range(8, 35)});
  config.space.params.push_back({"QUEUE_INDEX_WIDTH", core::ParamDomain::range(4, 7)});
  config.space.params.push_back({"PIPELINE", core::ParamDomain::range(2, 5)});
  config.objectives = {{"lut", false}, {"ff", false}, {"bram", false}, {"fmax_mhz", true}};
  config.ga.population_size = 26;
  config.ga.max_generations = 14;
  config.ga.seed = 4;
  config.use_approximation = false;  // "disabling the approximator model"

  core::DseEngine engine(project, config);
  const core::DseResult result = engine.run();

  // Order like the paper's Table I (by register count ascending) and label
  // the design points A, B, C, ...
  std::vector<core::ExploredPoint> pareto = result.pareto;
  std::sort(pareto.begin(), pareto.end(),
            [](const core::ExploredPoint& a, const core::ExploredPoint& b) {
              return a.metrics.get("ff") < b.metrics.get("ff");
            });
  const std::size_t shown = std::min<std::size_t>(pareto.size(), 13);

  std::printf("Table I: configurations of the non-dominated design points\n");
  std::printf("%-26s", "Design Point");
  for (std::size_t i = 0; i < shown; ++i) std::printf(" %5c", static_cast<char>('A' + i));
  std::printf("\n%-26s", "# operations outstanding");
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf(" %5lld", static_cast<long long>(pareto[i].params.at("OP_TABLE_SIZE")));
  }
  std::printf("\n%-26s", "queue index width");
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf(" %5lld", static_cast<long long>(pareto[i].params.at("QUEUE_INDEX_WIDTH")));
  }
  std::printf("\n%-26s", "Pipe. stages");
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf(" %5lld", static_cast<long long>(pareto[i].params.at("PIPELINE")));
  }

  std::printf("\n\nFigure 4: solution trade-offs\n");
  std::printf("%-6s %8s %10s %6s %10s\n", "point", "LUTs", "Registers", "BRAM", "Fmax_MHz");
  double bram_min = 1e18;
  double bram_max = -1e18;
  double fmax_best = 0.0;
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& p = pareto[i];
    std::printf("%-6c %8.0f %10.0f %6.0f %10.1f\n", static_cast<char>('A' + i),
                p.metrics.get("lut"), p.metrics.get("ff"), p.metrics.get("bram"),
                p.metrics.get("fmax_mhz"));
    bram_min = std::min(bram_min, p.metrics.get("bram"));
    bram_max = std::max(bram_max, p.metrics.get("bram"));
    fmax_best = std::max(fmax_best, p.metrics.get("fmax_mhz"));
  }

  std::printf("\npaper expectation vs measured:\n");
  std::printf("  - BRAM constant across the set .......... measured %s (%.0f)\n",
              bram_min == bram_max ? "constant" : "NOT constant", bram_min);
  std::printf("  - frequency near 200 MHz ................ best %.0f MHz\n", fmax_best);
  std::printf("  - %zu non-dominated configurations (paper: 13)\n", pareto.size());
  std::printf("  - tool runs: %zu over %zu explored points, %.0f simulated seconds\n",
              result.stats.tool_runs, result.explored.size(),
              result.stats.simulated_tool_seconds);
  return 0;
}
