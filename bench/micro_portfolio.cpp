// Portfolio ablation: the bandit-selected searcher portfolio vs each single
// searcher at the same simulated tool-second budget, across all four rtl/
// designs (see DESIGN.md "Optimizer portfolio & algorithm selection").
//
// For each design a steady-state NSGA-II campaign defines the shared budget;
// every optimizer then runs inline (workers = 0, fully deterministic) with
// submission stopped at that budget, and fronts are scored by dominated
// hypervolume against a shared per-design reference point. Prints a JSON
// summary; the committed artifact bench/portfolio.json is this program's
// output and the trajectory entry is appended to BENCH_portfolio.json per PR.
//
// Acceptance bar (exit code 1 when missed): on every design the portfolio's
// hypervolume is >= the best single member's. The portfolio dedups across
// members and shifts asks toward whichever searcher is currently earning, so
// at worst it should track the winner instead of splitting the budget evenly.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/opt/indicators.hpp"

namespace {

using namespace dovado;

struct Design {
  std::string name;
  core::ProjectConfig project;
  core::DseConfig dse;
};

core::DseConfig ga_base(std::uint64_t seed) {
  core::DseConfig config;
  config.ga.population_size = 12;
  config.ga.max_generations = 11;
  config.ga.seed = seed;
  config.workers = 0;  // inline: the virtual schedule replays exactly
  config.steady_state = true;
  config.use_approximation = false;
  return config;
}

std::vector<Design> designs() {
  std::vector<Design> all;
  {
    Design d;
    d.name = "fifo";
    d.project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                                 hdl::HdlLanguage::kSystemVerilog, "work", false});
    d.project.top_module = "cv32e40p_fifo";
    d.project.part = "xc7k70tfbv676-1";
    d.project.target_period_ns = 1.0;
    d.dse = ga_base(7);
    d.dse.space.params.push_back({"DEPTH", core::ParamDomain::range(8, 200)});
    d.dse.objectives = {{"lut", false}, {"fmax_mhz", true}};
    all.push_back(std::move(d));
  }
  {
    Design d;
    d.name = "corundum";
    d.project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/corundum_cq_manager.v",
                                 hdl::HdlLanguage::kVerilog, "work", false});
    d.project.top_module = "cpl_queue_manager";
    d.project.part = "xc7k70tfbv676-1";
    d.project.target_period_ns = 1.0;
    d.dse = ga_base(4);
    d.dse.space.params.push_back({"OP_TABLE_SIZE", core::ParamDomain::range(8, 35)});
    d.dse.space.params.push_back({"QUEUE_INDEX_WIDTH", core::ParamDomain::range(4, 7)});
    d.dse.space.params.push_back({"PIPELINE", core::ParamDomain::range(2, 5)});
    d.dse.objectives = {{"lut", false}, {"ff", false}, {"bram", false}, {"fmax_mhz", true}};
    all.push_back(std::move(d));
  }
  {
    Design d;
    d.name = "neorv32";
    d.project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/neorv32_top.vhd",
                                 hdl::HdlLanguage::kVhdl, "work", false});
    d.project.top_module = "neorv32_top";
    d.project.part = "xc7k70tfbv676-1";
    d.project.target_period_ns = 1.0;
    d.dse = ga_base(32);
    d.dse.space.params.push_back(
        {"MEM_INT_IMEM_SIZE", core::ParamDomain::power_of_two(11, 15)});
    d.dse.space.params.push_back(
        {"MEM_INT_DMEM_SIZE", core::ParamDomain::power_of_two(11, 15)});
    d.dse.objectives = {{"bram", false}, {"lut", false}, {"ff", false}, {"fmax_mhz", true}};
    all.push_back(std::move(d));
  }
  {
    Design d;
    d.name = "tirex";
    d.project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/tirex_top.vhd",
                                 hdl::HdlLanguage::kVhdl, "work", false});
    d.project.top_module = "tirex_top";
    d.project.part = "xc7k70tfbv676-1";
    d.project.target_period_ns = 1.0;
    d.dse = ga_base(12);
    d.dse.space.params.push_back({"NCLUSTER", core::ParamDomain::power_of_two(0, 2)});
    d.dse.space.params.push_back({"STACK_SIZE", core::ParamDomain::power_of_two(0, 8)});
    d.dse.space.params.push_back({"INSTR_MEM_SIZE", core::ParamDomain::power_of_two(3, 4)});
    d.dse.space.params.push_back({"DATA_MEM_SIZE", core::ParamDomain::power_of_two(3, 4)});
    d.dse.objectives = {{"lut", false}, {"bram", false}, {"fmax_mhz", true}};
    all.push_back(std::move(d));
  }
  return all;
}

/// Minimized objective vectors of a front, per the design's objective list.
std::vector<opt::Objectives> front_objectives(const Design& design,
                                              const core::DseResult& result) {
  std::vector<opt::Objectives> objs;
  for (const auto& p : result.pareto) {
    opt::Objectives o;
    for (const auto& [metric, maximize] : design.dse.objectives) {
      const double v = p.metrics.get(metric);
      o.push_back(maximize ? -v : v);
    }
    objs.push_back(std::move(o));
  }
  return objs;
}

struct Run {
  std::string optimizer;
  double hypervolume = 0.0;
  std::size_t evaluations = 0;
  double tool_seconds = 0.0;
  std::vector<opt::Objectives> front;
};

}  // namespace

int main() {
  const std::vector<std::string> optimizers = {"nsga2", "random", "local",
                                               "surrogate", "portfolio"};
  bool all_ok = true;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_portfolio\",\n");
  std::printf("  \"bar\": \"portfolio_hv >= best single member per design at equal tool-second budget\",\n");
  std::printf("  \"designs\": [\n");

  const auto all = designs();
  for (std::size_t di = 0; di < all.size(); ++di) {
    const Design& design = all[di];

    // The NSGA-II campaign's full spend defines the shared budget.
    core::DseConfig probe = design.dse;
    core::DseEngine probe_engine(design.project, probe);
    const double budget_seconds = probe_engine.run().stats.simulated_tool_seconds;

    std::vector<Run> runs;
    for (const auto& name : optimizers) {
      core::DseConfig config = design.dse;
      config.optimizer = name;
      config.steady_state_evaluations = 100000;  // the deadline is the cap
      config.deadline_tool_seconds = budget_seconds;
      core::DseEngine engine(design.project, config);
      const core::DseResult result = engine.run();
      Run run;
      run.optimizer = name;
      run.evaluations = result.stats.ga_evaluations;
      run.tool_seconds = result.stats.simulated_tool_seconds;
      run.front = front_objectives(design, result);
      runs.push_back(std::move(run));
    }

    // Shared reference point: worst coordinate over every front, plus 1.
    opt::Objectives reference(design.dse.objectives.size(), 0.0);
    for (const auto& run : runs) {
      for (const auto& o : run.front) {
        for (std::size_t k = 0; k < o.size(); ++k) {
          reference[k] = std::max(reference[k], o[k] + 1.0);
        }
      }
    }
    double best_single = 0.0;
    double portfolio_hv = 0.0;
    for (auto& run : runs) {
      run.hypervolume = opt::hypervolume(run.front, reference);
      if (run.optimizer == "portfolio") {
        portfolio_hv = run.hypervolume;
      } else {
        best_single = std::max(best_single, run.hypervolume);
      }
    }
    const bool ok = portfolio_hv >= best_single * (1.0 - 1e-9);
    all_ok = all_ok && ok;

    std::printf("    {\"design\": \"%s\", \"budget_tool_seconds\": %.0f,\n",
                design.name.c_str(), budget_seconds);
    std::printf("     \"optimizers\": {");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::printf("%s\"%s\": {\"hypervolume\": %.1f, \"evaluations\": %zu, "
                  "\"tool_seconds\": %.0f}",
                  i == 0 ? "" : ", ", runs[i].optimizer.c_str(),
                  runs[i].hypervolume, runs[i].evaluations, runs[i].tool_seconds);
    }
    std::printf("},\n");
    std::printf("     \"best_single\": %.1f, \"portfolio\": %.1f, \"ok\": %s}%s\n",
                best_single, portfolio_hv, ok ? "true" : "false",
                di + 1 < all.size() ? "," : "");
  }

  std::printf("  ],\n");
  std::printf("  \"within_budget\": %s\n", all_ok ? "true" : "false");
  std::printf("}\n");
  return all_ok ? 0 : 1;
}
