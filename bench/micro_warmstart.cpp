// Cross-campaign evaluation store: value of a warm start, and the cost of
// carrying the store on a campaign that never hits it (see DESIGN.md
// "Evaluation store & warm start").
//
// Part 1 — hypervolume at equal budget: a donor campaign banks its
// evaluations in a store; then a warm campaign (store hits + front
// seeding) and a cold one (no store) run with the SAME simulated
// tool-second budget and a different seed. The warm campaign starts from
// the donor's non-dominated front and repays nothing for points the donor
// already evaluated, so its front at the budget must dominate-or-match.
//
// Part 2 — store-miss overhead: per-miss lookup latency (hash + map probe
// against a populated store) times the campaign's evaluation count, as a
// fraction of the campaign's wall clock; the bar is < 1%. Measured
// directly because differential timing of ~25 ms campaigns cannot resolve
// 1% against scheduler noise.
//
// Prints a JSON summary; the committed artifact bench/warmstart.json is
// this program's output and the trajectory entry is appended to
// BENCH_warmstart.json per PR. Exit code 1 when a bar is missed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/opt/indicators.hpp"
#include "src/store/store.hpp"

namespace {

using namespace dovado;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

core::DseConfig base_config(std::uint64_t seed) {
  core::DseConfig config;
  config.space.params.push_back({"DEPTH", core::ParamDomain::range(8, 200)});
  config.space.params.push_back({"FALL_THROUGH", core::ParamDomain::boolean()});
  config.objectives = {{"lut", false}, {"fmax_mhz", true}};
  config.ga.population_size = 12;
  config.ga.max_generations = 10;
  config.ga.seed = seed;
  return config;
}

std::string temp_store(const char* name) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string path = std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  return path;
}

/// Minimized objective vectors of a front: {lut, -fmax_mhz}.
std::vector<opt::Objectives> front_objectives(const core::DseResult& result) {
  std::vector<opt::Objectives> objs;
  for (const auto& p : result.pareto) {
    objs.push_back({p.metrics.get("lut"), -p.metrics.get("fmax_mhz")});
  }
  return objs;
}

}  // namespace

int main() {
  const std::string store_path = temp_store("dovado_bench_warmstart.dvstor");

  // Donor campaign: full budget, banks every evaluation. Scoped so its
  // writer lock is released before the warm campaign opens the store.
  core::DseResult donor_result;
  {
    core::DseConfig donor_config = base_config(7);
    donor_config.store_path = store_path;
    donor_config.campaign_id = "donor";
    core::DseEngine donor(fifo_project(), donor_config);
    donor_result = donor.run();
  }
  if (donor_result.stats.store_appends == 0) {
    std::fprintf(stderr, "donor banked nothing\n");
    return 1;
  }

  // A tight shared budget: a third of what the donor spent — enough for a
  // couple of generations cold, far from converged.
  const double budget = donor_result.stats.simulated_tool_seconds / 3.0;

  core::DseConfig cold_config = base_config(99);
  cold_config.deadline_tool_seconds = budget;
  core::DseEngine cold(fifo_project(), cold_config);
  const core::DseResult cold_result = cold.run();

  core::DseResult warm_result;
  {
    core::DseConfig warm_config = base_config(99);
    warm_config.deadline_tool_seconds = budget;
    warm_config.store_path = store_path;
    warm_config.campaign_id = "warm";
    core::DseEngine warm(fifo_project(), warm_config);
    warm_result = warm.run();
  }

  const auto cold_front = front_objectives(cold_result);
  const auto warm_front = front_objectives(warm_result);
  opt::Objectives reference = {0.0, 0.0};
  for (const auto* front : {&cold_front, &warm_front}) {
    for (const auto& o : *front) {
      reference[0] = std::max(reference[0], o[0] + 1.0);
      reference[1] = std::max(reference[1], o[1] + 1.0);
    }
  }
  const double cold_hv = opt::hypervolume(cold_front, reference);
  const double warm_hv = opt::hypervolume(warm_front, reference);
  const bool warm_wins = warm_hv >= cold_hv * (1.0 - 1e-9);

  // Part 2: store-lookup overhead on an all-miss campaign. A differential
  // timing of two ~25 ms campaigns cannot resolve a 1% bar (scheduler
  // noise alone swings several percent run to run), so the lookup cost is
  // measured where it is deterministic: per-miss latency of
  // EvalStore::lookup() against a store populated with foreign records,
  // multiplied by the number of evaluations the campaign performs, as a
  // fraction of the campaign's wall clock. Append durability (fsyncs) is
  // deliberately out of scope — real tool runs amortize it over
  // multi-second evaluations.
  const std::string miss_path = temp_store("dovado_bench_warmstart_miss.dvstor");
  store::StoreOptions batched;
  batched.fsync_interval = 256;
  auto miss_store = store::EvalStore::open_writer(miss_path, batched);
  if (!miss_store.store) {
    std::fprintf(stderr, "cannot create the miss store: %s\n",
                 miss_store.error.c_str());
    return 1;
  }
  // Foreign records (an extra WIDTH param) can never match a campaign
  // lookup, so every probe walks a realistically sized index and misses.
  for (std::int64_t n = 0; n < 1024; ++n) {
    store::StoreRecord rec;
    rec.params = {{"DEPTH", n}, {"WIDTH", 64}};
    rec.backend = "analytic";
    rec.tier = store::EvalStore::kTierHifi;
    rec.campaign = "miss-fill";
    rec.metrics = {{"lut", 1.0}};
    rec.ok = true;
    if (!miss_store.store->append(std::move(rec))) {
      std::fprintf(stderr, "cannot populate the miss store\n");
      return 1;
    }
  }
  if (!miss_store.store->flush()) return 1;

  // Campaign baseline: wall clock and evaluation count without any store.
  constexpr int kRounds = 3;
  double campaign_ms = 1e300;
  std::size_t campaign_evals = 0;
  for (int round = 0; round < kRounds; ++round) {
    core::DseConfig config = base_config(3);
    config.ga.population_size = 16;
    config.ga.max_generations = 25;
    core::DseEngine engine(fifo_project(), config);
    const auto start = std::chrono::steady_clock::now();
    const core::DseResult result = engine.run();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    campaign_ms = std::min(
        campaign_ms, std::chrono::duration<double, std::milli>(elapsed).count());
    campaign_evals = result.stats.tool_runs;
  }

  // End-to-end sanity: the same campaign carrying this store (read-only —
  // the bench still holds the writer lock) is a pure-lookup run.
  {
    core::DseConfig config = base_config(3);
    config.ga.population_size = 16;
    config.ga.max_generations = 25;
    config.store_path = miss_path;
    config.store_warm_start = false;
    core::DseEngine engine(fifo_project(), config);
    const core::DseResult result = engine.run();
    if (result.stats.store_hits != 0 || result.stats.store_appends != 0) {
      std::fprintf(stderr, "miss campaign was not a pure-lookup run\n");
      return 1;
    }
  }

  // Per-miss lookup latency over prebuilt design points spanning the
  // campaign's space.
  std::vector<core::DesignPoint> probes;
  for (std::int64_t depth = 8; depth <= 200; ++depth) {
    for (std::int64_t ft = 0; ft <= 1; ++ft) {
      probes.push_back({{"DEPTH", depth}, {"FALL_THROUGH", ft}});
    }
  }
  constexpr int kLookups = 200000;
  std::size_t hits = 0;
  const auto lookup_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kLookups; ++i) {
    if (miss_store.store->lookup(probes[static_cast<std::size_t>(i) % probes.size()],
                                 "analytic", store::EvalStore::kTierHifi)) {
      ++hits;
    }
  }
  const auto lookup_elapsed = std::chrono::steady_clock::now() - lookup_start;
  if (hits != 0) {
    std::fprintf(stderr, "probe unexpectedly hit the store\n");
    return 1;
  }
  const double per_lookup_us =
      std::chrono::duration<double, std::micro>(lookup_elapsed).count() / kLookups;
  const double overhead_pct = 100.0 * (static_cast<double>(campaign_evals) *
                                       per_lookup_us / 1000.0) / campaign_ms;
  const bool overhead_ok = overhead_pct < 1.0;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_warmstart\",\n");
  std::printf("  \"budget_tool_seconds\": %.0f,\n", budget);
  std::printf("  \"donor\": {\"tool_runs\": %zu, \"store_appends\": %zu, "
              "\"tool_seconds\": %.0f},\n",
              donor_result.stats.tool_runs, donor_result.stats.store_appends,
              donor_result.stats.simulated_tool_seconds);
  std::printf("  \"cold\": {\"hypervolume\": %.1f, \"tool_runs\": %zu, "
              "\"tool_seconds\": %.0f},\n",
              cold_hv, cold_result.stats.tool_runs,
              cold_result.stats.simulated_tool_seconds);
  std::printf("  \"warm\": {\"hypervolume\": %.1f, \"tool_runs\": %zu, "
              "\"store_hits\": %zu, \"seeded_points\": %zu, "
              "\"tool_seconds\": %.0f},\n",
              warm_hv, warm_result.stats.tool_runs, warm_result.stats.store_hits,
              warm_result.stats.store_seeded_points,
              warm_result.stats.simulated_tool_seconds);
  std::printf("  \"miss_overhead\": {\"campaign_ms\": %.1f, \"campaign_evals\": %zu, "
              "\"per_lookup_us\": %.3f, \"overhead_percent\": %.4f},\n",
              campaign_ms, campaign_evals, per_lookup_us, overhead_pct);
  std::printf("  \"bar\": \"warm_hv >= cold_hv at equal budget, miss overhead < 1%%\",\n");
  std::printf("  \"within_budget\": %s\n",
              warm_wins && overhead_ok ? "true" : "false");
  std::printf("}\n");
  return warm_wins && overhead_ok ? 0 : 1;
}
