// Micro benchmarks of the approximation model: the cost asymmetry that
// justifies the paper's control model (an NWM estimate must be orders of
// magnitude cheaper than a tool run), plus LOO-CV training cost.
#include <benchmark/benchmark.h>

#include "src/model/control.hpp"
#include "src/model/nadaraya_watson.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace dovado;

model::Dataset make_dataset(std::size_t n, std::size_t dims) {
  util::Rng rng(7);
  model::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    model::Point p(dims);
    for (auto& v : p) v = rng.uniform(0.0, 500.0);
    d.add(p, {p[0] * 2.0, 1000.0 - p[0]});
  }
  return d;
}

void BM_NwmPredict(benchmark::State& state) {
  const auto dataset = make_dataset(static_cast<std::size_t>(state.range(0)), 3);
  model::NadarayaWatson nwm;
  nwm.fit(dataset, {25.0, 25.0});
  const model::Point q = {100.0, 200.0, 300.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nwm.predict(q));
  }
}
BENCHMARK(BM_NwmPredict)->Range(32, 1024);

void BM_LooCvBandwidthSelection(benchmark::State& state) {
  const auto dataset = make_dataset(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::select_bandwidths(dataset));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LooCvBandwidthSelection)->Range(32, 256)->Complexity(benchmark::oNSquared);

void BM_AdaptiveThreshold(benchmark::State& state) {
  const auto dataset = make_dataset(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::adaptive_threshold(dataset));
  }
}
BENCHMARK(BM_AdaptiveThreshold)->Range(32, 512);

void BM_ControlDecision(benchmark::State& state) {
  model::ControlModel control;
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const model::Point p = {rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)};
    control.add_sample(p, {p[0], p[1]});
  }
  const model::Point q = {123.0, 321.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(control.decide(q));
  }
}
BENCHMARK(BM_ControlDecision);

void BM_SimilarityPhi(benchmark::State& state) {
  const auto dataset = make_dataset(static_cast<std::size_t>(state.range(0)), 4);
  const model::Point q = {1.0, 2.0, 3.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::similarity_phi(dataset, q, 1));
  }
}
BENCHMARK(BM_SimilarityPhi)->Range(32, 512);

}  // namespace
