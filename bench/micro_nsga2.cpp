// Micro benchmarks of the optimizer substrate: non-dominated sorting,
// crowding distance, and full NSGA-II generations on a synthetic problem.
#include <benchmark/benchmark.h>

#include "src/opt/indicators.hpp"
#include "src/opt/nds.hpp"
#include "src/opt/nsga2.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace dovado;

std::vector<opt::Objectives> random_objectives(std::size_t n, std::size_t m,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<opt::Objectives> objs(n);
  for (auto& o : objs) {
    o.resize(m);
    for (auto& v : o) v = rng.uniform();
  }
  return objs;
}

void BM_FastNonDominatedSort(benchmark::State& state) {
  const auto objs = random_objectives(static_cast<std::size_t>(state.range(0)), 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::fast_non_dominated_sort(objs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FastNonDominatedSort)->Range(16, 1024)->Complexity(benchmark::oNSquared);

void BM_CrowdingDistance(benchmark::State& state) {
  const auto objs = random_objectives(static_cast<std::size_t>(state.range(0)), 3, 2);
  std::vector<std::size_t> front(objs.size());
  for (std::size_t i = 0; i < front.size(); ++i) front[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::crowding_distance(objs, front));
  }
}
BENCHMARK(BM_CrowdingDistance)->Range(16, 1024);

/// Cheap synthetic problem so the bench isolates GA overhead (not fitness).
class SyntheticProblem final : public opt::Problem {
 public:
  explicit SyntheticProblem(std::size_t vars) : vars_(vars) {}
  [[nodiscard]] std::size_t n_vars() const override { return vars_; }
  [[nodiscard]] std::size_t n_objectives() const override { return 2; }
  [[nodiscard]] std::int64_t cardinality(std::size_t) const override { return 1024; }
  [[nodiscard]] opt::Objectives evaluate(const opt::Genome& g) override {
    double sum = 0.0;
    for (auto v : g) sum += static_cast<double>(v);
    return {sum, static_cast<double>(g[0]) - sum / static_cast<double>(g.size())};
  }

 private:
  std::size_t vars_;
};

void BM_Nsga2FullRun(benchmark::State& state) {
  for (auto _ : state) {
    SyntheticProblem problem(static_cast<std::size_t>(state.range(0)));
    opt::Nsga2Config config;
    config.population_size = 40;
    config.max_generations = 20;
    config.seed = 3;
    opt::Nsga2 solver(config);
    benchmark::DoNotOptimize(solver.run(problem));
  }
}
BENCHMARK(BM_Nsga2FullRun)->Arg(2)->Arg(8)->Arg(32);

void BM_Hypervolume(benchmark::State& state) {
  auto objs = random_objectives(static_cast<std::size_t>(state.range(0)), 3, 5);
  const opt::Objectives ref = {1.1, 1.1, 1.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::hypervolume(objs, ref));
  }
}
BENCHMARK(BM_Hypervolume)->Range(8, 64);

}  // namespace
