// Ablation: the approximation control model's threshold policy.
//
// Compares the paper's adaptive threshold Gamma (mean nearest-neighbour
// distance, updated after every dataset addition) against fixed thresholds,
// measuring how many tool calls the DSE needs and how good the resulting
// front is relative to a direct (no-approximation) run.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/opt/indicators.hpp"

using namespace dovado;

namespace {

core::ProjectConfig fifo_project() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                             hdl::HdlLanguage::kSystemVerilog, "work", false});
  project.top_module = "cv32e40p_fifo";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;
  return project;
}

core::DseConfig base_config() {
  core::DseConfig config;
  config.space.params.push_back({"DEPTH", core::ParamDomain::range(8, 507)});
  config.objectives = {{"lut", false}, {"fmax_mhz", true}};
  config.ga.population_size = 20;
  config.ga.max_generations = 15;
  config.ga.seed = 99;
  return config;
}

struct Row {
  std::string policy;
  std::size_t tool_runs;
  std::size_t estimates;
  double hv;
};

double front_hypervolume(const core::DseEngine& engine, const core::DseResult& result) {
  std::vector<opt::Objectives> objs;
  for (const auto& p : result.pareto) objs.push_back(engine.to_objectives(p.metrics));
  // Reference: worst corner with margin (lut <= 7000, fmax >= 100 =>
  // -fmax <= -100).
  return opt::hypervolume(objs, {8000.0, -100.0});
}

}  // namespace

int main() {
  std::vector<Row> rows;

  {
    core::DseEngine engine(fifo_project(), base_config());
    const auto result = engine.run();
    rows.push_back({"direct (no model)", result.stats.tool_runs, 0,
                    front_hypervolume(engine, result)});
  }

  {
    core::DseConfig config = base_config();
    config.use_approximation = true;
    config.pretrain_samples = 40;
    core::DseEngine engine(fifo_project(), config);
    const auto result = engine.run();
    rows.push_back({"adaptive Gamma (paper)",
                    result.stats.tool_runs + result.stats.pretrain_runs,
                    result.stats.estimates, front_hypervolume(engine, result)});
  }

  for (double fixed : {1.0, 10.0, 100.0}) {
    core::DseConfig config = base_config();
    config.use_approximation = true;
    config.pretrain_samples = 40;
    config.control.adaptive_threshold = false;
    config.control.fixed_threshold = fixed;
    core::DseEngine engine(fifo_project(), config);
    const auto result = engine.run();
    char label[64];
    std::snprintf(label, sizeof(label), "fixed threshold %.0f", fixed);
    rows.push_back({label, result.stats.tool_runs + result.stats.pretrain_runs,
                    result.stats.estimates, front_hypervolume(engine, result)});
  }

  std::printf("Ablation: control-model threshold policy (cv32e40p FIFO DSE)\n\n");
  std::printf("%-26s %10s %10s %14s\n", "policy", "tool runs", "estimates", "hypervolume");
  for (const auto& r : rows) {
    std::printf("%-26s %10zu %10zu %14.1f\n", r.policy.c_str(), r.tool_runs, r.estimates,
                r.hv);
  }
  std::printf(
      "\nReading: the adaptive threshold cuts tool calls well below the direct\n"
      "run while keeping the front competitive; a too-small fixed threshold\n"
      "degenerates to the direct run, a too-large one floods the search with\n"
      "estimates of degrading quality.\n");
  return 0;
}
