// Clean-path cost of the robustness layer (see DESIGN.md "Failure model &
// recovery"): on a fault-free tool the supervisor must be pure bookkeeping.
// Times fresh-point evaluations bare vs. supervised vs. supervised with an
// (inactive) fault injector attached, and prints a JSON summary — the
// committed artifact bench/faults_overhead.json is this program's output.
// The acceptance bar is < 2% supervision overhead on the clean path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/evaluator.hpp"
#include "src/core/supervisor.hpp"
#include "src/edatool/faults.hpp"

namespace {

using namespace dovado;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

enum class Mode { kBare, kSupervised, kSupervisedWithInjector };

/// Wall-clock nanoseconds per fresh evaluation (cache never hits), best of
/// `repeats` rounds of `evals` runs each — min filters scheduler noise.
double ns_per_eval(Mode mode, int repeats, int evals) {
  double best = 1e300;
  for (int round = 0; round < repeats; ++round) {
    core::PointEvaluator evaluator(fifo_project());
    if (mode != Mode::kBare) {
      evaluator.set_supervisor(
          std::make_shared<core::EvaluationSupervisor>(core::SupervisorConfig{}));
    }
    if (mode == Mode::kSupervisedWithInjector) {
      // An attached injector whose plan never fires: the per-run decision
      // lookup is part of the clean-path cost.
      evaluator.set_fault_injector(
          std::make_shared<const edatool::FaultInjector>(edatool::FaultPlan{}));
    }
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < evals; ++i) {
      const auto r = evaluator.evaluate({{"DEPTH", 8 + i}});
      if (!r.ok) return -1.0;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() /
        static_cast<double>(evals);
    best = std::min(best, ns);
  }
  return best;
}

}  // namespace

int main() {
  constexpr int kRepeats = 8;
  constexpr int kEvals = 150;

  // Warm up allocator/page caches, then interleave the modes per round so
  // machine drift hits all three equally instead of biasing the first.
  (void)ns_per_eval(Mode::kBare, 1, kEvals);
  double bare = 1e300;
  double supervised = 1e300;
  double with_injector = 1e300;
  for (int round = 0; round < kRepeats; ++round) {
    bare = std::min(bare, ns_per_eval(Mode::kBare, 1, kEvals));
    supervised = std::min(supervised, ns_per_eval(Mode::kSupervised, 1, kEvals));
    with_injector =
        std::min(with_injector, ns_per_eval(Mode::kSupervisedWithInjector, 1, kEvals));
  }
  if (bare <= 0.0 || supervised <= 0.0 || with_injector <= 0.0) {
    std::fprintf(stderr, "evaluation failed\n");
    return 1;
  }

  const double supervised_pct = 100.0 * (supervised - bare) / bare;
  const double injector_pct = 100.0 * (with_injector - bare) / bare;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_faults_overhead\",\n");
  std::printf("  \"evals_per_round\": %d,\n", kEvals);
  std::printf("  \"rounds\": %d,\n", kRepeats);
  std::printf("  \"bare_ns_per_eval\": %.0f,\n", bare);
  std::printf("  \"supervised_ns_per_eval\": %.0f,\n", supervised);
  std::printf("  \"supervised_with_injector_ns_per_eval\": %.0f,\n", with_injector);
  std::printf("  \"supervision_overhead_percent\": %.2f,\n", supervised_pct);
  std::printf("  \"supervision_with_injector_overhead_percent\": %.2f,\n", injector_pct);
  std::printf("  \"budget_percent\": 2.0,\n");
  std::printf("  \"within_budget\": %s\n",
              (supervised_pct < 2.0 && injector_pct < 2.0) ? "true" : "false");
  std::printf("}\n");
  return 0;
}
