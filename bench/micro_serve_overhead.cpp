// Request-path cost of the multi-tenant service layer (see DESIGN.md
// "Service & multi-tenancy"): admission (two token buckets), DRR
// scheduling, and the dispatch/finalize bookkeeping wrapped around every
// evaluation. The acceptance bar is < 1% overhead on a fresh evaluation:
// the service machinery must be noise next to even a simulated tool run.
//
// Methodology: a fresh evaluation costs ~160µs with several µs of
// run-to-run drift, so comparing two end-to-end fresh timings cannot
// resolve a 1% (~1.6µs) budget against machine noise. Instead the
// per-request service cost is measured where it is the *whole* signal —
// cache-hit round trips, where the simulator drops out and both paths do
// only their own bookkeeping — as the paired per-round delta between
// Server::execute() and the bare broker. That cost, normalized by the
// fresh-evaluation floor (min over rounds of bare fresh evals), is the
// service overhead a real evaluation pays. The committed artifact
// bench/serve_overhead.json is this program's output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/broker.hpp"
#include "src/serve/server.hpp"

namespace {

using namespace dovado;
using Clock = std::chrono::steady_clock;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

serve::ServeConfig serve_config() {
  serve::ServeConfig config;
  config.project = fifo_project();
  config.breaker.enabled = false;  // measured separately (breaker bench)
  // Realistic policies so admission does real bucket math, generous enough
  // that nothing sheds.
  config.default_policy.request_rate = 1e9;
  config.default_policy.request_burst = 1e9;
  config.default_policy.tool_seconds_rate = 1e9;
  config.default_policy.tool_seconds_burst = 1e12;
  return config;
}

double ns_per(int count, Clock::time_point start) {
  const auto elapsed = Clock::now() - start;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() /
         static_cast<double>(count);
}

/// Wall-clock ns per *fresh* evaluation straight on the broker: the floor
/// the service adds to, and the denominator of the overhead ratio.
double fresh_eval_ns(int evals) {
  core::EvaluationBroker broker(fifo_project(), core::BrokerConfig{});
  const auto start = Clock::now();
  for (int i = 0; i < evals; ++i) {
    const auto r = broker.tool_evaluate({{"DEPTH", 8 + i}});
    if (!r.ok) return -1.0;
  }
  return ns_per(evals, start);
}

/// Wall-clock ns per cache-hit evaluation straight on the broker.
double bare_hit_ns(core::EvaluationBroker& broker, int hits) {
  const auto start = Clock::now();
  for (int i = 0; i < hits; ++i) {
    const auto r = broker.tool_evaluate({{"DEPTH", 16}});
    if (!r.ok) return -1.0;
  }
  return ns_per(hits, start);
}

/// Wall-clock ns per cache-hit request through the full in-process request
/// path: admission with both buckets live, fair-share scheduling, dispatch,
/// finalize, response delivery.
double served_hit_ns(serve::Server& server, int hits) {
  serve::Request request;
  request.op = serve::RequestOp::kEval;
  request.tenant = "bench";
  request.id = "b";
  request.point = {{"DEPTH", 16}};
  const auto start = Clock::now();
  for (int i = 0; i < hits; ++i) {
    const serve::Response r = server.execute(request);
    if (r.status != serve::ResponseStatus::kOk) return -1.0;
  }
  return ns_per(hits, start);
}

}  // namespace

int main() {
  constexpr int kRounds = 12;
  constexpr int kFreshEvals = 300;
  constexpr int kHits = 20000;

  // The numerator: per-request service cost, from paired cache-hit rounds.
  // Both sides run back-to-back inside each round so drift cancels in the
  // per-round delta; the minimum delta over rounds is the cleanest round.
  core::EvaluationBroker bare_broker(fifo_project(), core::BrokerConfig{});
  serve::Server server(serve_config());
  (void)bare_broker.tool_evaluate({{"DEPTH", 16}});  // warm both caches
  (void)bare_hit_ns(bare_broker, kHits);
  (void)served_hit_ns(server, kHits);
  double bare_hit = 1e300;
  double served_hit = 1e300;
  double request_path = 1e300;
  for (int round = 0; round < kRounds; ++round) {
    double b, s;
    if (round % 2 == 0) {
      b = bare_hit_ns(bare_broker, kHits);
      s = served_hit_ns(server, kHits);
    } else {
      s = served_hit_ns(server, kHits);
      b = bare_hit_ns(bare_broker, kHits);
    }
    if (b <= 0.0 || s <= 0.0) {
      std::fprintf(stderr, "cache-hit evaluation failed\n");
      return 1;
    }
    bare_hit = std::min(bare_hit, b);
    served_hit = std::min(served_hit, s);
    request_path = std::min(request_path, s - b);
  }

  // The denominator: what a fresh evaluation costs without the service.
  (void)fresh_eval_ns(kFreshEvals);  // warm-up
  double fresh = 1e300;
  for (int round = 0; round < kRounds; ++round) {
    const double f = fresh_eval_ns(kFreshEvals);
    if (f <= 0.0) {
      std::fprintf(stderr, "fresh evaluation failed\n");
      return 1;
    }
    fresh = std::min(fresh, f);
  }

  const double overhead_pct = 100.0 * request_path / fresh;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_serve_overhead\",\n");
  std::printf("  \"rounds\": %d,\n", kRounds);
  std::printf("  \"cache_hits_per_round\": %d,\n", kHits);
  std::printf("  \"fresh_evals_per_round\": %d,\n", kFreshEvals);
  std::printf("  \"bare_hit_ns\": %.0f,\n", bare_hit);
  std::printf("  \"served_hit_ns\": %.0f,\n", served_hit);
  std::printf("  \"request_path_ns\": %.0f,\n", request_path);
  std::printf("  \"fresh_eval_ns\": %.0f,\n", fresh);
  std::printf("  \"serve_overhead_percent\": %.2f,\n", overhead_pct);
  std::printf("  \"budget_percent\": 1.0,\n");
  std::printf("  \"within_budget\": %s\n", overhead_pct < 1.0 ? "true" : "false");
  std::printf("}\n");
  // Non-zero exit on a missed bar so scripts/check.sh fails loudly.
  return overhead_pct < 1.0 ? 0 : 1;
}
