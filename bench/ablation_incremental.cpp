// Ablation: Vivado's incremental design flow (paper Sec. III-B.2).
//
// Dovado exploits synthesis/implementation checkpoints so that runs whose
// parameters change only a small part of the design reuse the previous
// result. This bench sweeps a parameter with small steps (the
// checkpoint-friendly case) and with large jumps, with and without the
// incremental flow, and reports the simulated tool time.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/evaluator.hpp"

using namespace dovado;

namespace {

core::ProjectConfig project(bool incremental) {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  config.incremental_synth = incremental;
  config.incremental_impl = incremental;
  return config;
}

double sweep_seconds(bool incremental, const std::vector<std::int64_t>& depths) {
  core::PointEvaluator evaluator(project(incremental));
  for (std::int64_t depth : depths) {
    const auto r = evaluator.evaluate({{"DEPTH", depth}});
    if (!r.ok) std::fprintf(stderr, "evaluation failed: %s\n", r.error.c_str());
  }
  return evaluator.tool_seconds();
}

}  // namespace

int main() {
  std::vector<std::int64_t> small_steps;
  for (std::int64_t d = 200; d < 216; ++d) small_steps.push_back(d);
  std::vector<std::int64_t> large_jumps = {8,  64,  480, 16,  320, 96,
                                           400, 32, 256, 128, 48,  500,
                                           192, 80, 440, 24};

  std::printf("Ablation: incremental synthesis/implementation flow\n\n");
  std::printf("%-28s %14s %14s %10s\n", "workload (16 evaluations)", "flat (s)",
              "incremental (s)", "saving");
  for (const auto& [label, depths] :
       {std::pair{std::string("small parameter steps"), small_steps},
        std::pair{std::string("large parameter jumps"), large_jumps}}) {
    const double flat = sweep_seconds(false, depths);
    const double inc = sweep_seconds(true, depths);
    std::printf("%-28s %14.0f %14.0f %9.1f%%\n", label.c_str(), flat, inc,
                100.0 * (flat - inc) / flat);
  }
  std::printf(
      "\nReading: checkpoints pay off most when successive design points\n"
      "change only a small subsection of the design, as the paper notes for\n"
      "parametrized submodules of larger systems.\n");
  return 0;
}
