// Micro benchmarks of the HDL front end: declaration-parsing throughput on
// synthetic VHDL and SystemVerilog sources of growing size (the paper asks
// for "reasonable performance on large RTL files").
#include <benchmark/benchmark.h>

#include <string>

#include "src/hdl/expr.hpp"
#include "src/hdl/frontend.hpp"
#include "src/util/strings.hpp"

namespace {

using namespace dovado;

std::string big_vhdl(int entities) {
  std::string src = "library ieee;\nuse ieee.std_logic_1164.all;\n";
  for (int e = 0; e < entities; ++e) {
    src += util::format(
        "entity mod_%d is\n"
        "  generic (WIDTH : integer := %d; DEPTH : integer := 2**%d);\n"
        "  port (clk : in std_logic;\n"
        "        din : in std_logic_vector(WIDTH-1 downto 0);\n"
        "        dout : out std_logic_vector(WIDTH-1 downto 0));\n"
        "end mod_%d;\n"
        "architecture rtl of mod_%d is\n"
        "  signal tmp : std_logic_vector(WIDTH-1 downto 0);\n"
        "begin\n"
        "  process(clk) begin if rising_edge(clk) then tmp <= din; end if; end process;\n"
        "  dout <= tmp;\n"
        "end rtl;\n",
        e, 8 + (e % 56), 3 + (e % 10), e, e);
  }
  return src;
}

std::string big_sv(int modules) {
  std::string src;
  for (int m = 0; m < modules; ++m) {
    src += util::format(
        "module mod_%d #(parameter int W = %d, parameter int D = 1 << %d)(\n"
        "  input  logic clk_i,\n"
        "  input  logic [W-1:0] data_i,\n"
        "  output logic [W-1:0] data_o\n"
        ");\n"
        "  logic [W-1:0] buf_q [D];\n"
        "  always_ff @(posedge clk_i) data_o <= data_i;\n"
        "endmodule\n",
        m, 8 + (m % 120), 2 + (m % 12));
  }
  return src;
}

void BM_ParseVhdl(benchmark::State& state) {
  const std::string src = big_vhdl(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = hdl::parse_source(src, hdl::HdlLanguage::kVhdl);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_ParseVhdl)->Arg(10)->Arg(100)->Arg(500);

void BM_ParseSystemVerilog(benchmark::State& state) {
  const std::string src = big_sv(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = hdl::parse_source(src, hdl::HdlLanguage::kSystemVerilog);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_ParseSystemVerilog)->Arg(10)->Arg(100)->Arg(500);

void BM_ExprEval(benchmark::State& state) {
  hdl::ExprEnv env;
  env.set("DEPTH", 512);
  env.set("WIDTH", 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdl::eval_expr("$clog2(DEPTH) * WIDTH + (DEPTH >> 2) - 1",
                       hdl::HdlLanguage::kSystemVerilog, env));
  }
}
BENCHMARK(BM_ExprEval);

}  // namespace
