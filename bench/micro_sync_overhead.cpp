// Release-build cost of the concurrency-contract wrappers (util/sync):
// util::Mutex + util::MutexLock vs raw std::mutex + std::lock_guard on the
// uncontended lock/unlock path that every stats counter in the codebase
// pays. The acceptance bar is < 1% overhead: with DOVADO_DEADLOCK_DEBUG
// off the wrappers are a named std::mutex plus inline forwarding, so the
// two loops must compile to the same instructions.
//
// Methodology: an uncontended lock/unlock pair is ~15-20ns, so 1% is well
// under a clock tick and two absolute timings cannot resolve it across
// runs. Both sides run back-to-back inside each round (interleaved, order
// alternating) and the minimum per-op time over rounds is compared; a
// sub-tick absolute delta (< 0.3ns) passes regardless of the ratio, since
// at identical codegen the ratio is pure measurement noise. The committed
// artifact bench/sync_overhead.json is this program's output.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "src/util/sync.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kRounds = 16;
constexpr int kOpsPerRound = 2000000;

double ns_per(int count, Clock::time_point start) {
  const auto elapsed = Clock::now() - start;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() /
         static_cast<double>(count);
}

double raw_round(std::mutex& mu, long& counter) {
  const auto start = Clock::now();
  for (int i = 0; i < kOpsPerRound; ++i) {
    std::lock_guard<std::mutex> lock(mu);
    ++counter;
  }
  return ns_per(kOpsPerRound, start);
}

double wrapped_round(dovado::util::Mutex& mu, long& counter) {
  const auto start = Clock::now();
  for (int i = 0; i < kOpsPerRound; ++i) {
    dovado::util::MutexLock lock(mu);
    ++counter;
  }
  return ns_per(kOpsPerRound, start);
}

}  // namespace

int main() {
#ifdef DOVADO_DEADLOCK_DEBUG
  // The detector intentionally pays for graph maintenance on every
  // acquisition; the release-overhead gate is meaningless here.
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_sync_overhead\",\n");
  std::printf("  \"skipped\": \"DOVADO_DEADLOCK_DEBUG build\"\n");
  std::printf("}\n");
  return 0;
#else
  std::mutex raw_mu;
  dovado::util::Mutex wrapped_mu("bench.sync");
  long raw_counter = 0;
  long wrapped_counter = 0;

  // Warm-up: fault in both paths before timing.
  (void)raw_round(raw_mu, raw_counter);
  (void)wrapped_round(wrapped_mu, wrapped_counter);

  double raw_ns = 1e300;
  double wrapped_ns = 1e300;
  for (int round = 0; round < kRounds; ++round) {
    double r, w;
    if (round % 2 == 0) {
      r = raw_round(raw_mu, raw_counter);
      w = wrapped_round(wrapped_mu, wrapped_counter);
    } else {
      w = wrapped_round(wrapped_mu, wrapped_counter);
      r = raw_round(raw_mu, raw_counter);
    }
    raw_ns = std::min(raw_ns, r);
    wrapped_ns = std::min(wrapped_ns, w);
  }
  if (raw_counter != wrapped_counter) {
    std::fprintf(stderr, "counter mismatch\n");
    return 1;
  }

  const double delta_ns = wrapped_ns - raw_ns;
  const double overhead_pct = 100.0 * delta_ns / raw_ns;
  const bool within = overhead_pct < 1.0 || delta_ns < 0.3;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_sync_overhead\",\n");
  std::printf("  \"rounds\": %d,\n", kRounds);
  std::printf("  \"ops_per_round\": %d,\n", kOpsPerRound);
  std::printf("  \"raw_lock_unlock_ns\": %.3f,\n", raw_ns);
  std::printf("  \"wrapped_lock_unlock_ns\": %.3f,\n", wrapped_ns);
  std::printf("  \"delta_ns\": %.3f,\n", delta_ns);
  std::printf("  \"overhead_percent\": %.2f,\n", overhead_pct);
  std::printf("  \"budget_percent\": 1.0,\n");
  std::printf("  \"noise_floor_ns\": 0.3,\n");
  std::printf("  \"within_budget\": %s\n", within ? "true" : "false");
  std::printf("}\n");
  // Non-zero exit on a missed bar so scripts/check.sh fails loudly.
  return within ? 0 : 1;
#endif
}
