// Ablation: Nadaraya-Watson bandwidth selection.
//
// The paper selects the Gaussian kernel's bandwidth — its only free
// parameter — by Leave-One-Out cross-validation. This bench compares the
// LOO-CV choice against fixed bandwidths on tool data from the cv32e40p
// FIFO, reporting test MSE per metric.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/evaluator.hpp"
#include "src/model/nadaraya_watson.hpp"
#include "src/util/rng.hpp"

using namespace dovado;

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                             hdl::HdlLanguage::kSystemVerilog, "work", false});
  project.top_module = "cv32e40p_fifo";
  project.part = "xc7k70tfbv676-1";
  core::PointEvaluator evaluator(project);

  // 60 training / 40 test samples over the DEPTH range, normalized metrics.
  util::Rng rng(7);
  std::vector<std::int64_t> depths;
  for (std::int64_t d = 8; d <= 507; ++d) depths.push_back(d);
  rng.shuffle(depths);

  auto metric_values = [&](std::int64_t depth) -> model::Values {
    const auto r = evaluator.evaluate({{"DEPTH", depth}});
    return {r.metrics.get("ff") / 16000.0, r.metrics.get("lut") / 6000.0,
            r.metrics.get("fmax_mhz") / 600.0};
  };

  model::Dataset train;
  for (int i = 0; i < 60; ++i) {
    train.add({static_cast<double>(depths[static_cast<std::size_t>(i)])},
              metric_values(depths[static_cast<std::size_t>(i)]));
  }
  std::vector<std::int64_t> test(depths.begin() + 60, depths.begin() + 100);

  auto test_mse = [&](const std::vector<double>& bandwidths) {
    model::NadarayaWatson nwm;
    nwm.fit(train, bandwidths);
    std::vector<double> mse(3, 0.0);
    for (std::int64_t d : test) {
      const model::Values est = nwm.predict({static_cast<double>(d)});
      const model::Values truth = metric_values(d);
      for (std::size_t m = 0; m < 3; ++m) {
        const double e = est[m] - truth[m];
        mse[m] += e * e;
      }
    }
    for (auto& v : mse) v /= static_cast<double>(test.size());
    return mse;
  };

  std::printf("Ablation: NWM bandwidth selection (60 train / 40 test samples)\n\n");
  std::printf("%-24s %12s %12s %12s\n", "bandwidth", "MSE(FF)", "MSE(LUT)", "MSE(Freq)");

  const auto loo = model::select_bandwidths(train);
  const auto loo_mse = test_mse(loo);
  std::printf("%-24s %12.2e %12.2e %12.2e   <- paper's choice\n",
              "LOO-CV selected", loo_mse[0], loo_mse[1], loo_mse[2]);

  double best_fixed_freq = 1e18;
  for (double h : {0.5, 2.0, 8.0, 32.0, 128.0, 512.0}) {
    const auto mse = test_mse({h, h, h});
    best_fixed_freq = std::min(best_fixed_freq, mse[2]);
    std::printf("fixed h = %-14.1f %12.2e %12.2e %12.2e\n", h, mse[0], mse[1], mse[2]);
  }

  std::printf("\nLOO-CV bandwidths per metric: %.2f / %.2f / %.2f\n", loo[0], loo[1],
              loo[2]);
  std::printf("Reading: LOO-CV lands within %.1fx of the best fixed bandwidth for the\n"
              "hardest metric without any hand tuning (paper: bandwidth is the only\n"
              "free parameter; LOO-CV is cheap on the small synthetic dataset).\n",
              loo_mse[2] / best_fixed_freq);
  return 0;
}
