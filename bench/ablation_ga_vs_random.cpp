// Ablation: NSGA-II against random sampling at equal tool-call budgets.
//
// The paper motivates a genetic DSE because exhaustive evaluation is
// prohibitive; this bench quantifies the advantage over the naive random
// baseline on the Corundum queue-manager space with three objectives
// (LUTs, registers, frequency), comparing front quality against the
// exhaustive ground truth at matched numbers of tool evaluations.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/dse.hpp"
#include "src/opt/baselines.hpp"
#include "src/opt/indicators.hpp"

using namespace dovado;

namespace {

/// Shared adapter: decodes genomes and answers from one evaluator+cache.
class CqProblem final : public opt::Problem {
 public:
  explicit CqProblem(core::PointEvaluator& evaluator) : evaluator_(evaluator) {
    space_.params.push_back({"OP_TABLE_SIZE", core::ParamDomain::range(8, 35)});
    space_.params.push_back({"QUEUE_INDEX_WIDTH", core::ParamDomain::range(4, 7)});
    space_.params.push_back({"PIPELINE", core::ParamDomain::range(2, 5)});
  }
  [[nodiscard]] std::size_t n_vars() const override { return space_.size(); }
  [[nodiscard]] std::size_t n_objectives() const override { return 3; }
  [[nodiscard]] std::int64_t cardinality(std::size_t var) const override {
    return space_.params[var].domain.size();
  }
  [[nodiscard]] opt::Objectives evaluate(const opt::Genome& genome) override {
    const auto r = evaluator_.evaluate(space_.decode(genome));
    ++evaluations;
    return {r.metrics.get("lut"), r.metrics.get("ff"), -r.metrics.get("fmax_mhz")};
  }
  std::size_t evaluations = 0;

 private:
  core::PointEvaluator& evaluator_;
  core::DesignSpace space_;
};

core::ProjectConfig cq_project() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/corundum_cq_manager.v",
                             hdl::HdlLanguage::kVerilog, "work", false});
  project.top_module = "cpl_queue_manager";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;
  return project;
}

std::vector<opt::Objectives> objectives_of(const std::vector<opt::Individual>& inds) {
  std::vector<opt::Objectives> out;
  out.reserve(inds.size());
  for (const auto& i : inds) out.push_back(i.objectives);
  return out;
}

}  // namespace

int main() {
  // Ground truth: the space has 28*4*4 = 448 points, small enough to
  // enumerate with the simulated tool.
  core::PointEvaluator truth_eval(cq_project());
  CqProblem truth_problem(truth_eval);
  const auto truth = opt::exhaustive_search(truth_problem);
  const auto truth_front = objectives_of(truth.pareto_front);
  const opt::Objectives ref = {1200.0, 3000.0, -150.0};
  const double truth_hv = opt::hypervolume(truth_front, ref);

  std::printf("Ablation: NSGA-II vs random search (Corundum space, 448 points,\n");
  std::printf("objectives: LUTs min, Registers min, Fmax max)\n");
  std::printf("ground-truth front: %zu points, hypervolume %.3g\n\n", truth_front.size(),
              truth_hv);
  std::printf("%8s %8s  %16s %16s  %12s %12s\n", "budget", "used", "NSGA-II HV(%GT)",
              "random HV(%GT)", "NSGA-II IGD", "random IGD");

  for (std::size_t budget : {32u, 64u, 128u}) {
    core::PointEvaluator ga_eval(cq_project());
    CqProblem ga_problem(ga_eval);
    opt::Nsga2Config config;
    config.population_size = 16;
    // Initial population consumes one popsize worth of the budget.
    config.max_generations = budget / config.population_size - 1;
    config.seed = 5;
    opt::Nsga2 solver(config);
    const auto ga = solver.run(ga_problem);
    const auto ga_front = objectives_of(ga.pareto_front);

    core::PointEvaluator rs_eval(cq_project());
    CqProblem rs_problem(rs_eval);
    const auto rs = opt::random_search(rs_problem, ga_problem.evaluations, 5);
    const auto rs_front = objectives_of(rs.pareto_front);

    std::printf("%8zu %8zu  %15.1f%% %15.1f%%  %12.1f %12.1f\n", budget,
                ga_problem.evaluations,
                100.0 * opt::hypervolume(ga_front, ref) / truth_hv,
                100.0 * opt::hypervolume(rs_front, ref) / truth_hv,
                opt::igd(ga_front, truth_front), opt::igd(rs_front, truth_front));
  }
  std::printf(
      "\nReading: at equal tool budgets the elitist GA concentrates its budget\n"
      "on the trade-off surface, recovering more dominated hypervolume and a\n"
      "lower distance to the true front than uniform random sampling.\n");
  return 0;
}
