// Figure 3 reproduction: Mean Squared Error of the Nadaraya-Watson
// estimator vs dataset size on the cv32e40p FIFO, Kintex-7 XC7K70T.
//
// Paper setup (Sec. IV-A): SystemVerilog FIFO submodule, DEPTH parameter
// with 500 possible values, model pre-trained on 100 samples, target 1 GHz.
// The paper reports very low MSE for all three metrics, with frequency the
// hardest (peak ~0.45e-2, stabilizing ~0.25e-2 after ~40 samples). We
// report MSE on min-max-normalized metrics so the magnitudes are
// comparable; expect the same *shape*: FF/LUT almost immediately accurate,
// frequency noisier and converging as samples accumulate.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/evaluator.hpp"
#include "src/model/nadaraya_watson.hpp"
#include "src/util/rng.hpp"

using namespace dovado;

namespace {

constexpr std::int64_t kDepthMin = 8;
constexpr std::int64_t kDepthMax = 507;  // 500 possible values
constexpr const char* kMetrics[] = {"ff", "lut", "fmax_mhz"};
constexpr const char* kLabels[] = {"FF", "LUT", "Frequency"};

}  // namespace

int main() {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                             hdl::HdlLanguage::kSystemVerilog, "work", false});
  project.top_module = "cv32e40p_fifo";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;  // 1 GHz target, per the paper
  core::PointEvaluator evaluator(project);

  // Ground truth over the whole 500-value space (the simulated tool is fast
  // enough to allow an exact reference).
  std::vector<std::array<double, 3>> truth(kDepthMax - kDepthMin + 1);
  std::array<double, 2> range_lo_hi[3] = {{1e18, -1e18}, {1e18, -1e18}, {1e18, -1e18}};
  for (std::int64_t depth = kDepthMin; depth <= kDepthMax; ++depth) {
    const auto r = evaluator.evaluate({{"DEPTH", depth}});
    for (int m = 0; m < 3; ++m) {
      const double v = r.metrics.get(kMetrics[m]);
      truth[static_cast<std::size_t>(depth - kDepthMin)][static_cast<std::size_t>(m)] = v;
      range_lo_hi[m][0] = std::min(range_lo_hi[m][0], v);
      range_lo_hi[m][1] = std::max(range_lo_hi[m][1], v);
    }
  }
  auto normalize = [&](int metric, double v) {
    const double lo = range_lo_hi[metric][0];
    const double hi = range_lo_hi[metric][1];
    return hi > lo ? (v - lo) / (hi - lo) : 0.0;
  };

  // Held-out test set: every 9th depth (56 points), never used for training.
  std::vector<std::int64_t> test_depths;
  for (std::int64_t d = kDepthMin + 4; d <= kDepthMax; d += 9) test_depths.push_back(d);

  // Training stream: random distinct depths, as the paper's synthetic
  // dataset generation samples randomly from the parameter range.
  std::vector<std::int64_t> pool;
  for (std::int64_t d = kDepthMin; d <= kDepthMax; ++d) {
    if (std::find(test_depths.begin(), test_depths.end(), d) == test_depths.end()) {
      pool.push_back(d);
    }
  }
  util::Rng rng(2021);
  rng.shuffle(pool);

  std::printf("Figure 3: NWM estimation MSE vs #samples (cv32e40p FIFO, xc7k70t)\n");
  std::printf("MSE on min-max normalized metrics, held-out test set of %zu points\n\n",
              test_depths.size());
  std::printf("%8s  %12s  %12s  %12s\n", "samples", "MSE(FF)", "MSE(LUTs)", "MSE(Freq)");

  model::Dataset dataset;
  std::size_t next = 0;
  std::array<double, 3> first_mse{};
  std::array<double, 3> last_mse{};
  for (std::size_t target : {5u, 10u, 20u, 30u, 40u, 60u, 80u, 100u}) {
    while (dataset.size() < target && next < pool.size()) {
      const std::int64_t depth = pool[next++];
      const auto& t = truth[static_cast<std::size_t>(depth - kDepthMin)];
      dataset.add({static_cast<double>(depth)},
                  {normalize(0, t[0]), normalize(1, t[1]), normalize(2, t[2])});
    }
    model::NadarayaWatson nwm;
    nwm.fit(dataset, model::select_bandwidths(dataset));

    std::array<double, 3> mse{};
    for (std::int64_t depth : test_depths) {
      const model::Values est = nwm.predict({static_cast<double>(depth)});
      const auto& t = truth[static_cast<std::size_t>(depth - kDepthMin)];
      for (int m = 0; m < 3; ++m) {
        const double err = est[static_cast<std::size_t>(m)] - normalize(m, t[static_cast<std::size_t>(m)]);
        mse[static_cast<std::size_t>(m)] += err * err;
      }
    }
    for (auto& v : mse) v /= static_cast<double>(test_depths.size());
    if (target == 5u) first_mse = mse;
    last_mse = mse;
    std::printf("%8zu  %12.3e  %12.3e  %12.3e\n", dataset.size(), mse[0], mse[1], mse[2]);
  }

  std::printf("\npaper expectation vs measured:\n");
  std::printf("  - all MSE very low .......................... measured <= %.1e at 100 samples\n",
              std::max({last_mse[0], last_mse[1], last_mse[2]}));
  std::printf("  - frequency is the hardest metric .......... freq MSE %.1e vs FF %.1e, LUT %.1e\n",
              last_mse[2], last_mse[0], last_mse[1]);
  std::printf("  - MSE shrinks as the dataset grows ......... freq: %.1e -> %.1e\n",
              first_mse[2], last_mse[2]);
  return 0;
}
