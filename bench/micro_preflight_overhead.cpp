// Clean-campaign cost of the pre-flight static-analysis gate (see DESIGN.md
// "Static verification layer"): lint of every source, the generated flow
// and the DSE configuration, paid once before the first tool run. Times the
// gate both in isolation (analysis::preflight) and as the fraction of a
// real exploration's wall clock (DseStats::preflight_ms vs total), and
// prints a JSON summary — the committed artifact
// bench/preflight_overhead.json is this program's output. The acceptance
// bar is < 1% of campaign wall clock.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/analysis/analyzer.hpp"
#include "src/core/dse.hpp"

namespace {

using namespace dovado;

core::ProjectConfig fifo_project() {
  core::ProjectConfig config;
  config.sources.push_back({std::string(DOVADO_RTL_DIR) + "/cv32e40p_fifo.sv",
                            hdl::HdlLanguage::kSystemVerilog, "work", false});
  config.top_module = "cv32e40p_fifo";
  config.part = "xc7k70tfbv676-1";
  config.target_period_ns = 1.0;
  return config;
}

core::DseConfig fifo_dse() {
  core::DseConfig config;
  config.space.params.push_back({"DEPTH", core::ParamDomain::range(8, 200)});
  config.objectives = {{"lut", false}, {"fmax_mhz", true}};
  // The CLI's default campaign shape (--pop/--gens defaults). Real
  // campaigns only grow from here, shrinking the gate's share further.
  config.ga.population_size = 24;
  config.ga.max_generations = 15;
  config.ga.seed = 11;
  return config;
}

}  // namespace

int main() {
  constexpr int kLintRepeats = 20;
  constexpr int kCampaignRepeats = 5;

  // The gate in isolation: full project + config lint, min over repeats.
  double lint_ms = 1e300;
  for (int i = 0; i < kLintRepeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const analysis::LintReport report = analysis::preflight(fifo_project(), fifo_dse());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (!report.diagnostics.empty()) {
      std::fprintf(stderr, "clean campaign linted dirty\n");
      return 1;
    }
    lint_ms = std::min(
        lint_ms, std::chrono::duration<double, std::milli>(elapsed).count());
  }

  // The gate inside a real campaign: preflight_ms vs total wall clock.
  double preflight_ms = 1e300;
  double campaign_ms = 1e300;
  for (int i = 0; i < kCampaignRepeats; ++i) {
    core::DseEngine engine(fifo_project(), fifo_dse());
    const auto start = std::chrono::steady_clock::now();
    const core::DseResult result = engine.run();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (result.pareto.empty() || result.stats.preflight_ms <= 0.0) {
      std::fprintf(stderr, "campaign did not run the gate\n");
      return 1;
    }
    preflight_ms = std::min(preflight_ms, result.stats.preflight_ms);
    campaign_ms = std::min(
        campaign_ms, std::chrono::duration<double, std::milli>(elapsed).count());
  }

  const double overhead_pct = 100.0 * preflight_ms / campaign_ms;
  std::printf("{\n");
  std::printf("  \"benchmark\": \"micro_preflight_overhead\",\n");
  std::printf("  \"lint_repeats\": %d,\n", kLintRepeats);
  std::printf("  \"campaign_repeats\": %d,\n", kCampaignRepeats);
  std::printf("  \"standalone_lint_ms\": %.3f,\n", lint_ms);
  std::printf("  \"preflight_ms\": %.3f,\n", preflight_ms);
  std::printf("  \"campaign_ms\": %.1f,\n", campaign_ms);
  std::printf("  \"preflight_overhead_percent\": %.3f,\n", overhead_pct);
  std::printf("  \"budget_percent\": 1.0,\n");
  std::printf("  \"within_budget\": %s\n", overhead_pct < 1.0 ? "true" : "false");
  std::printf("}\n");
  return 0;
}
