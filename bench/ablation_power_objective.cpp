// Ablation: adding power as a third optimization objective.
//
// The paper's DSE optimizes area/frequency; its related work (Karakaya
// [14]) targets the power-delay-area product. With the power model wired
// into the simulated tool, this bench contrasts a frequency/area DSE of the
// systolic matrix-multiply array with a power-aware one, showing the power
// spread hidden inside the two-objective front.
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/dse.hpp"
#include "src/core/writers.hpp"

using namespace dovado;

namespace {

core::DseResult explore(bool power_aware) {
  core::ProjectConfig project;
  project.sources.push_back({std::string(DOVADO_RTL_DIR) + "/systolic_mm.sv",
                             hdl::HdlLanguage::kSystemVerilog, "work", false});
  project.top_module = "systolic_mm";
  project.part = "xc7k70tfbv676-1";
  project.target_period_ns = 1.0;

  core::DseConfig config;
  config.space.params.push_back({"ROWS", core::ParamDomain::power_of_two(0, 3)});
  config.space.params.push_back({"COLS", core::ParamDomain::power_of_two(0, 3)});
  config.space.params.push_back({"DATA_W", core::ParamDomain::values({8, 16, 18, 27, 32})});
  config.objectives = {{"dsp", false}, {"fmax_mhz", true}};
  if (power_aware) config.objectives.push_back({"power_w", false});
  config.ga.population_size = 18;
  config.ga.max_generations = 12;
  config.ga.seed = 23;

  core::DseEngine engine(project, config);
  return engine.run();
}

std::pair<double, double> power_spread(const std::vector<core::ExploredPoint>& points) {
  double lo = 1e18;
  double hi = -1e18;
  for (const auto& p : points) {
    lo = std::min(lo, p.metrics.get("power_w"));
    hi = std::max(hi, p.metrics.get("power_w"));
  }
  return {lo, hi};
}

}  // namespace

int main() {
  const auto two_obj = explore(false);
  const auto three_obj = explore(true);

  std::printf("Ablation: power as a DSE objective (systolic_mm on xc7k70t)\n\n");
  std::printf("two-objective front (DSP min, Fmax max) — %zu points:\n%s\n",
              two_obj.pareto.size(), core::format_table(two_obj.pareto).c_str());
  std::printf("three-objective front (+ power_w min) — %zu points:\n%s\n",
              three_obj.pareto.size(), core::format_table(three_obj.pareto).c_str());

  const auto [lo2, hi2] = power_spread(two_obj.pareto);
  const auto [lo3, hi3] = power_spread(three_obj.pareto);
  std::printf("power across the 2-objective front: %.3f .. %.3f W (%.1fx spread,\n"
              "invisible to that run's objectives)\n", lo2, hi2, hi2 / lo2);
  std::printf("power across the 3-objective front: %.3f .. %.3f W\n", lo3, hi3);
  std::printf("front sizes: %zu (2-obj) vs %zu (3-obj)\n", two_obj.pareto.size(),
              three_obj.pareto.size());
  std::printf(
      "\nReading: power varies by %.1fx across the area/frequency front without\n"
      "the optimizer knowing; making it an objective keeps the low-power\n"
      "alternative at each performance level explicit in a larger front.\n",
      hi2 / lo2);
  return 0;
}
