/*
 * Round-robin AXI-Stream crossbar switch. Interconnect-style workload whose
 * LUT cost grows quadratically with the port count — used to exercise
 * congestion-dominated timing and LUT over-utilization (extension workload,
 * not one of the paper's case studies).
 */
module axis_switch #(
    // number of ports (inputs and outputs)
    parameter PORTS = 4,
    // data width per port
    parameter DATA_W = 64,
    // output FIFO depth per port (entries)
    parameter FIFO_DEPTH = 32,
    localparam CNT_W = $clog2(PORTS)
)(
    input  wire                     clk,
    input  wire                     rst,

    input  wire [PORTS*DATA_W-1:0]  s_axis_tdata,
    input  wire [PORTS-1:0]         s_axis_tvalid,
    output wire [PORTS-1:0]         s_axis_tready,
    input  wire [PORTS*CNT_W-1:0]   s_axis_tdest,

    output wire [PORTS*DATA_W-1:0]  m_axis_tdata,
    output wire [PORTS-1:0]         m_axis_tvalid,
    input  wire [PORTS-1:0]         m_axis_tready
);

reg [CNT_W-1:0] grant [PORTS-1:0];
reg [PORTS-1:0] granted;
reg [DATA_W-1:0] fifo_mem [PORTS*FIFO_DEPTH-1:0];
reg [CNT_W:0] fifo_count [PORTS-1:0];

genvar gi;
generate
for (gi = 0; gi < PORTS; gi = gi + 1) begin : g_out
    // Round-robin arbitration over the input requests for this output.
    integer k;
    always @(posedge clk) begin
        if (rst) begin
            grant[gi]   <= 0;
            granted[gi] <= 1'b0;
        end else begin
            granted[gi] <= 1'b0;
            for (k = 0; k < PORTS; k = k + 1) begin
                if (s_axis_tvalid[k] &&
                    s_axis_tdest[k*CNT_W +: CNT_W] == gi[CNT_W-1:0] &&
                    !granted[gi]) begin
                    grant[gi]   <= k[CNT_W-1:0];
                    granted[gi] <= 1'b1;
                end
            end
        end
    end

    assign m_axis_tdata[gi*DATA_W +: DATA_W] =
        s_axis_tdata[grant[gi]*DATA_W +: DATA_W];
    assign m_axis_tvalid[gi] = granted[gi] & m_axis_tready[gi];
end
endgenerate

generate
for (gi = 0; gi < PORTS; gi = gi + 1) begin : g_in
    assign s_axis_tready[gi] = (fifo_count[gi] != FIFO_DEPTH[CNT_W:0]);
    always @(posedge clk) begin
        if (rst) fifo_count[gi] <= 0;
        else if (s_axis_tvalid[gi] && s_axis_tready[gi]) begin
            fifo_mem[gi*FIFO_DEPTH + fifo_count[gi][CNT_W-1:0]] <=
                s_axis_tdata[gi*DATA_W +: DATA_W];
            fifo_count[gi] <= fifo_count[gi] + 1;
        end
    end
end
endgenerate

endmodule
