/*
 * Reduced model of Corundum's completion queue manager (Sec. IV-B of the
 * paper: "a non-top module implementing a completion queue manager").
 * Parameter interface follows upstream cpl_queue_manager: the DSE explores
 * OP_TABLE_SIZE (# outstanding operations), QUEUE_INDEX_WIDTH (log2 of the
 * number of queues) and PIPELINE (pipeline stages).
 */
module cpl_queue_manager #(
    // number of outstanding operations
    parameter OP_TABLE_SIZE = 16,
    // log2 of the number of queues
    parameter QUEUE_INDEX_WIDTH = 8,
    // pipeline stages
    parameter PIPELINE = 2,
    // width of queue element pointers
    parameter QUEUE_PTR_WIDTH = 16,
    // AXI-lite data width for the control interface
    parameter AXIL_DATA_WIDTH = 32,
    // request tag width
    parameter REQ_TAG_WIDTH = 8,
    localparam OP_TAG_WIDTH = $clog2(OP_TABLE_SIZE),
    localparam QUEUE_RAM_WIDTH = 128
)(
    input  wire                          clk,
    input  wire                          rst,

    /*
     * Enqueue request input
     */
    input  wire [QUEUE_INDEX_WIDTH-1:0]  s_axis_enqueue_req_queue,
    input  wire [REQ_TAG_WIDTH-1:0]      s_axis_enqueue_req_tag,
    input  wire                          s_axis_enqueue_req_valid,
    output wire                          s_axis_enqueue_req_ready,

    /*
     * Enqueue response output
     */
    output wire [QUEUE_PTR_WIDTH-1:0]    m_axis_enqueue_resp_ptr,
    output wire [OP_TAG_WIDTH-1:0]       m_axis_enqueue_resp_op_tag,
    output wire                          m_axis_enqueue_resp_valid,
    input  wire                          m_axis_enqueue_resp_ready,

    /*
     * Enqueue commit input
     */
    input  wire [OP_TAG_WIDTH-1:0]       s_axis_enqueue_commit_op_tag,
    input  wire                          s_axis_enqueue_commit_valid,
    output wire                          s_axis_enqueue_commit_ready,

    /*
     * Event output
     */
    output wire [QUEUE_INDEX_WIDTH-1:0]  m_axis_event_queue,
    output wire                          m_axis_event_valid,
    input  wire                          m_axis_event_ready
);

// operation table: tracks outstanding enqueue operations
reg [OP_TABLE_SIZE-1:0] op_table_active = 0;
reg [OP_TABLE_SIZE-1:0] op_table_commit = 0;
reg [QUEUE_INDEX_WIDTH-1:0] op_table_queue [OP_TABLE_SIZE-1:0];
reg [QUEUE_PTR_WIDTH-1:0]   op_table_ptr   [OP_TABLE_SIZE-1:0];
reg [OP_TAG_WIDTH-1:0] op_table_start_ptr = 0;
reg [OP_TAG_WIDTH-1:0] op_table_finish_ptr = 0;

// queue state RAM: one entry per queue
reg [QUEUE_RAM_WIDTH-1:0] queue_ram [(2**QUEUE_INDEX_WIDTH)-1:0];
reg [QUEUE_INDEX_WIDTH-1:0] queue_ram_read_ptr = 0;
reg [QUEUE_RAM_WIDTH-1:0] queue_ram_read_data_reg = 0;

// pipeline registers
reg [QUEUE_RAM_WIDTH-1:0] pipe_data [PIPELINE-1:0];
reg [QUEUE_INDEX_WIDTH-1:0] pipe_queue [PIPELINE-1:0];
reg [PIPELINE-1:0] pipe_valid = 0;

reg enqueue_resp_valid_reg = 0;
reg [QUEUE_PTR_WIDTH-1:0] enqueue_resp_ptr_reg = 0;
reg [OP_TAG_WIDTH-1:0] enqueue_resp_op_tag_reg = 0;
reg event_valid_reg = 0;
reg [QUEUE_INDEX_WIDTH-1:0] event_queue_reg = 0;

assign s_axis_enqueue_req_ready = !op_table_active[op_table_start_ptr];
assign m_axis_enqueue_resp_ptr = enqueue_resp_ptr_reg;
assign m_axis_enqueue_resp_op_tag = enqueue_resp_op_tag_reg;
assign m_axis_enqueue_resp_valid = enqueue_resp_valid_reg;
assign s_axis_enqueue_commit_ready = 1'b1;
assign m_axis_event_queue = event_queue_reg;
assign m_axis_event_valid = event_valid_reg;

integer i;

initial begin
    for (i = 0; i < OP_TABLE_SIZE; i = i + 1) begin
        op_table_queue[i] = 0;
        op_table_ptr[i] = 0;
    end
end

always @(posedge clk) begin
    // stage 0: queue RAM read
    queue_ram_read_ptr <= s_axis_enqueue_req_queue;
    queue_ram_read_data_reg <= queue_ram[queue_ram_read_ptr];
    pipe_data[0] <= queue_ram_read_data_reg;
    pipe_queue[0] <= queue_ram_read_ptr;
    pipe_valid[0] <= s_axis_enqueue_req_valid && s_axis_enqueue_req_ready;

    // pipeline shift
    for (i = 1; i < PIPELINE; i = i + 1) begin
        pipe_data[i] <= pipe_data[i-1];
        pipe_queue[i] <= pipe_queue[i-1];
        pipe_valid[i] <= pipe_valid[i-1];
    end

    // final stage: allocate op table entry, produce response
    if (pipe_valid[PIPELINE-1]) begin
        op_table_active[op_table_start_ptr] <= 1'b1;
        op_table_queue[op_table_start_ptr] <= pipe_queue[PIPELINE-1];
        op_table_ptr[op_table_start_ptr] <= pipe_data[PIPELINE-1][QUEUE_PTR_WIDTH-1:0];
        op_table_start_ptr <= op_table_start_ptr + 1;
        enqueue_resp_ptr_reg <= pipe_data[PIPELINE-1][QUEUE_PTR_WIDTH-1:0];
        enqueue_resp_op_tag_reg <= op_table_start_ptr;
        enqueue_resp_valid_reg <= 1'b1;
    end else if (m_axis_enqueue_resp_ready) begin
        enqueue_resp_valid_reg <= 1'b0;
    end

    // commit handling
    if (s_axis_enqueue_commit_valid) begin
        op_table_commit[s_axis_enqueue_commit_op_tag] <= 1'b1;
    end

    // retire committed head-of-table operations, raise events
    if (op_table_active[op_table_finish_ptr] && op_table_commit[op_table_finish_ptr]) begin
        op_table_active[op_table_finish_ptr] <= 1'b0;
        op_table_commit[op_table_finish_ptr] <= 1'b0;
        queue_ram[op_table_queue[op_table_finish_ptr]] <=
            {op_table_ptr[op_table_finish_ptr], {(QUEUE_RAM_WIDTH-QUEUE_PTR_WIDTH){1'b0}}};
        event_queue_reg <= op_table_queue[op_table_finish_ptr];
        event_valid_reg <= 1'b1;
        op_table_finish_ptr <= op_table_finish_ptr + 1;
    end else if (m_axis_event_ready) begin
        event_valid_reg <= 1'b0;
    end

    if (rst) begin
        op_table_active <= 0;
        op_table_commit <= 0;
        op_table_start_ptr <= 0;
        op_table_finish_ptr <= 0;
        pipe_valid <= 0;
        enqueue_resp_valid_reg <= 0;
        event_valid_reg <= 0;
    end
end

endmodule
