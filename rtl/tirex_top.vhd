-- Reduced model of the TiReX tiled regular-expression matching architecture
-- (Sec. IV-D of the paper). The DSE explores the datapath parallelism
-- (NCLUSTER, which also scales the instruction width), the context-switch
-- stack size and the instruction/data memory sizes, all powers of two.
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity tirex_top is
  generic (
    -- internal core parallelism and instruction width scaling
    NCLUSTER : positive := 1;
    -- control-unit context-switch stack depth (entries)
    STACK_SIZE : positive := 16;
    -- instruction memory size (K-instructions)
    INSTR_MEM_SIZE : positive := 8;
    -- data memory size (KB)
    DATA_MEM_SIZE : positive := 16
  );
  port (
    clk   : in  std_logic;
    rst   : in  std_logic;
    -- input character stream
    char_valid_i : in  std_logic;
    char_data_i  : in  std_logic_vector(7 downto 0);
    char_ready_o : out std_logic;
    -- match report interface
    match_valid_o : out std_logic;
    match_pos_o   : out std_logic_vector(31 downto 0);
    -- configuration interface (instruction load)
    cfg_we_i   : in  std_logic;
    cfg_addr_i : in  std_logic_vector(15 downto 0);
    cfg_data_i : in  std_logic_vector(16*NCLUSTER-1 downto 0)
  );
end entity tirex_top;

architecture tirex_top_rtl of tirex_top is

  constant instr_width_c : positive := 16 * NCLUSTER;

  type instr_mem_t is array (0 to INSTR_MEM_SIZE*1024 - 1)
    of std_logic_vector(instr_width_c-1 downto 0);
  type data_mem_t is array (0 to DATA_MEM_SIZE*1024/4 - 1)
    of std_logic_vector(31 downto 0);
  type stack_t is array (0 to STACK_SIZE - 1)
    of std_logic_vector(31 downto 0);

  signal instr_mem : instr_mem_t;
  signal data_mem  : data_mem_t;
  signal ctx_stack : stack_t;

  signal pc        : unsigned(31 downto 0);
  signal sp        : unsigned(15 downto 0);
  signal cur_instr : std_logic_vector(instr_width_c-1 downto 0);
  signal active    : std_logic_vector(NCLUSTER-1 downto 0);
  signal match_pos : unsigned(31 downto 0);

begin

  control_unit: process(clk, rst)
  begin
    if rst = '1' then
      pc <= (others => '0');
      sp <= (others => '0');
    elsif rising_edge(clk) then
      if cfg_we_i = '1' then
        instr_mem(to_integer(unsigned(cfg_addr_i))) <= cfg_data_i;
      elsif char_valid_i = '1' then
        cur_instr <= instr_mem(to_integer(pc(15 downto 0)));
        -- context switch: push/pop the engine state
        ctx_stack(to_integer(sp(9 downto 0))) <= std_logic_vector(pc);
        sp <= sp + 1;
        pc <= pc + 1;
      end if;
    end if;
  end process control_unit;

  clusters: for c in 0 to NCLUSTER-1 generate
    cluster_proc: process(clk)
    begin
      if rising_edge(clk) then
        -- each cluster consumes a 16-bit slice of the wide instruction
        if cur_instr(16*c+7 downto 16*c) = char_data_i then
          active(c) <= '1';
          match_pos <= match_pos + 1;
        else
          active(c) <= '0';
        end if;
      end if;
    end process cluster_proc;
  end generate clusters;

  char_ready_o  <= '1';
  match_valid_o <= active(0);
  match_pos_o   <= std_logic_vector(match_pos);

end architecture tirex_top_rtl;
