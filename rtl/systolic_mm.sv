// Output-stationary systolic matrix-multiply array. A DSP-dominated design
// used to exercise DSP-bound mapping, power estimation and DSP
// over-utilization handling (no counterpart in the paper's case studies;
// included as an extension workload).
module systolic_mm #(
  parameter int unsigned ROWS = 4,
  parameter int unsigned COLS = 4,
  parameter int unsigned DATA_W = 16,
  parameter int unsigned ACC_W = 2 * DATA_W + 8,
  localparam int unsigned ROW_IDX_W = (ROWS > 1) ? $clog2(ROWS) : 1
)(
  input  logic                       clk_i,
  input  logic                       rst_ni,
  input  logic                       en_i,
  input  logic [ROWS-1:0][DATA_W-1:0] a_i,  // west inputs, one per row
  input  logic [COLS-1:0][DATA_W-1:0] b_i,  // north inputs, one per column
  input  logic                       drain_i,
  input  logic [ROW_IDX_W-1:0]       drain_row_i,
  output logic [COLS-1:0][ACC_W-1:0] c_o,   // drained accumulator row
  output logic                       valid_o
);

  // Wavefront registers between processing elements.
  logic [ROWS-1:0][COLS:0][DATA_W-1:0] a_pipe;
  logic [ROWS:0][COLS-1:0][DATA_W-1:0] b_pipe;
  logic [ROWS-1:0][COLS-1:0][ACC_W-1:0] acc;

  for (genvar r = 0; r < ROWS; r++) begin : g_row
    assign a_pipe[r][0] = a_i[r];
  end
  for (genvar c = 0; c < COLS; c++) begin : g_col
    assign b_pipe[0][c] = b_i[c];
  end

  for (genvar r = 0; r < ROWS; r++) begin : g_pe_row
    for (genvar c = 0; c < COLS; c++) begin : g_pe_col
      always_ff @(posedge clk_i or negedge rst_ni) begin
        if (!rst_ni) begin
          acc[r][c]        <= '0;
          a_pipe[r][c+1]   <= '0;
          b_pipe[r+1][c]   <= '0;
        end else if (en_i) begin
          // One MAC per PE per cycle; maps onto a DSP48 slice.
          acc[r][c]      <= acc[r][c] + a_pipe[r][c] * b_pipe[r][c];
          a_pipe[r][c+1] <= a_pipe[r][c];
          b_pipe[r+1][c] <= b_pipe[r][c];
        end
      end
    end
  end

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      c_o     <= '0;
      valid_o <= 1'b0;
    end else begin
      valid_o <= drain_i;
      if (drain_i) begin
        for (int c = 0; c < COLS; c++) c_o[c] <= acc[drain_row_i][c];
      end
    end
  end

endmodule
