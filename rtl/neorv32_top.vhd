-- Reduced model of the Neorv32 processor top entity (Sec. IV-C of the
-- paper: an in-order 4-stage VHDL RISC-V core). The DSE explores the
-- instruction and data memory sizes, restricted to powers of two.
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity neorv32_top is
  generic (
    -- internal instruction memory size in bytes
    MEM_INT_IMEM_SIZE : natural := 16384;
    -- internal data memory size in bytes
    MEM_INT_DMEM_SIZE : natural := 8192;
    -- instruction cache: number of blocks
    ICACHE_NUM_BLOCKS : natural := 4;
    -- hardware multiplier/divider (M extension)
    CPU_EXTENSION_RISCV_M : boolean := true;
    -- number of hardware performance monitor counters
    HPM_NUM_CNTS : natural := 0
  );
  port (
    -- global control
    clk_i  : in  std_logic;
    rstn_i : in  std_logic;
    -- external bus interface
    wb_adr_o : out std_logic_vector(31 downto 0);
    wb_dat_i : in  std_logic_vector(31 downto 0);
    wb_dat_o : out std_logic_vector(31 downto 0);
    wb_we_o  : out std_logic;
    wb_stb_o : out std_logic;
    wb_cyc_o : out std_logic;
    wb_ack_i : in  std_logic;
    -- GPIO
    gpio_o : out std_logic_vector(31 downto 0);
    gpio_i : in  std_logic_vector(31 downto 0);
    -- UART
    uart_txd_o : out std_logic;
    uart_rxd_i : in  std_logic
  );
end entity neorv32_top;

architecture neorv32_top_rtl of neorv32_top is

  constant imem_addr_width_c : natural := 15;
  constant dmem_addr_width_c : natural := 14;

  type imem_t is array (0 to MEM_INT_IMEM_SIZE/4 - 1) of std_logic_vector(31 downto 0);
  type dmem_t is array (0 to MEM_INT_DMEM_SIZE/4 - 1) of std_logic_vector(31 downto 0);

  signal imem : imem_t;
  signal dmem : dmem_t;

  signal pc       : unsigned(31 downto 0);
  signal instr    : std_logic_vector(31 downto 0);
  signal rs1, rs2 : std_logic_vector(31 downto 0);
  signal alu_res  : std_logic_vector(31 downto 0);

begin

  -- simplified 4-stage pipeline sketch: fetch / decode / execute / writeback
  fetch: process(clk_i, rstn_i)
  begin
    if rstn_i = '0' then
      pc <= (others => '0');
    elsif rising_edge(clk_i) then
      pc    <= pc + 4;
      instr <= imem(to_integer(pc(imem_addr_width_c-1 downto 2)));
    end if;
  end process fetch;

  execute: process(clk_i)
  begin
    if rising_edge(clk_i) then
      alu_res <= std_logic_vector(unsigned(rs1) + unsigned(rs2));
      dmem(to_integer(unsigned(alu_res(dmem_addr_width_c-1 downto 2)))) <= rs2;
    end if;
  end process execute;

  wb_adr_o <= std_logic_vector(pc);
  wb_dat_o <= alu_res;
  wb_we_o  <= '0';
  wb_stb_o <= '0';
  wb_cyc_o <= '0';
  gpio_o   <= alu_res;
  uart_txd_o <= '1';

end architecture neorv32_top_rtl;
