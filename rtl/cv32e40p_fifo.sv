// Reduced model of the cv32e40p (OpenHW Group RISC-V core) FIFO submodule
// used in the paper's Sec. IV-A model-accuracy study. The parameter
// interface matches the upstream fifo_v3: the DSE explores DEPTH.
module cv32e40p_fifo #(
  parameter bit          FALL_THROUGH = 1'b0,  // combinational read-through
  parameter int unsigned DATA_WIDTH   = 32,
  parameter int unsigned DEPTH        = 8,
  localparam int unsigned ADDR_DEPTH  = (DEPTH > 1) ? $clog2(DEPTH) : 1
)(
  input  logic                  clk_i,
  input  logic                  rst_ni,
  input  logic                  flush_i,
  input  logic                  testmode_i,
  output logic                  full_o,
  output logic                  empty_o,
  output logic [ADDR_DEPTH-1:0] usage_o,
  input  logic [DATA_WIDTH-1:0] data_i,
  input  logic                  push_i,
  output logic [DATA_WIDTH-1:0] data_o,
  input  logic                  pop_i
);

  localparam int unsigned FifoDepth = (DEPTH > 0) ? DEPTH : 1;

  logic [ADDR_DEPTH-1:0] read_pointer_n, read_pointer_q;
  logic [ADDR_DEPTH-1:0] write_pointer_n, write_pointer_q;
  logic [ADDR_DEPTH:0]   status_cnt_n, status_cnt_q;
  logic [FifoDepth-1:0][DATA_WIDTH-1:0] mem_n, mem_q;

  assign usage_o = status_cnt_q[ADDR_DEPTH-1:0];
  assign full_o  = (status_cnt_q == FifoDepth[ADDR_DEPTH:0]);
  assign empty_o = (status_cnt_q == 0) & ~(FALL_THROUGH & push_i);

  always_comb begin
    read_pointer_n  = read_pointer_q;
    write_pointer_n = write_pointer_q;
    status_cnt_n    = status_cnt_q;
    data_o          = (DEPTH == 0) ? data_i : mem_q[read_pointer_q];
    mem_n           = mem_q;

    if (push_i && ~full_o) begin
      mem_n[write_pointer_q] = data_i;
      if (write_pointer_q == FifoDepth[ADDR_DEPTH-1:0] - 1) write_pointer_n = '0;
      else write_pointer_n = write_pointer_q + 1;
      status_cnt_n = status_cnt_q + 1;
    end

    if (pop_i && ~empty_o) begin
      if (read_pointer_n == FifoDepth[ADDR_DEPTH-1:0] - 1) read_pointer_n = '0;
      else read_pointer_n = read_pointer_q + 1;
      status_cnt_n = status_cnt_q - 1;
    end

    if (push_i && pop_i && ~full_o && ~empty_o) status_cnt_n = status_cnt_q;

    if (FALL_THROUGH && (status_cnt_q == 0) && push_i) begin
      data_o = data_i;
      if (pop_i) begin
        status_cnt_n    = status_cnt_q;
        read_pointer_n  = read_pointer_q;
        write_pointer_n = write_pointer_q;
      end
    end
  end

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (~rst_ni) begin
      read_pointer_q  <= '0;
      write_pointer_q <= '0;
      status_cnt_q    <= '0;
    end else if (flush_i) begin
      read_pointer_q  <= '0;
      write_pointer_q <= '0;
      status_cnt_q    <= '0;
    end else begin
      read_pointer_q  <= read_pointer_n;
      write_pointer_q <= write_pointer_n;
      status_cnt_q    <= status_cnt_n;
    end
  end

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (~rst_ni) mem_q <= '0;
    else mem_q <= mem_n;
  end

endmodule
